"""Series computations shared by the benchmark suite and the report
script.

Each ``series_*`` function regenerates the rows of one experiment from
EXPERIMENTS.md (the paper is a theory paper: its "tables" are growth
claims and complexity statements; the series make them measurable).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import repro.obs as obs
from repro.answering.query_incomplete import query_incomplete
from repro.obs.timing import timed, timer
from repro.core.conditions import Cond
from repro.core.query import linear_query
from repro.core.tree import DataTree, node
from repro.incomplete.certainty import certain_prefix, possible_prefix
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.refine.conjunctive import refine_plus_sequence
from repro.refine.linear import refine_linear_sequence
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.refine.inverse import universal_incomplete
from repro.workloads.blowup import (
    BLOWUP_ALPHABET,
    linear_nested_queries,
    pair_queries,
    probe_queries_for_pairs,
)
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query4,
)

Row = Dict[str, object]


def print_table(title: str, rows: Sequence[Row]) -> None:
    print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0])
    widths = {
        c: max(len(c), *(len(_fmt(r[c])) for r in rows)) for c in columns
    }
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


# -- E4: emptiness is PTIME ------------------------------------------------------


def chain_type(depth: int):
    """A conditional type with a required chain of the given depth."""
    from repro.core.multiplicity import Atom, Disjunction
    from repro.incomplete.conditional import ConditionalTreeType

    mu = {}
    for i in range(depth):
        mu[f"s{i}"] = Disjunction.single(Atom.of(**{f"s{i + 1}": "1"}))
    mu[f"s{depth}"] = Disjunction.leaf()
    return ConditionalTreeType.simple(["s0"], mu)


def series_emptiness(depths=(10, 50, 100, 200, 400)) -> List[Row]:
    rows = []
    for depth in depths:
        tau = chain_type(depth)
        seconds = timed(tau.is_empty)
        rows.append(
            {"chain_depth": depth, "symbols": len(tau.symbols()), "seconds": seconds}
        )
    return rows


# -- E5: certain/possible prefix is PTIME -----------------------------------------


def series_prefix(sizes=(5, 10, 20, 40)) -> List[Row]:
    tt = catalog_type()
    rows = []
    for n in sizes:
        doc = generate_catalog(n, seed=n)
        history = [(query1(), query1().evaluate(doc))]
        knowledge = intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), tt
        )
        prefix = DataTree.build(
            node(
                "cat0",
                "catalog",
                0,
                [
                    node(
                        "ghost",
                        "product",
                        0,
                        [node("gp", "price", 999), node("gc", "cat", "garden")],
                    )
                ],
            )
        )
        t_poss = timed(lambda: possible_prefix(prefix, knowledge))
        t_cert = timed(lambda: certain_prefix(prefix, knowledge))
        rows.append(
            {
                "products": n,
                "repr_size": knowledge.size(),
                "possible_s": t_poss,
                "certain_s": t_cert,
            }
        )
    return rows


# -- E6: representation-size growth (the paper's central trade-off) ----------------


def series_blowup(max_n: int = 8) -> List[Row]:
    rows = []
    for n in range(1, max_n + 1):
        history = pair_queries(n)
        plain = refine_sequence(BLOWUP_ALPHABET, history).size()
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history).size()
        probed = refine_sequence(
            BLOWUP_ALPHABET, probe_queries_for_pairs(n) + history
        ).size()
        lin = refine_linear_sequence(
            BLOWUP_ALPHABET, linear_nested_queries(n)
        ).size()
        rows.append(
            {
                "n": n,
                "plain_refine": plain,
                "conjunctive": conj,
                "probing_heuristic": probed,
                "linear_family_min": lin,
            }
        )
    return rows


# -- E7: per-step Refine cost --------------------------------------------------------


def series_refine_cost(sizes=(5, 10, 20, 40, 80)) -> List[Row]:
    """Per-step Refine wall time, annotated with operation counts.

    Each row is measured under an obs capture so it can report not just
    seconds (the ``refine.step`` span) but how much work the step did:
    specializations generated by the product and the result size.
    """
    tt = catalog_type()
    rows = []
    for n in sizes:
        doc = generate_catalog(n, seed=n)
        q = query1()
        answer = q.evaluate(doc)
        base = universal_incomplete(CATALOG_ALPHABET)
        from repro.refine.refine import refine

        with obs.capture():
            obs.reset()
            seconds = timed(lambda: refine(base, q, answer, CATALOG_ALPHABET))
            specializations = obs.metrics.value("refine.specializations")
            result_sizes = obs.metrics.series("refine.result_size")
        rows.append(
            {
                "products": n,
                "answer_nodes": len(answer),
                "refine_s": seconds,
                "specializations": specializations,
                "result_size": result_sizes[-1] if result_sizes else 0,
            }
        )
    return rows


# -- E8: plain vs conjunctive emptiness -----------------------------------------------


def series_conjunctive_emptiness(max_n: int = 6) -> List[Row]:
    rows = []
    for n in range(1, max_n + 1):
        history = pair_queries(n)
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        t_plain = timed(plain.is_empty)
        t_conj = timed(conj.is_empty)
        rows.append(
            {
                "n": n,
                "plain_emptiness_s": t_plain,
                "conjunctive_emptiness_s": t_conj,
            }
        )
    return rows


def series_sat_emptiness() -> List[Row]:
    """Theorem 3.10 on SAT-derived instances (exponential, kept tiny)."""
    from repro.reductions.sat3 import brute_force_sat, build_instance, decide_by_representation

    cases = [
        ("1 var, sat", 1, [(1, 1, 1)]),
        ("1 var, unsat", 1, [(1, 1, 1), (-1, -1, -1)]),
        ("2 vars, sat", 2, [(1, 2, 2), (-1, 2, 2), (1, -2, -2)]),
    ]
    rows = []
    for name, n_vars, clauses in cases:
        instance = build_instance(n_vars, clauses)
        with timer() as clock:
            got = decide_by_representation(instance)
        rows.append(
            {
                "instance": name,
                "satisfiable": got,
                "agrees": got == brute_force_sat(n_vars, clauses),
                "seconds": clock.seconds,
            }
        )
    return rows


# -- E9: q(T) construction --------------------------------------------------------------


def series_query_incomplete(sizes=(5, 10, 20, 40)) -> List[Row]:
    tt = catalog_type()
    rows = []
    for n in sizes:
        doc = generate_catalog(n, seed=n)
        history = [(query1(), query1().evaluate(doc)), (query2(), query2().evaluate(doc))]
        knowledge = intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), tt
        )
        seconds = timed(lambda: query_incomplete(knowledge, query4()))
        answers = query_incomplete(knowledge, query4())
        rows.append(
            {
                "products": n,
                "knowledge_size": knowledge.size(),
                "qT_size": answers.size(),
                "seconds": seconds,
            }
        )
    return rows


def series_query_incomplete_alphabet(widths=(2, 4, 6, 8)) -> List[Row]:
    """Exponential-in-|Σ| worst case (Theorem 3.14's caveat).

    For each label lᵢ the history records an empty two-level query
    ``root → lᵢ(<0) → sub``, splitting lᵢ's missing information into two
    exclusive specializations (condition violated vs subtree failed).
    Asking ``root → {l₁, ..., l_k}`` then needs, per child pattern, a
    disjunction over which specialization carries the forced match —
    2^k atoms.
    """
    from repro.core.query import PSQuery, pattern

    rows = []
    for width in widths:
        labels = ["root", "sub"] + [f"l{i}" for i in range(width)]
        history = []
        for i in range(width):
            q_learn = linear_query(["root", f"l{i}", "sub"], [None, Cond.lt(0), None])
            history.append((q_learn, DataTree.empty()))
        knowledge = refine_sequence(labels, history)
        q_ask = PSQuery(
            pattern("root", children=[pattern(f"l{i}") for i in range(width)])
        )
        seconds = timed(lambda: query_incomplete(knowledge, q_ask))
        size = query_incomplete(knowledge, q_ask).size()
        rows.append({"alphabet": width + 2, "qT_size": size, "seconds": seconds})
    return rows


# -- E10: mediator savings ------------------------------------------------------------------


def series_mediator(sizes=(10, 20, 40, 80)) -> List[Row]:
    tt = catalog_type()
    rows = []
    for n in sizes:
        doc = generate_catalog(n, seed=n)
        source = InMemorySource(doc, tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        wh.ask(source, query2())
        before = source.stats.nodes_served
        answer, plan = wh.complete_and_answer(source, query4())
        fetched = source.stats.nodes_served - before
        naive = len(query4().evaluate(doc))
        assert answer == query4().evaluate(doc)
        rows.append(
            {
                "products": n,
                "doc_nodes": len(doc),
                "plan_queries": len(plan),
                "nodes_fetched": fetched,
                "naive_reask_nodes": naive,
            }
        )
    return rows


# -- E11: persistence overhead and resume cost ------------------------------------------------


def series_persistence(step_counts=(2, 4, 6)) -> List[Row]:
    """Journal-append overhead per refine step and resume cost.

    For each history length: wall time of recording the history bare vs
    journaled (fsync'd WAL appends), then resume time via pure journal
    replay vs via a snapshot + empty suffix.
    """
    import tempfile

    from repro.store import SessionStore
    from repro.workloads.blowup import pair_queries

    rows = []
    for steps in step_counts:
        history = pair_queries(steps)

        bare_s = timed(
            lambda: _record_history(Webhouse(BLOWUP_ALPHABET), history)
        )

        with tempfile.TemporaryDirectory() as root:
            store = SessionStore(root, snapshot_every=10_000)
            wh = Webhouse(BLOWUP_ALPHABET)
            wh.attach(store.create("bench", BLOWUP_ALPHABET))
            journaled_s = timed(lambda: _record_history(wh, history))
            wh.detach()

            replay_s = timed(lambda: Webhouse.resume(store, "bench").detach())

            checkpoint = Webhouse.resume(store, "bench")
            checkpoint.checkpoint()
            checkpoint.detach()
            snapshot_s = timed(lambda: Webhouse.resume(store, "bench").detach())

        rows.append(
            {
                "steps": steps,
                "record_bare_s": bare_s,
                "record_journaled_s": journaled_s,
                "resume_replay_s": replay_s,
                "resume_snapshot_s": snapshot_s,
            }
        )
    return rows


def _record_history(wh: Webhouse, history) -> None:
    for query, answer in history:
        wh.record(query, answer)


# -- E15: branching answer-count blowup ------------------------------------------------------


def series_branching(max_n: int = 3) -> List[Row]:
    from repro.extensions.branching import count_possible_answers

    rows = []
    for n in range(1, max_n + 1):
        with timer() as clock:
            count = count_possible_answers(n)
        rows.append({"n": n, "distinct_answers": count, "seconds": clock.seconds})
    return rows


# -- E16: pebble automaton scaling --------------------------------------------------------------


def series_pebble(sizes=(10, 50, 200, 800)) -> List[Row]:
    from repro.extensions.binary_encoding import encode
    from repro.extensions.pebble import Move, PebbleAutomaton, PLACE, DOWN_LEFT, DOWN_RIGHT

    def search_automaton(target):
        transitions = {}
        for label in ("a", "b", "#"):
            moves = []
            if label == target:
                moves.append(Move(PLACE, "yes"))
            if label != "#":
                moves.append(Move(DOWN_LEFT, "scan"))
                moves.append(Move(DOWN_RIGHT, "scan"))
            transitions[("scan", label, frozenset())] = tuple(moves)
        return PebbleAutomaton(2, "scan", ["yes"], transitions)

    automaton = search_automaton("b")
    rows = []
    for n in sizes:
        # a left-comb of a's with a single b at the bottom
        spec = node("leaf", "b", 0)
        for i in range(n - 1):
            spec = node(f"n{i}", "a", 0, [spec])
        tree = encode(DataTree.build(spec))
        seconds = timed(lambda: automaton.accepts(tree))
        rows.append({"nodes": n, "accepts_s": seconds})
    return rows
