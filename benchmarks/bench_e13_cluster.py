#!/usr/bin/env python
"""E13-cluster: sharded pool vs single engine under concurrent load.

The cluster's scaling argument is *knowledge locality*, not raw thread
parallelism: a PR-6 style single engine serving many tenants merges
every tenant's facts into ONE representation, so every local answer
pays the full-corpus knowledge cost (Refine products grow with each
distinct recorded query); the sharded pool keeps one small engine per
session, so each answer pays only that session's cost — and shards
serve reads concurrently behind per-shard readers-writer locks.

The benchmark runs the same fleet workload twice over HTTP:

* **mono** — one ``OpsServer`` + one ``Webhouse`` pre-loaded with the
  *deduplicated* union of every tenant's queries (the single engine's
  best case: no duplicate refinement), hammered by N client threads
  with local ``/ask`` requests;
* **cluster** — ``OpsServer(cluster=...)`` over a 4-shard pool with 16
  tenant sessions (2 queries each), the same N threads asking each
  tenant's own queries via ``/ask?q=...&session=tenant-K``.

Acceptance criterion (ISSUE 7): aggregate ``/ask`` throughput at
4 shards / 8 client threads must be **>= 2x** the single-engine
baseline.  The document also reports scatter-gather ``ask_all``
latency and re-verifies shard-count invariance (1 vs 8 shards produce
identical certain answers — Theorems 3.5 / 2.8).

Usage::

    python benchmarks/bench_e13_cluster.py              # run + print
    python benchmarks/bench_e13_cluster.py --write      # also write BENCH_pr7.json
    python benchmarks/bench_e13_cluster.py --check      # exit 1 if criteria unmet
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from urllib.parse import quote

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.obs as obs  # noqa: E402
from repro.cluster import ShardedWebhouse  # noqa: E402
from repro.core.parsing import parse_query_spec  # noqa: E402
from repro.mediator.source import InMemorySource  # noqa: E402
from repro.mediator.webhouse import Webhouse  # noqa: E402
from repro.ops import OpsServer  # noqa: E402
from repro.workloads.catalog import (  # noqa: E402
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)

#: Where the result document goes (repo root, committed).
RESULT_PATH = REPO_ROOT / "BENCH_pr7.json"

SHARDS = 4
CLIENT_THREADS = 8
SESSIONS = 16
REQUESTS_PER_THREAD = 30
PRODUCTS = 24
SEED = 7

#: The fleet's distinct queries; each tenant session records two of
#: them (rotating), the mono baseline records the deduplicated union.
SPECS = (
    "q1",
    "q2",
    "q3",
    "q4",
    "catalog/product/price[<100]",
    "catalog/product/price[<300]",
    "catalog/product/price[<500]",
    "catalog/product/name",
)


def _named():
    return {"q1": query1, "q2": query2, "q3": query3, "q4": query4}


def _queries():
    return [parse_query_spec(spec, named=_named()) for spec in SPECS]


def _tenant_specs(tenant: int):
    """The two specs session ``tenant-N`` records (and later asks)."""
    return SPECS[(2 * tenant) % len(SPECS)], SPECS[(2 * tenant + 1) % len(SPECS)]


def _source() -> InMemorySource:
    return InMemorySource(generate_catalog(PRODUCTS, seed=SEED), catalog_type())


def _get(base: str, endpoint: str):
    """One request; returns (status, seconds, trace_id)."""
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(base + endpoint, timeout=30) as resp:
            resp.read()
            status = resp.status
            trace_id = resp.headers.get("X-Repro-Trace-Id")
    except urllib.error.HTTPError as exc:
        exc.read()
        status = exc.code
        trace_id = exc.headers.get("X-Repro-Trace-Id")
    return status, time.perf_counter() - start, trace_id


def _hammer(base: str, endpoints_for_thread):
    """N threads, each walking its own endpoint list; returns rows + wall."""
    rows = []
    rows_lock = threading.Lock()

    def client(worker: int) -> None:
        mine = [(e, *_get(base, e)) for e in endpoints_for_thread(worker)]
        with rows_lock:
            rows.extend(mine)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(CLIENT_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return rows, time.perf_counter() - started


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 3),
        "p95_ms": round(ordered[max(0, int(len(ordered) * 0.95) - 1)] * 1000, 3),
        "count": len(ordered),
    }


def run_mono():
    """The single-engine baseline: deduped fleet corpus, one lock domain."""
    source = _source()
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=catalog_type())
    for query in _queries():
        webhouse.ask(source, query)
    webhouse.prepare()
    server = OpsServer(webhouse, source=source).start()

    def endpoints(worker: int):
        for i in range(REQUESTS_PER_THREAD):
            tenant = (worker * REQUESTS_PER_THREAD + i) % SESSIONS
            spec = _tenant_specs(tenant)[i % 2]
            yield f"/ask?q={quote(spec, safe='')}"

    rows, wall_s = _hammer(server.url, endpoints)
    server.stop()
    return {"rows": rows, "wall_s": wall_s, "knowledge_size": webhouse.size()}


def build_cluster(shards: int) -> ShardedWebhouse:
    """The fleet: SESSIONS tenant sessions, two recorded queries each."""
    source = _source()
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=shards
    )
    named = _named()
    for tenant in range(SESSIONS):
        for spec in _tenant_specs(tenant):
            cluster.ask(
                f"tenant-{tenant}", source, parse_query_spec(spec, named=named)
            )
    return cluster


def run_cluster():
    """The pool under the same client load, asks routed per tenant."""
    cluster = build_cluster(SHARDS)
    server = OpsServer(cluster=cluster, source=_source()).start()

    def endpoints(worker: int):
        for i in range(REQUESTS_PER_THREAD):
            tenant = (worker * REQUESTS_PER_THREAD + i) % SESSIONS
            spec = _tenant_specs(tenant)[i % 2]
            yield f"/ask?q={quote(spec, safe='')}&session=tenant-{tenant}"

    rows, wall_s = _hammer(server.url, endpoints)

    # scatter-gather figure: fleet-wide certain-answer union, direct call
    ask_all_s = []
    for _ in range(10):
        t0 = time.perf_counter()
        cluster.ask_all(query1())
        ask_all_s.append(time.perf_counter() - t0)

    server.stop()
    stats = cluster.stats_all()
    cluster.close()
    return {
        "rows": rows,
        "wall_s": wall_s,
        "ask_all_s": ask_all_s,
        "stats": stats,
    }


def check_invariance() -> bool:
    """Same fact sequence on 1 and 8 shards => identical certain answers."""

    def facts(tree):
        return sorted(
            (n, tree.label(n), tree.value(n), tree.parent(n))
            for n in tree.node_ids()
        )

    one, eight = build_cluster(1), build_cluster(8)
    try:
        for query in _queries():
            sure_1, more_1 = one.ask_all(query)
            sure_8, more_8 = eight.ask_all(query)
            if facts(sure_1) != facts(sure_8) or more_1 != more_8:
                return False
        return True
    finally:
        one.close()
        eight.close()


def evaluate(mono, cluster, invariance_ok: bool) -> dict:
    failures = []
    all_rows = mono["rows"] + cluster["rows"]
    for endpoint, status, _, _ in all_rows:
        if status != 200:
            failures.append(f"{endpoint} returned {status}")
            break
    trace_ids = [row[3] for row in all_rows]
    if None in trace_ids:
        failures.append("response without X-Repro-Trace-Id header")
    if len(set(trace_ids)) != len(trace_ids):
        failures.append("duplicate trace ids across requests")
    if not invariance_ok:
        failures.append("certain answers differ between 1 and 8 shards")

    mono_rps = len(mono["rows"]) / mono["wall_s"]
    cluster_rps = len(cluster["rows"]) / cluster["wall_s"]
    speedup = cluster_rps / mono_rps
    if speedup < 2.0:
        failures.append(f"cluster speedup {speedup:.2f}x < required 2x")

    shard_sessions = [s["sessions"] for s in cluster["stats"]["per_shard"]]
    return {
        "suite": "pr7-cluster",
        "shards": SHARDS,
        "client_threads": CLIENT_THREADS,
        "sessions": SESSIONS,
        "requests_per_side": len(mono["rows"]),
        "mono": {
            "wall_s": round(mono["wall_s"], 4),
            "throughput_rps": round(mono_rps, 1),
            "ask": _percentiles([r[2] for r in mono["rows"]]),
            "knowledge_size": mono["knowledge_size"],
        },
        "cluster": {
            "wall_s": round(cluster["wall_s"], 4),
            "throughput_rps": round(cluster_rps, 1),
            "ask": _percentiles([r[2] for r in cluster["rows"]]),
            "knowledge_size": cluster["stats"]["knowledge_size"],
            "sessions_per_shard": shard_sessions,
            "ask_all": _percentiles(cluster["ask_all_s"]),
        },
        "speedup": round(speedup, 2),
        "shard_count_invariance": invariance_ok,
        "criteria": {
            "required_speedup": 2.0,
            "failures": failures,
            "met": not failures,
        },
    }


def main(argv) -> int:
    args = set(argv[1:])
    if not args <= {"--write", "--check"}:
        print(__doc__)
        return 2
    write, check = "--write" in args, "--check" in args

    obs.reset()
    previous = (obs.STATE.enabled, obs.STATE.sink)
    obs.enable(obs.RingBufferSink())
    try:
        print(
            f"mono baseline: 1 engine, {len(SPECS)} deduped queries, "
            f"{CLIENT_THREADS} threads x {REQUESTS_PER_THREAD} asks..."
        )
        mono = run_mono()
        print(
            f"cluster: {SHARDS} shards, {SESSIONS} sessions, same load, "
            f"routed asks..."
        )
        cluster = run_cluster()
        print("invariance: replaying the fleet on 1 and 8 shards...")
        invariance_ok = check_invariance()
    finally:
        obs.STATE.enabled, obs.STATE.sink = previous

    document = evaluate(mono, cluster, invariance_ok)
    m, c = document["mono"], document["cluster"]
    print(
        f"  mono     {m['throughput_rps']:>7.1f} req/s  "
        f"p50 {m['ask']['p50_ms']:>7.3f}ms  knowledge {m['knowledge_size']}"
    )
    print(
        f"  cluster  {c['throughput_rps']:>7.1f} req/s  "
        f"p50 {c['ask']['p50_ms']:>7.3f}ms  knowledge {c['knowledge_size']} "
        f"across shards {c['sessions_per_shard']}"
    )
    print(
        f"  speedup {document['speedup']}x (required >= 2x); "
        f"ask_all p50 {c['ask_all']['p50_ms']}ms; "
        f"invariance {'OK' if invariance_ok else 'BROKEN'}"
    )
    for failure in document["criteria"]["failures"]:
        print(f"  FAIL: {failure}")
    print(f"criteria: {'PASS' if document['criteria']['met'] else 'FAIL'}")
    if write:
        RESULT_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {RESULT_PATH}")
    if check and not document["criteria"]["met"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
