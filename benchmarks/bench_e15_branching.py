"""E15 — Section 4 branching: the q(T) answer space grows factorially
(the paper's n! example), so branching breaks polynomial answer
representations."""

import math

from repro.extensions.branching import blowup_incomplete_tree, blowup_query

import series


def test_branching_answer_count_table():
    rows = series.series_branching(max_n=3)
    series.print_table("E15 branching: distinct possible answers", rows)
    counts = [r["distinct_answers"] for r in rows]
    assert counts == sorted(counts)
    # super-linear growth: already far beyond n at n=3
    assert counts[-1] > 3 * counts[0]


def test_blowup_tree_construction(benchmark):
    benchmark(lambda: blowup_incomplete_tree(8))


def test_branching_query_on_witness(benchmark):
    from repro.core.tree import DataTree, node

    n = 5
    query = blowup_query(n)
    products = [
        node(
            f"a{i}",
            "a",
            i,
            [node(f"b{i}_{j}", "b", j) for j in range(1, n + 1)],
        )
        for i in range(1, n + 1)
    ]
    tree = DataTree.build(node("r", "root", 0, products))
    answer = benchmark(lambda: query.evaluate(tree))
    assert not answer.is_empty()
