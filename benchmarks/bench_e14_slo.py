#!/usr/bin/env python
"""E14-slo: always-on telemetry overhead + fleet quantile accuracy.

PR 8 turns telemetry on by default: every request feeds per-path
quantile sketches, the SLO burn-rate engine, and the head/tail trace
sampler, with span collection enabled.  That posture is only tenable if
the pipeline is cheap and the quantiles it reports are right.  Two
measurements, two acceptance criteria:

* **overhead** — the same ``/ask`` workload driven through the full
  in-process request pipeline (:func:`repro.ops.server.drive_request`:
  trace, dispatch, sampler/SLO/sketch bookkeeping) twice: once with
  observability enabled (the ``serve`` default) and once with
  ``STATE.enabled = False`` and telemetry books still running.  Batches
  alternate between the two servers so drift hits both sides equally.
  Criterion: always-on ``/ask`` p50 within **10%** of the baseline;
* **fleet accuracy** — a 4-shard pool serves keyed answers while a
  ``latency_probe`` captures the exact per-op durations the shards
  observed; the fleet p99 from ``merged_sketches()`` (the
  ``stats_all`` / ``repro_cluster_answer_p99`` path) must agree with a
  brute-force pooled p99 over those same durations within the sketch's
  **relative-error bound** (1%).

Usage::

    python benchmarks/bench_e14_slo.py              # run + print
    python benchmarks/bench_e14_slo.py --write      # also write BENCH_pr8.json
    python benchmarks/bench_e14_slo.py --check      # exit 1 if criteria unmet
"""

from __future__ import annotations

import json
import math
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.obs as obs  # noqa: E402
from repro.cluster import ShardedWebhouse  # noqa: E402
from repro.mediator.source import InMemorySource  # noqa: E402
from repro.ops import OpsServer, demo_webhouse  # noqa: E402
from repro.ops.server import drive_request  # noqa: E402
from repro.workloads.catalog import (  # noqa: E402
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
)

#: Where the result document goes (repo root, committed).
RESULT_PATH = REPO_ROOT / "BENCH_pr8.json"

PRODUCTS = 48
SEED = 7
WARMUP = 60
BATCHES = 20
BATCH_SIZE = 25
FLEET_SHARDS = 4
FLEET_SESSIONS = 8
FLEET_OPS = 400

MAX_OVERHEAD_PCT = 10.0

SPECS = ("q1", "q2", "q3", "q4")


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 4),
        "p99_ms": round(
            ordered[max(0, math.ceil(0.99 * len(ordered)) - 1)] * 1000, 4
        ),
        "count": len(ordered),
    }


def _drive_batch(server, offset: int, count: int):
    """``count`` local asks through the in-process pipeline; durations."""
    durations = []
    for i in range(offset, offset + count):
        endpoint = f"/ask?q={SPECS[i % len(SPECS)]}"
        started = time.perf_counter()
        status, _ = drive_request(server, endpoint)
        durations.append(time.perf_counter() - started)
        if status != 200:
            raise RuntimeError(f"{endpoint} returned {status}")
    return durations


def run_overhead():
    """The same /ask load with telemetry always-on vs obs disabled.

    Two identical servers; measurement batches alternate between them
    so clock drift and cache warmth hit both modes symmetrically.
    """
    obs.reset()
    obs.disable()
    base_house, base_source = demo_webhouse(PRODUCTS, seed=SEED)
    baseline = OpsServer(base_house, source=base_source)

    on_house, on_source = demo_webhouse(PRODUCTS, seed=SEED)
    always_on = OpsServer(on_house, source=on_source)

    def with_obs(server, offset, count):
        obs.STATE.enabled = True
        try:
            return _drive_batch(server, offset, count)
        finally:
            obs.STATE.enabled = False

    # warm both sides (prepared knowledge, hash caches, allocator)
    _drive_batch(baseline, 0, WARMUP)
    with_obs(always_on, 0, WARMUP)

    off_durations, on_durations = [], []
    for batch in range(BATCHES):
        offset = WARMUP + batch * BATCH_SIZE
        off_durations.extend(_drive_batch(baseline, offset, BATCH_SIZE))
        on_durations.extend(with_obs(always_on, offset, BATCH_SIZE))

    slo_lifetime = {
        objective["name"]: objective["lifetime"]
        for objective in always_on.slo.snapshot()["objectives"]
    }
    return {
        "baseline_s": off_durations,
        "always_on_s": on_durations,
        "sampler": always_on.sampler.stats(),
        "slo_lifetime": slo_lifetime,
        "latency_families": sorted(always_on.request_log.latency_families()),
    }


def run_fleet_accuracy():
    """Sketch-merged fleet p99 vs brute-force pooled p99.

    The ``latency_probe`` hands us the exact durations each shard's
    sketches observed, so the comparison isolates sketch error from
    client/server timing skew.
    """
    observed = []
    source = InMemorySource(
        generate_catalog(PRODUCTS, seed=SEED), catalog_type()
    )
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET,
        tree_type=catalog_type(),
        shards=FLEET_SHARDS,
        latency_probe=lambda shard, op, seconds: observed.append((op, seconds)),
    )
    try:
        for tenant in range(FLEET_SESSIONS):
            cluster.ask(f"tenant-{tenant}", source, query1())
        for i in range(FLEET_OPS):
            cluster.answer(f"tenant-{i % FLEET_SESSIONS}", query1())
        merged = cluster.merged_sketches()["answer"]
        pooled = sorted(s for op, s in observed if op == "answer")
        quantiles = {}
        for q in (0.5, 0.9, 0.99):
            rank = max(0, math.ceil(q * len(pooled)) - 1)
            quantiles[f"p{int(q * 100)}"] = {
                "exact_ms": round(pooled[rank] * 1000, 4),
                "sketch_ms": round(merged.quantile(q) * 1000, 4),
            }
        rollup = cluster.stats_all()["latency"]["answer"]
        return {
            "ops": FLEET_OPS,
            "sketch_count": merged.count,
            "pooled_count": len(pooled),
            "relative_accuracy": merged.relative_accuracy,
            "quantiles": quantiles,
            "stats_all_p99_ms": round(rollup["p99"] * 1000, 4),
        }
    finally:
        cluster.close()


def evaluate(overhead, fleet) -> dict:
    failures = []

    off = _percentiles(overhead["baseline_s"])
    on = _percentiles(overhead["always_on_s"])
    overhead_pct = (on["p50_ms"] - off["p50_ms"]) / off["p50_ms"] * 100.0
    if overhead_pct > MAX_OVERHEAD_PCT:
        failures.append(
            f"always-on p50 overhead {overhead_pct:.1f}% > "
            f"{MAX_OVERHEAD_PCT:.0f}% budget"
        )
    if overhead["sampler"]["kept"] == 0:
        failures.append("sampler recorded nothing under always-on load")

    if fleet["sketch_count"] != fleet["pooled_count"]:
        failures.append(
            f"sketch merge saw {fleet['sketch_count']} ops, "
            f"probe saw {fleet['pooled_count']}"
        )
    alpha = fleet["relative_accuracy"]
    for name, row in fleet["quantiles"].items():
        if abs(row["sketch_ms"] - row["exact_ms"]) > alpha * row["exact_ms"]:
            failures.append(
                f"fleet {name} sketch {row['sketch_ms']}ms vs exact "
                f"{row['exact_ms']}ms exceeds the {alpha:.0%} bound"
            )

    return {
        "suite": "pr8-slo",
        "requests_per_mode": len(overhead["baseline_s"]),
        "overhead": {
            "baseline": off,
            "always_on": on,
            "p50_overhead_pct": round(overhead_pct, 2),
            "budget_pct": MAX_OVERHEAD_PCT,
            "sampler": overhead["sampler"],
            "slo_lifetime": overhead["slo_lifetime"],
            "latency_families": overhead["latency_families"],
        },
        "fleet": fleet,
        "criteria": {
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "relative_accuracy": alpha,
            "failures": failures,
            "met": not failures,
        },
    }


def main(argv) -> int:
    args = set(argv[1:])
    if not args <= {"--write", "--check"}:
        print(__doc__)
        return 2
    write, check = "--write" in args, "--check" in args

    previous = (obs.STATE.enabled, obs.STATE.sink)
    try:
        print(
            f"overhead: {BATCHES}x{BATCH_SIZE} asks per mode, alternating "
            f"batches, {PRODUCTS} products..."
        )
        overhead = run_overhead()
        print(
            f"fleet accuracy: {FLEET_SHARDS} shards, {FLEET_OPS} keyed "
            f"answers, probe-pooled ground truth..."
        )
        fleet = run_fleet_accuracy()
    finally:
        obs.STATE.enabled, obs.STATE.sink = previous

    document = evaluate(overhead, fleet)
    o = document["overhead"]
    print(
        f"  baseline  p50 {o['baseline']['p50_ms']:>8.4f}ms  "
        f"p99 {o['baseline']['p99_ms']:>8.4f}ms"
    )
    print(
        f"  always-on p50 {o['always_on']['p50_ms']:>8.4f}ms  "
        f"p99 {o['always_on']['p99_ms']:>8.4f}ms  "
        f"overhead {o['p50_overhead_pct']}% (budget {MAX_OVERHEAD_PCT:.0f}%)"
    )
    for name, row in document["fleet"]["quantiles"].items():
        print(
            f"  fleet {name}: sketch {row['sketch_ms']}ms vs exact "
            f"{row['exact_ms']}ms"
        )
    for failure in document["criteria"]["failures"]:
        print(f"  FAIL: {failure}")
    print(f"criteria: {'PASS' if document['criteria']['met'] else 'FAIL'}")
    if write:
        RESULT_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")
    if check and not document["criteria"]["met"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
