"""E4 — Lemma 2.5: emptiness of conditional tree types is PTIME.

Timing series over required-chain depth; the growth should be roughly
quadratic at worst (fixpoint over symbols), never exponential.
"""

import series


def test_emptiness_scaling_table():
    rows = series.series_emptiness()
    series.print_table("E4 emptiness (Lemma 2.5, PTIME)", rows)
    # shape check: 40x bigger input stays within ~polynomial time growth
    small, large = rows[0]["seconds"], rows[-1]["seconds"]
    ratio_input = rows[-1]["chain_depth"] / rows[0]["chain_depth"]
    assert large < max(small, 1e-4) * ratio_input**3


def test_emptiness_depth_100(benchmark):
    tau = series.chain_type(100)
    benchmark(tau.is_empty)


def test_emptiness_depth_400(benchmark):
    tau = series.chain_type(400)
    benchmark(tau.is_empty)


def test_normalization_depth_100(benchmark):
    tau = series.chain_type(100)
    benchmark(tau.normalized)
