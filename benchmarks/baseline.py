#!/usr/bin/env python
"""Smoke-scale baseline runner for experiments E4–E11.

Runs each experiment's series at reduced (smoke) parameters, records
wall seconds per experiment, and compares against the committed
baseline at the repo root::

    python benchmarks/baseline.py --write    # (re)write BENCH_baseline.json
    python benchmarks/baseline.py --check    # exit 1 on a >3x regression
    python benchmarks/baseline.py            # run + print, no file I/O

Add ``--caches`` to any mode to run the suite with the ``repro.perf``
memo caches enabled (they are off by default); the emitted document
then carries ``"caches": true``.  The committed baseline is recorded
cache-off, so ``--check --caches`` additionally proves the cached
configuration is no slower than the uncached tolerance envelope.

The check is deliberately loose — a 3x multiplier plus an absolute
floor (``FLOOR_S``) below which timings are pure noise — so it catches
accidental complexity regressions (a PTIME step going exponential)
without flaking on machine variance.  Row *shapes* are also compared:
a baseline experiment that disappears, or whose row count changes,
fails the check regardless of timing.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import series  # noqa: E402

import repro.perf as perf  # noqa: E402

#: Repo-root location of the committed baseline.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"

#: Regression multiplier: current > TOLERANCE × baseline fails --check.
TOLERANCE = 3.0

#: Absolute floor in seconds — below this, differences are noise.
FLOOR_S = 0.05

#: Experiment id → zero-arg callable running the smoke-scale series.
SMOKE = {
    "E4_emptiness": lambda: series.series_emptiness(depths=(10, 50, 100)),
    "E5_prefix": lambda: series.series_prefix(sizes=(5, 10)),
    "E6_blowup": lambda: series.series_blowup(max_n=6),
    "E7_refine_cost": lambda: series.series_refine_cost(sizes=(5, 10, 20)),
    "E8_conjunctive_emptiness": lambda: series.series_conjunctive_emptiness(max_n=5),
    "E9_query_incomplete": lambda: series.series_query_incomplete(sizes=(5, 10)),
    "E10_mediator": lambda: series.series_mediator(sizes=(10, 20)),
    "E11_persistence": lambda: series.series_persistence(step_counts=(2, 4)),
}


def run_smoke(with_caches: bool = False) -> dict:
    """Run every smoke series; returns the baseline document."""
    experiments = {}
    if with_caches:
        perf.clear_caches()
        perf.enable_caches()
    try:
        for name, fn in SMOKE.items():
            start = time.perf_counter()
            rows = fn()
            seconds = time.perf_counter() - start
            experiments[name] = {"seconds": round(seconds, 6), "rows": len(rows)}
            print(f"  {name:<28} {seconds:>9.4f}s  ({len(rows)} rows)")
    finally:
        if with_caches:
            perf.disable_caches()
            perf.clear_caches()
    return {
        "suite": "smoke-E4-E11",
        "tolerance": TOLERANCE,
        "floor_s": FLOOR_S,
        "caches": with_caches,
        "experiments": experiments,
    }


def check(current: dict, baseline: dict) -> list:
    """Compare a fresh run against the committed baseline.

    Returns a list of failure messages (empty when the check passes).
    """
    failures = []
    base_experiments = baseline.get("experiments", {})
    for name, base in base_experiments.items():
        now = current["experiments"].get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but did not run")
            continue
        if now["rows"] != base["rows"]:
            failures.append(
                f"{name}: row count changed {base['rows']} -> {now['rows']}"
            )
        limit = max(TOLERANCE * base["seconds"], FLOOR_S)
        if now["seconds"] > limit:
            failures.append(
                f"{name}: {now['seconds']:.4f}s exceeds limit {limit:.4f}s "
                f"(baseline {base['seconds']:.4f}s x{TOLERANCE})"
            )
    return failures


def main(argv) -> int:
    args = list(argv[1:])
    with_caches = "--caches" in args
    if with_caches:
        args.remove("--caches")
    mode = args[0] if args else None
    if mode not in (None, "--write", "--check"):
        print(__doc__)
        return 2
    flavor = "caches on" if with_caches else "caches off"
    print(f"running smoke benchmarks ({len(SMOKE)} experiments, {flavor})...")
    current = run_smoke(with_caches=with_caches)
    if mode == "--write":
        BASELINE_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {BASELINE_PATH}")
        return 0
    if mode == "--check":
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run with --write first")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        failures = check(current, baseline)
        if failures:
            print("BASELINE CHECK FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
