"""E8 — Theorem 3.10: emptiness is PTIME for plain incomplete trees,
NP-complete for conjunctive ones.

The table contrasts emptiness timing on the same knowledge in both
representations, plus SAT-derived instances where the conjunctive check
must materialize an exponential product.
"""

import pytest

from repro.refine.conjunctive import refine_plus_sequence
from repro.refine.refine import refine_sequence
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

import series


def test_emptiness_contrast_table():
    rows = series.series_conjunctive_emptiness(max_n=6)
    series.print_table(
        "E8 emptiness: plain (PTIME) vs conjunctive (NP)", rows
    )
    # the conjunctive check does strictly more work at larger n
    assert rows[-1]["conjunctive_emptiness_s"] > rows[-1]["plain_emptiness_s"]


@pytest.mark.slow
def test_sat_instances_table():
    rows = series.series_sat_emptiness()
    series.print_table("E8 SAT-derived instances (Theorem 3.6/3.10)", rows)
    assert all(r["agrees"] for r in rows)


def test_plain_emptiness_n6(benchmark):
    plain = refine_sequence(BLOWUP_ALPHABET, pair_queries(6))
    benchmark(plain.is_empty)


def test_conjunctive_emptiness_n6(benchmark):
    conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(6))
    benchmark.pedantic(conj.is_empty, rounds=3, iterations=1)


def test_conjunctive_membership_stays_fast_n8(benchmark):
    """Membership in conjunctive trees is PTIME (per-layer checks)."""
    from repro.core.tree import DataTree, node

    conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(8))
    probe = DataTree.build(
        node("r", "root", 0, [node("x", "a", 99), node("y", "b", 98)])
    )
    result = benchmark(lambda: conj.contains(probe))
    assert result
