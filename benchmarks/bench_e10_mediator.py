"""E10 — Theorem 3.19: non-redundant completions; measured transfer
savings against re-asking the query from scratch."""

from repro.mediator.completion import completion_plan
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query4,
)

import series


def test_mediator_savings_table():
    rows = series.series_mediator()
    series.print_table("E10 mediator: fetched vs naive re-ask", rows)
    for row in rows:
        assert row["nodes_fetched"] <= row["doc_nodes"]


def _knowledge(n):
    doc = generate_catalog(n, seed=n)
    history = [
        (query1(), query1().evaluate(doc)),
        (query2(), query2().evaluate(doc)),
    ]
    knowledge = intersect_with_tree_type(
        refine_sequence(CATALOG_ALPHABET, history), catalog_type()
    )
    return knowledge, doc


def test_completion_plan_generation_20(benchmark):
    knowledge, _doc = _knowledge(20)
    plan = benchmark.pedantic(
        lambda: completion_plan(knowledge, query4()), rounds=3, iterations=1
    )


def test_end_to_end_mediated_answer_20(benchmark):
    def run():
        tt = catalog_type()
        doc = generate_catalog(20, seed=20)
        source = InMemorySource(doc, tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        wh.ask(source, query2())
        answer, _plan = wh.complete_and_answer(source, query4())
        return answer

    answer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not answer.is_empty()
