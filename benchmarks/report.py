#!/usr/bin/env python
"""Regenerate every experiment series and print the tables.

Usage::

    python benchmarks/report.py            # all experiments + perf trajectory
    python benchmarks/report.py E6 E8      # selected ids

The numbers printed here populate EXPERIMENTS.md.  The perf trajectory
at the end is read from the committed ``BENCH_*.json`` documents at the
repo root — every suite that writes one shows up here automatically, no
edits needed when a PR adds a new benchmark.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import series  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPERIMENTS = {
    "E4": ("emptiness (Lemma 2.5, PTIME)", series.series_emptiness),
    "E5": ("certain/possible prefix (Theorem 2.8)", series.series_prefix),
    "E6": ("representation blowup (Example 3.2 et al.)", series.series_blowup),
    "E7": ("per-step Refine cost (Theorem 3.4)", series.series_refine_cost),
    "E8a": (
        "emptiness plain vs conjunctive (Theorem 3.10)",
        series.series_conjunctive_emptiness,
    ),
    "E8b": ("SAT-derived emptiness (Theorems 3.6/3.10)", series.series_sat_emptiness),
    "E9a": ("q(T) vs knowledge size (Theorem 3.14)", series.series_query_incomplete),
    "E9b": (
        "q(T) vs alphabet width (exponential in Σ)",
        series.series_query_incomplete_alphabet,
    ),
    "E10": ("mediator transfer savings (Theorem 3.19)", series.series_mediator),
    "E11": (
        "persistence overhead and resume cost (docs/PERSISTENCE.md)",
        series.series_persistence,
    ),
    "E15": ("branching answer blowup (Section 4)", series.series_branching),
    "E16": ("pebble automaton acceptance (Theorem 4.2)", series.series_pebble),
}


def _headline(document):
    """The document's top-level scalars — each suite's headline figures."""
    scalars = {
        key: value
        for key, value in document.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return ", ".join(f"{k}={v}" for k, v in sorted(scalars.items())) or "-"


def perf_trajectory():
    """One row per committed ``BENCH_*.json``, lexicographic order."""
    rows = []
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            rows.append({"file": path.name, "suite": f"unreadable: {exc}",
                         "criteria": "?", "headline": "-"})
            continue
        criteria = document.get("criteria")
        if isinstance(criteria, dict) and "met" in criteria:
            verdict = "PASS" if criteria["met"] else "FAIL"
        else:
            verdict = "-"
        rows.append({
            "file": path.name,
            "suite": str(document.get("suite", "-")),
            "criteria": verdict,
            "headline": _headline(document),
        })
    return rows


def telemetry_overhead():
    """Always-on vs ``STATE.enabled=False`` ``/ask`` latency (PR 8).

    Read from ``BENCH_pr8.json`` (``benchmarks/bench_e14_slo.py``); one
    row per mode plus the delta row the overhead budget judges.
    """
    path = REPO_ROOT / "BENCH_pr8.json"
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return [{"mode": "run benchmarks/bench_e14_slo.py --write first",
                 "p50_ms": "-", "p99_ms": "-"}]
    overhead = document["overhead"]
    off, on = overhead["baseline"], overhead["always_on"]

    def delta_pct(a, b):
        return f"{(b - a) / a * 100.0:+.1f}%"

    return [
        {"mode": "traced-off baseline", "p50_ms": off["p50_ms"],
         "p99_ms": off["p99_ms"]},
        {"mode": "always-on telemetry", "p50_ms": on["p50_ms"],
         "p99_ms": on["p99_ms"]},
        {"mode": f"delta (budget {overhead['budget_pct']:.0f}% on p50)",
         "p50_ms": delta_pct(off["p50_ms"], on["p50_ms"]),
         "p99_ms": delta_pct(off["p99_ms"], on["p99_ms"])},
    ]


def process_backend():
    """Mono vs 4-shard-thread vs 4-shard-process data plane (PR 10).

    Read from ``BENCH_pr10.json`` (``benchmarks/bench_e18_proc.py``);
    one row per configuration plus the speedup row the multi-core gate
    judges (skipped with a note on single-core hosts).
    """
    path = REPO_ROOT / "BENCH_pr10.json"
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return [{"mode": "run benchmarks/bench_e18_proc.py --write first",
                 "ask_rps": "-", "ask_p50_ms": "-", "ask_p99_ms": "-",
                 "ask_all_rps": "-", "ask_all_p50_ms": "-"}]

    def row(mode, run):
        ask, ask_all = run["ask"], run.get("ask_all")
        return {
            "mode": mode,
            "ask_rps": ask["rps"],
            "ask_p50_ms": ask["p50_ms"],
            "ask_p99_ms": ask["p99_ms"],
            "ask_all_rps": ask_all["rps"] if ask_all else "-",
            "ask_all_p50_ms": ask_all["p50_ms"] if ask_all else "-",
        }

    criteria = document["criteria"]
    rows = [
        row("mono (1 engine)", document["mono"]),
        row(f"thread x{document['shards']}", document["thread"]),
        row(f"process x{document['shards']}", document["process"]),
    ]
    rows.append({
        "mode": f"process/thread ({criteria['perf_gate']})",
        "ask_rps": "-",
        "ask_p50_ms": f"{criteria['ask_p50_ratio_x']}x",
        "ask_p99_ms": "-",
        "ask_all_rps": f"{criteria['ask_all_speedup_x']}x",
        "ask_all_p50_ms": "-",
    })
    return rows


def main(argv):
    wanted = [w.upper() for w in argv[1:]]
    for key, (title, fn) in EXPERIMENTS.items():
        if wanted and not any(key.startswith(w) for w in wanted):
            continue
        rows = fn()
        series.print_table(f"{key}: {title}", rows)
    if not wanted:
        series.print_table("perf trajectory (BENCH_*.json)", perf_trajectory())
        series.print_table(
            "telemetry overhead (/ask, BENCH_pr8.json)", telemetry_overhead()
        )
        series.print_table(
            "shard backends (mono/thread/process, BENCH_pr10.json)",
            process_backend(),
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
