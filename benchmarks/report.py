#!/usr/bin/env python
"""Regenerate every experiment series and print the tables.

Usage::

    python benchmarks/report.py            # all experiments
    python benchmarks/report.py E6 E8      # selected ids

The numbers printed here populate EXPERIMENTS.md.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import series  # noqa: E402

EXPERIMENTS = {
    "E4": ("emptiness (Lemma 2.5, PTIME)", series.series_emptiness),
    "E5": ("certain/possible prefix (Theorem 2.8)", series.series_prefix),
    "E6": ("representation blowup (Example 3.2 et al.)", series.series_blowup),
    "E7": ("per-step Refine cost (Theorem 3.4)", series.series_refine_cost),
    "E8a": (
        "emptiness plain vs conjunctive (Theorem 3.10)",
        series.series_conjunctive_emptiness,
    ),
    "E8b": ("SAT-derived emptiness (Theorems 3.6/3.10)", series.series_sat_emptiness),
    "E9a": ("q(T) vs knowledge size (Theorem 3.14)", series.series_query_incomplete),
    "E9b": (
        "q(T) vs alphabet width (exponential in Σ)",
        series.series_query_incomplete_alphabet,
    ),
    "E10": ("mediator transfer savings (Theorem 3.19)", series.series_mediator),
    "E11": (
        "persistence overhead and resume cost (docs/PERSISTENCE.md)",
        series.series_persistence,
    ),
    "E15": ("branching answer blowup (Section 4)", series.series_branching),
    "E16": ("pebble automaton acceptance (Theorem 4.2)", series.series_pebble),
}


def main(argv):
    wanted = [w.upper() for w in argv[1:]]
    for key, (title, fn) in EXPERIMENTS.items():
        if wanted and not any(key.startswith(w) for w in wanted):
            continue
        rows = fn()
        series.print_table(f"{key}: {title}", rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
