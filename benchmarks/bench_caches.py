#!/usr/bin/env python
"""Cache effectiveness benchmark: repeated-query scenarios, off vs on.

The ``repro.perf`` memo tables target *repetition*: the same emptiness
fixpoint, Refine step, type intersection or bipartite matching asked
again on an unchanged (tree, type) shape.  Each scenario below replays
an E4–E11 workload several times — the first pass pays full price, the
replays are where the caches earn their keep — and is timed twice, with
caches off and on.

Usage::

    python benchmarks/bench_caches.py              # run + print
    python benchmarks/bench_caches.py --write      # also write BENCH_pr4.json
    python benchmarks/bench_caches.py --check      # exit 1 unless >=2 scenarios
                                                   # reach the 2x speedup target
    REPRO_ORACLE_INSTANCES=200 python benchmarks/bench_caches.py --write
                                                   # include the differential-
                                                   # oracle sweep in the document

The emitted ``BENCH_pr4.json`` records per-scenario wall seconds,
speedups and cache hit counts, plus the differential-oracle verdict
(instances run / failures) when the sweep is enabled.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))  # for tests.oracle / tests.test_oracle

import repro.perf as perf  # noqa: E402
from repro.answering.query_incomplete import query_incomplete  # noqa: E402
from repro.incomplete.certainty import certain_prefix, possible_prefix  # noqa: E402
from repro.refine.refine import refine_sequence  # noqa: E402
from repro.refine.type_intersect import intersect_with_tree_type  # noqa: E402
from repro.mediator.webhouse import Webhouse  # noqa: E402
from repro.workloads.catalog import (  # noqa: E402
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query4,
)

import series  # noqa: E402

#: Where the result document goes (repo root, committed).
RESULT_PATH = REPO_ROOT / "BENCH_pr4.json"

#: Acceptance: at least MIN_WINNERS scenarios at or above TARGET_SPEEDUP.
TARGET_SPEEDUP = 2.0
MIN_WINNERS = 2

#: Replays per scenario — repetition is the workload the caches target.
REPEATS = 5


def _catalog_history(n_products: int, seed: int):
    doc = generate_catalog(n_products, seed=seed)
    queries = [query1(), query2(), query4()]
    return [(q, q.evaluate(doc)) for q in queries]


# -- scenarios -------------------------------------------------------------------
# Each is a zero-arg callable doing REPEATS passes of identical work.


def scenario_emptiness_repeated() -> None:
    """E4 shape: the emptiness fixpoint re-asked on deep chain types."""
    taus = [series.chain_type(depth) for depth in (50, 100, 200)]
    for _ in range(REPEATS):
        for tau in taus:
            tau.is_empty()
            tau.productive_symbols()


def scenario_prefix_repeated() -> None:
    """E5 shape: certain/possible prefix re-asked on fixed knowledge.

    The prefix recursions re-run per call, but their matching and
    normalization substrates hit the memo tables."""
    history = _catalog_history(8, seed=8)
    knowledge = intersect_with_tree_type(
        refine_sequence(CATALOG_ALPHABET, history), catalog_type()
    )
    prefix = knowledge.data_tree()
    for _ in range(REPEATS):
        possible_prefix(prefix, knowledge)
        certain_prefix(prefix, knowledge)


def scenario_refine_replay() -> None:
    """E7 shape: the same acquisition history folded again (replay /
    crash-recovery pattern — every Refine step repeats exactly)."""
    history = _catalog_history(6, seed=6)
    for _ in range(REPEATS):
        refine_sequence(CATALOG_ALPHABET, history, tree_type=catalog_type())


def scenario_query_incomplete_repeated() -> None:
    """E9 shape: the same query posed repeatedly to fixed knowledge."""
    history = _catalog_history(6, seed=16)
    knowledge = refine_sequence(CATALOG_ALPHABET, history)
    queries = [query1(), query2(), query4()]
    for _ in range(REPEATS):
        for q in queries:
            query_incomplete(knowledge, q)


def scenario_mediator_batch() -> None:
    """E10 shape: warehouses rebuilt from one history (record_many),
    then asked the same certain-answer questions."""
    history = _catalog_history(5, seed=25)
    for _ in range(REPEATS):
        wh = Webhouse(CATALOG_ALPHABET, tree_type=catalog_type())
        wh.record_many(history)
        wh.answer_locally(query1())


SCENARIOS = {
    "E4_emptiness_repeated": scenario_emptiness_repeated,
    "E5_prefix_repeated": scenario_prefix_repeated,
    "E7_refine_replay": scenario_refine_replay,
    "E9_query_incomplete_repeated": scenario_query_incomplete_repeated,
    "E10_mediator_batch": scenario_mediator_batch,
}


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_scenarios() -> dict:
    results = {}
    for name, fn in SCENARIOS.items():
        perf.clear_caches()
        with perf.uncached():
            fn()  # warm the CPython side (imports, code objects) evenly
            uncached_s = _time(fn)
        perf.clear_caches()
        with perf.cached():
            cached_s = _time(fn)
            stats = perf.cache_stats()
        perf.clear_caches()
        hits = sum(t["hits"] for t in stats["tables"].values())
        misses = sum(t["misses"] for t in stats["tables"].values())
        speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
        results[name] = {
            "repeats": REPEATS,
            "uncached_s": round(uncached_s, 6),
            "cached_s": round(cached_s, 6),
            "speedup": round(speedup, 3),
            "cache_hits": hits,
            "cache_misses": misses,
        }
        print(
            f"  {name:<30} off {uncached_s:>8.4f}s  on {cached_s:>8.4f}s  "
            f"x{speedup:>6.2f}  ({hits} hits / {misses} misses)"
        )
    return results


def run_oracle_sweep(instances: int) -> dict:
    """The differential-oracle sweep from tests/test_oracle.py, counted."""
    from tests.test_oracle import _check_instance

    failures = []
    for seed in range(instances):
        try:
            _check_instance(seed)
        except AssertionError as exc:  # pragma: no cover - only on regression
            failures.append({"seed": seed, "error": str(exc)[:200]})
    print(f"  oracle sweep: {instances} instances, {len(failures)} failures")
    return {"instances": instances, "failures": len(failures), "detail": failures}


def main(argv) -> int:
    args = set(argv[1:])
    if not args <= {"--write", "--check"}:
        print(__doc__)
        return 2
    write, check = "--write" in args, "--check" in args
    print(f"cache benchmark: {len(SCENARIOS)} repeated-query scenarios...")
    scenarios = run_scenarios()
    winners = [
        name
        for name, row in scenarios.items()
        if row["speedup"] >= TARGET_SPEEDUP
    ]
    met = len(winners) >= MIN_WINNERS
    print(
        f"{len(winners)}/{len(scenarios)} scenarios at >= {TARGET_SPEEDUP}x "
        f"({'PASS' if met else 'FAIL'}: need {MIN_WINNERS}): "
        + ", ".join(winners)
    )
    document = {
        "suite": "pr4-caches",
        "repeats": REPEATS,
        "scenarios": scenarios,
        "criteria": {
            "target_speedup": TARGET_SPEEDUP,
            "min_scenarios": MIN_WINNERS,
            "winners": winners,
            "met": met,
        },
    }
    instances = int(os.environ.get("REPRO_ORACLE_INSTANCES", "0"))
    if instances:
        print(f"running differential-oracle sweep ({instances} instances)...")
        document["oracle"] = run_oracle_sweep(instances)
        if document["oracle"]["failures"]:
            met = False
    if write:
        RESULT_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")
    if check and not met:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
