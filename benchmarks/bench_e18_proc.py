#!/usr/bin/env python
"""E18-proc: thread vs process shard workers (multi-core data plane).

The PR-7 thread backend scales *knowledge locality* (one small engine
per session) but not CPU: every shard's ps-query evaluation contends
for the one interpreter lock, so a 4-shard ``ask_all`` on a 4-core box
still burns one core.  The PR-10 process backend hosts each shard's
engines in its own worker process behind the ``cluster.wire`` framed
codec, so shard-parallel evaluation becomes process-parallel.

Three configurations run the same fleet workload with direct calls
(no HTTP hop — this measures the data plane, not the socket):

* **mono** — one ``Webhouse`` holding the deduplicated fleet corpus,
  hammered by N threads calling ``answer_with_caveats`` (the ``/ask``
  read path without the server);
* **thread** — ``ShardedWebhouse(shards=4, backend="thread")``, the
  same N threads calling ``cluster.answer`` per tenant, plus a timed
  ``ask_all`` scatter-gather loop;
* **process** — the same pool with ``backend="process"``.

Acceptance criterion (ISSUE 10): on a multi-core host the process
backend's aggregate ``ask_all`` throughput must be **>= 1.5x** the
thread backend's, with keyed-read p50 no worse than **+20%**.  On a
single-core host (CI fallback, ``os.cpu_count() < 2``) the perf gate
is skipped — process workers cannot beat threads without cores — and
the suite only requires bit-for-bit certain-answer invariance across
all three configurations, which is checked unconditionally.

Usage::

    python benchmarks/bench_e18_proc.py              # run + print
    python benchmarks/bench_e18_proc.py --write      # also write BENCH_pr10.json
    python benchmarks/bench_e18_proc.py --check      # exit 1 if criteria unmet
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ShardedWebhouse  # noqa: E402
from repro.core.parsing import parse_query_spec  # noqa: E402
from repro.mediator.source import InMemorySource  # noqa: E402
from repro.mediator.webhouse import Webhouse  # noqa: E402
from repro.workloads.catalog import (  # noqa: E402
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)

RESULT_PATH = REPO_ROOT / "BENCH_pr10.json"

SHARDS = 4
CLIENT_THREADS = 8
SESSIONS = 16
REQUESTS_PER_THREAD = 25
ASK_ALL_ROUNDS = 12
PRODUCTS = 16
SEED = 7

SPECS = (
    "q1",
    "q2",
    "q3",
    "q4",
    "catalog/product/price[<100]",
    "catalog/product/price[<300]",
    "catalog/product/price[<500]",
    "catalog/product/name",
)


def _named():
    return {"q1": query1, "q2": query2, "q3": query3, "q4": query4}


def _queries():
    return [parse_query_spec(spec, named=_named()) for spec in SPECS]


def _tenant_specs(tenant: int):
    return SPECS[(2 * tenant) % len(SPECS)], SPECS[(2 * tenant + 1) % len(SPECS)]


def _source() -> InMemorySource:
    return InMemorySource(generate_catalog(PRODUCTS, seed=SEED), catalog_type())


def _facts(tree):
    return sorted(
        (n, tree.label(n), tree.value(n), tree.parent(n)) for n in tree.node_ids()
    )


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 3),
        "p99_ms": round(ordered[max(0, int(len(ordered) * 0.99) - 1)] * 1000, 3),
        "count": len(ordered),
    }


def _hammer(ask_once):
    """N threads; each calls ``ask_once(tenant, spec)`` in its own walk."""
    samples = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        mine = []
        for i in range(REQUESTS_PER_THREAD):
            tenant = (worker * REQUESTS_PER_THREAD + i) % SESSIONS
            spec = _tenant_specs(tenant)[i % 2]
            t0 = time.perf_counter()
            ask_once(tenant, spec)
            mine.append(time.perf_counter() - t0)
        with lock:
            samples.extend(mine)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(CLIENT_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return samples, time.perf_counter() - started


def run_mono():
    """Single engine, deduped fleet corpus: the paper's one-webhouse view."""
    source = _source()
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=catalog_type())
    for query in _queries():
        webhouse.ask(source, query)
    webhouse.prepare()
    named = _named()

    def ask_once(tenant, spec):
        webhouse.answer_with_caveats(parse_query_spec(spec, named=named))

    samples, wall_s = _hammer(ask_once)
    fleet = [_facts(webhouse.answer_with_caveats(q)[0]) for q in _queries()[:3]]
    return {
        "ask": {**_percentiles(samples), "rps": round(len(samples) / wall_s, 1)},
        "ask_all": None,
        "fleet_facts": fleet,
    }


def build_cluster(backend: str) -> ShardedWebhouse:
    source = _source()
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=SHARDS, backend=backend
    )
    named = _named()
    for tenant in range(SESSIONS):
        for spec in _tenant_specs(tenant):
            cluster.ask(
                f"tenant-{tenant}", source, parse_query_spec(spec, named=named)
            )
    return cluster


def run_backend(backend: str):
    cluster = build_cluster(backend)
    named = _named()
    try:

        def ask_once(tenant, spec):
            cluster.answer(f"tenant-{tenant}", parse_query_spec(spec, named=named))

        samples, wall_s = _hammer(ask_once)

        gather_s = []
        for _ in range(ASK_ALL_ROUNDS):
            t0 = time.perf_counter()
            cluster.ask_all(query1())
            gather_s.append(time.perf_counter() - t0)

        # fleet-wide unions for the cross-backend invariance check; the
        # mono baseline compares per-query certain answers instead (its
        # one engine *is* the fleet), so those are collected separately
        fleet = [_facts(cluster.ask_all(q)[0]) for q in _queries()[:3]]
        return {
            "ask": {**_percentiles(samples), "rps": round(len(samples) / wall_s, 1)},
            "ask_all": {
                **_percentiles(gather_s),
                "rps": round(len(gather_s) / sum(gather_s), 2),
            },
            "fleet_facts": fleet,
        }
    finally:
        cluster.close()


def check_invariance(thread_run, process_run) -> bool:
    """Thread and process fleets return bit-identical certain answers."""
    return thread_run["fleet_facts"] == process_run["fleet_facts"]


def evaluate(mono, thread_run, process_run) -> dict:
    failures = []
    multi_core = (os.cpu_count() or 1) >= 2
    if not check_invariance(thread_run, process_run):
        failures.append("certain answers differ between thread and process")

    speedup = None
    p50_ratio = None
    if thread_run["ask_all"] and process_run["ask_all"]:
        speedup = round(
            process_run["ask_all"]["rps"] / thread_run["ask_all"]["rps"], 2
        )
        p50_ratio = round(
            process_run["ask"]["p50_ms"] / max(thread_run["ask"]["p50_ms"], 1e-9), 2
        )
    if multi_core:
        if speedup is None or speedup < 1.5:
            failures.append(
                f"process ask_all throughput {speedup}x thread < required 1.5x"
            )
        if p50_ratio is None or p50_ratio > 1.2:
            failures.append(f"process keyed-read p50 {p50_ratio}x thread > 1.2x")
    return {
        "met": not failures,
        "failures": failures,
        "multi_core": multi_core,
        "cpu_count": os.cpu_count() or 1,
        "perf_gate": "enforced" if multi_core else "skipped (single-core host)",
        "ask_all_speedup_x": speedup,
        "ask_p50_ratio_x": p50_ratio,
    }


def build_document() -> dict:
    mono = run_mono()
    thread_run = run_backend("thread")
    process_run = run_backend("process")
    criteria = evaluate(mono, thread_run, process_run)
    strip = lambda run: {k: v for k, v in run.items() if k != "fleet_facts"}  # noqa: E731
    return {
        "suite": "bench_e18_proc",
        "shards": SHARDS,
        "client_threads": CLIENT_THREADS,
        "sessions": SESSIONS,
        "ask_all_speedup_x": criteria["ask_all_speedup_x"],
        "mono": strip(mono),
        "thread": strip(thread_run),
        "process": strip(process_run),
        "criteria": criteria,
    }


def main(argv) -> int:
    document = build_document()
    print(json.dumps(document, indent=2))
    if "--write" in argv:
        RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    if "--check" in argv and not document["criteria"]["met"]:
        print("CRITERIA NOT MET:", "; ".join(document["criteria"]["failures"]))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
