"""E16 — Theorem 4.2: k-pebble automaton acceptance scales polynomially
in the tree (fixed k); bounded witness search illustrates why emptiness
(Theorem 4.3) is out of reach."""

from repro.extensions.binary_encoding import encode
from repro.extensions.pebble import (
    DOWN_LEFT,
    DOWN_RIGHT,
    PLACE,
    Move,
    PebbleAutomaton,
    product,
)
from repro.core.tree import DataTree, node

import series


def _search_automaton(target):
    transitions = {}
    for label in ("a", "b", "#"):
        moves = []
        if label == target:
            moves.append(Move(PLACE, "yes"))
        if label != "#":
            moves.append(Move(DOWN_LEFT, "scan"))
            moves.append(Move(DOWN_RIGHT, "scan"))
        transitions[("scan", label, frozenset())] = tuple(moves)
    return PebbleAutomaton(2, "scan", ["yes"], transitions)


def _comb(n):
    spec = node("leaf", "b", 0)
    for i in range(n - 1):
        spec = node(f"n{i}", "a", 0, [spec])
    return encode(DataTree.build(spec))


def test_acceptance_scaling_table():
    rows = series.series_pebble()
    series.print_table("E16 pebble automaton acceptance", rows)
    small, large = rows[0], rows[-1]
    node_ratio = large["nodes"] / small["nodes"]
    assert large["accepts_s"] < max(small["accepts_s"], 1e-4) * node_ratio**3


def test_accepts_200_nodes(benchmark):
    automaton = _search_automaton("b")
    tree = _comb(200)
    assert benchmark(lambda: automaton.accepts(tree))


def test_product_acceptance(benchmark):
    both = product(_search_automaton("a"), _search_automaton("b"))
    tree = _comb(100)
    assert benchmark.pedantic(lambda: both.accepts(tree), rounds=3, iterations=1)


def test_bounded_witness_search(benchmark):
    automaton = _search_automaton("b")
    witness = benchmark.pedantic(
        lambda: automaton.find_accepted(["a", "b"], max_nodes=4),
        rounds=1,
        iterations=1,
    )
    assert witness is not None
