"""E9 — Theorem 3.14 / Corollary 3.15: q(T) construction is polynomial
in T for fixed Σ, exponential in |Σ| in the worst case; answerability
piggybacks on it."""

from repro.answering.answerable import fully_answerable
from repro.answering.query_incomplete import query_incomplete
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)

import series


def _knowledge(n_products):
    doc = generate_catalog(n_products, seed=n_products)
    history = [
        (query1(), query1().evaluate(doc)),
        (query2(), query2().evaluate(doc)),
    ]
    return intersect_with_tree_type(
        refine_sequence(CATALOG_ALPHABET, history), catalog_type()
    )


def test_qT_scaling_table():
    rows = series.series_query_incomplete()
    series.print_table("E9 q(T) construction vs knowledge size", rows)
    small, large = rows[0], rows[-1]
    size_ratio = large["knowledge_size"] / small["knowledge_size"]
    assert large["seconds"] < max(small["seconds"], 1e-3) * size_ratio**3


def test_qT_alphabet_blowup_table():
    rows = series.series_query_incomplete_alphabet()
    series.print_table("E9 q(T) vs alphabet width (exponential in Σ)", rows)
    sizes = [r["qT_size"] for r in rows]
    assert sizes == sorted(sizes)


def test_query_incomplete_20_products(benchmark):
    knowledge = _knowledge(20)
    benchmark.pedantic(
        lambda: query_incomplete(knowledge, query4()), rounds=3, iterations=1
    )


def test_fully_answerable_20_products(benchmark):
    knowledge = _knowledge(20)
    result = benchmark.pedantic(
        lambda: fully_answerable(knowledge, query3()), rounds=3, iterations=1
    )
