"""E7 — Theorems 3.4/3.5: each Refine step is polynomial in the
query/answer pair and the current representation."""

from repro.refine.inverse import inverse_incomplete, universal_incomplete
from repro.refine.refine import refine
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
)

import series


def test_refine_cost_table():
    rows = series.series_refine_cost()
    series.print_table("E7 per-step Refine cost (Theorem 3.4)", rows)
    # polynomial shape: 16x answer growth => well under cubic time growth
    small, large = rows[0], rows[-1]
    node_ratio = max(large["answer_nodes"] / max(small["answer_nodes"], 1), 2)
    assert large["refine_s"] < max(small["refine_s"], 1e-4) * node_ratio**3


def test_inverse_construction_40_products(benchmark):
    doc = generate_catalog(40, seed=40)
    answer = query1().evaluate(doc)
    benchmark(lambda: inverse_incomplete(query1(), answer, CATALOG_ALPHABET))


def test_refine_step_40_products(benchmark):
    doc = generate_catalog(40, seed=40)
    answer = query1().evaluate(doc)
    base = universal_incomplete(CATALOG_ALPHABET)
    benchmark.pedantic(
        lambda: refine(base, query1(), answer, CATALOG_ALPHABET),
        rounds=3,
        iterations=1,
    )


def test_second_refine_step_20_products(benchmark):
    doc = generate_catalog(20, seed=20)
    a1 = query1().evaluate(doc)
    a2 = query2().evaluate(doc)
    base = refine(
        universal_incomplete(CATALOG_ALPHABET), query1(), a1, CATALOG_ALPHABET
    )
    benchmark.pedantic(
        lambda: refine(base, query2(), a2, CATALOG_ALPHABET),
        rounds=3,
        iterations=1,
    )


def test_type_intersection_20_products(benchmark):
    doc = generate_catalog(20, seed=20)
    a1 = query1().evaluate(doc)
    refined = refine(
        universal_incomplete(CATALOG_ALPHABET), query1(), a1, CATALOG_ALPHABET
    )
    tt = catalog_type()
    benchmark.pedantic(
        lambda: intersect_with_tree_type(refined, tt), rounds=3, iterations=1
    )
