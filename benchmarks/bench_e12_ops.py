#!/usr/bin/env python
"""E12-ops: concurrent load against the live ops plane.

Starts an in-process :class:`repro.ops.OpsServer` hosting a catalog
webhouse, then hammers it with threaded HTTP clients alternating
``/ask`` (all four catalog queries), ``/metrics`` and ``/healthz``,
plus a deliberate stream of malformed queries.  Reports per-endpoint
latency percentiles, request throughput, the HTTP overhead over calling
the engine directly, and verifies the ops-plane contracts under load:

* every response carries a unique ``X-Repro-Trace-Id``;
* no cross-thread span parentage (every span of a retained trace root
  carries that root's trace id);
* ``/metrics`` output passes ``validate_prometheus_text`` and includes
  ``repro_cache_*`` series;
* the flight recorder retains **every** errored trace;
* the flight-recorder dump passes ``validate_chrome_trace``.

Usage::

    python benchmarks/bench_e12_ops.py              # run + print
    python benchmarks/bench_e12_ops.py --write      # also write BENCH_pr6.json
    python benchmarks/bench_e12_ops.py --check      # exit 1 on any violated contract
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.obs as obs  # noqa: E402
import repro.perf as perf  # noqa: E402
from repro.obs.export import (  # noqa: E402
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.ops import FlightRecorder, OpsServer, demo_webhouse  # noqa: E402
from repro.workloads.catalog import query1  # noqa: E402

#: Where the result document goes (repo root, committed).
RESULT_PATH = REPO_ROOT / "BENCH_pr6.json"

THREADS = 6
REQUESTS_PER_THREAD = 24
ERROR_REQUESTS = 12  # malformed /ask probes (must all be retained as errored)

#: The request mix one client thread cycles through.
MIX = (
    "/ask?q=q1",
    "/metrics",
    "/ask?q=q2",
    "/healthz",
    "/ask?q=q4",
    "/ask?q=catalog/product/price[<300]",
)


def _get(base: str, endpoint: str):
    """One request; returns (endpoint, status, seconds, trace_id, body)."""
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(base + endpoint, timeout=10) as resp:
            body = resp.read()
            status = resp.status
            trace_id = resp.headers.get("X-Repro-Trace-Id")
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
        trace_id = exc.headers.get("X-Repro-Trace-Id")
    return endpoint, status, time.perf_counter() - start, trace_id, body


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 3),
        "p95_ms": round(ordered[max(0, int(len(ordered) * 0.95) - 1)] * 1000, 3),
        "max_ms": round(ordered[-1] * 1000, 3),
        "count": len(ordered),
    }


def run_load():
    recorder = FlightRecorder(
        capacity=THREADS * REQUESTS_PER_THREAD + 16,
        errored_capacity=ERROR_REQUESTS + 16,
    )
    webhouse, source = demo_webhouse(products=6)
    server = OpsServer(webhouse, source=source, recorder=recorder).start()
    base = server.url
    results = []
    results_lock = threading.Lock()

    def client(worker: int) -> None:
        rows = []
        for i in range(REQUESTS_PER_THREAD):
            endpoint = MIX[(worker + i) % len(MIX)]
            rows.append(_get(base, endpoint))
        with results_lock:
            results.extend(rows)

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(w,)) for w in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - started

    # a burst of malformed queries: every one must land in the errored ring
    error_rows = [_get(base, "/ask?q=%5Bnot-a-query") for _ in range(ERROR_REQUESTS)]

    # live-scrape validation under the post-load state
    _, metrics_status, _, _, metrics_body = _get(base, "/metrics")
    _, flight_status, _, _, flight_body = _get(base, "/debug/flightrecorder")

    # direct-call baseline for the /ask overhead figure
    q = query1()
    direct = []
    for _ in range(50):
        t0 = time.perf_counter()
        webhouse.answer_with_caveats(q)
        direct.append(time.perf_counter() - t0)

    server.stop()
    return {
        "results": results,
        "error_rows": error_rows,
        "wall_s": wall_s,
        "recorder": recorder,
        "metrics": (metrics_status, metrics_body),
        "flight": (flight_status, flight_body),
        "direct_ask_s": direct,
    }


def evaluate(load) -> dict:
    results = load["results"]
    failures = []

    by_endpoint = {}
    for endpoint, status, seconds, trace_id, _ in results:
        key = endpoint.split("?")[0]
        by_endpoint.setdefault(key, []).append(seconds)
        if status != 200:
            failures.append(f"{endpoint} returned {status}")
    endpoint_stats = {k: _percentiles(v) for k, v in sorted(by_endpoint.items())}

    trace_ids = [row[3] for row in results + load["error_rows"]]
    if None in trace_ids:
        failures.append("response without X-Repro-Trace-Id header")
    if len(set(trace_ids)) != len(trace_ids):
        failures.append("duplicate trace ids across requests")

    for _, status, _, _, _ in load["error_rows"]:
        if status != 400:
            failures.append(f"malformed query returned {status}, expected 400")
    recorder = load["recorder"]
    rec_stats = recorder.stats()
    if rec_stats["retained_errored"] < len(load["error_rows"]):
        failures.append(
            f"flight recorder dropped errored traces "
            f"({rec_stats['retained_errored']} < {len(load['error_rows'])})"
        )

    # every retained trace must be single-trace-id: no cross-thread adoption
    for root in recorder.roots():
        root_tid = root.attrs.get("trace_id")
        stack = [root]
        while stack:
            node = stack.pop()
            if node.attrs.get("trace_id") != root_tid:
                failures.append(
                    f"span {node.name!r} carries trace {node.attrs.get('trace_id')!r} "
                    f"inside trace {root_tid!r}"
                )
                break
            stack.extend(node.children)

    metrics_status, metrics_body = load["metrics"]
    try:
        samples = validate_prometheus_text(metrics_body.decode("utf-8"))
        if not any(name.startswith("repro_cache_") for name in samples):
            failures.append("no repro_cache_* series in /metrics")
    except ValueError as exc:
        failures.append(f"/metrics failed validation: {exc}")
    flight_status, flight_body = load["flight"]
    try:
        flight_events = validate_chrome_trace(json.loads(flight_body.decode("utf-8")))
    except ValueError as exc:
        flight_events = 0
        failures.append(f"/debug/flightrecorder failed validation: {exc}")

    ask_p50 = endpoint_stats.get("/ask", {}).get("p50_ms", 0.0)
    direct_p50 = round(statistics.median(load["direct_ask_s"]) * 1000, 3)
    return {
        "suite": "pr6-ops",
        "threads": THREADS,
        "requests": len(results),
        "error_requests": len(load["error_rows"]),
        "wall_s": round(load["wall_s"], 4),
        "throughput_rps": round(len(results) / load["wall_s"], 1),
        "endpoints": endpoint_stats,
        "ask_overhead": {
            "http_p50_ms": ask_p50,
            "direct_p50_ms": direct_p50,
            "overhead_ms": round(ask_p50 - direct_p50, 3),
        },
        "flight_recorder": rec_stats,
        "flight_trace_events": flight_events,
        "criteria": {
            "min_threads": 4,
            "unique_trace_ids": len(set(t for t in trace_ids if t)),
            "failures": failures,
            "met": not failures and THREADS >= 4,
        },
    }


def main(argv) -> int:
    args = set(argv[1:])
    if not args <= {"--write", "--check"}:
        print(__doc__)
        return 2
    write, check = "--write" in args, "--check" in args

    obs.reset()
    perf.clear_caches()
    previous = (obs.STATE.enabled, obs.STATE.sink)
    obs.enable(obs.RingBufferSink())
    perf.enable_caches()
    try:
        print(
            f"ops load: {THREADS} client threads x {REQUESTS_PER_THREAD} requests "
            f"+ {ERROR_REQUESTS} malformed..."
        )
        document = evaluate(run_load())
    finally:
        obs.STATE.enabled, obs.STATE.sink = previous
        perf.disable_caches()

    for endpoint, row in document["endpoints"].items():
        print(
            f"  {endpoint:<28} p50 {row['p50_ms']:>8.3f}ms  "
            f"p95 {row['p95_ms']:>8.3f}ms  x{row['count']}"
        )
    overhead = document["ask_overhead"]
    print(
        f"  /ask overhead: http p50 {overhead['http_p50_ms']}ms vs direct "
        f"{overhead['direct_p50_ms']}ms (+{overhead['overhead_ms']}ms)"
    )
    print(
        f"  {document['throughput_rps']} req/s over {document['wall_s']}s; "
        f"flight recorder {document['flight_recorder']['retained_completed']} completed / "
        f"{document['flight_recorder']['retained_errored']} errored retained"
    )
    met = document["criteria"]["met"]
    if document["criteria"]["failures"]:
        for failure in document["criteria"]["failures"]:
            print(f"  FAIL: {failure}")
    print(f"contracts: {'PASS' if met else 'FAIL'}")
    if write:
        RESULT_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {RESULT_PATH}")
    if check and not met:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
