"""Ablation — the design choices DESIGN.md calls out.

Measures what normalization (dead-symbol pruning) and symbol
minimization buy during refinement: representation size and wall time
with each switched off, on the catalog workload and the blowup family.
"""

from repro.refine.minimize import merge_equivalent_symbols
from repro.refine.refine import refine, refine_sequence
from repro.refine.inverse import universal_incomplete
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    generate_catalog,
    query1,
    query2,
)

import series


def _fold(history, alphabet, normalize, minimize):
    current = universal_incomplete(alphabet)
    for query, answer in history:
        current = refine(current, query, answer, alphabet, normalize=normalize)
        if minimize:
            current = merge_equivalent_symbols(current)
    return current


def test_ablation_table():
    rows = []
    for n in (3, 5):
        history = pair_queries(n)
        for normalize, minimize in [(False, False), (True, False), (True, True)]:
            size = _fold(history, BLOWUP_ALPHABET, normalize, minimize).size()
            rows.append(
                {
                    "workload": f"pairs n={n}",
                    "normalize": normalize,
                    "minimize": minimize,
                    "size": size,
                }
            )
    doc = generate_catalog(15, seed=15)
    history = [(query1(), query1().evaluate(doc)), (query2(), query2().evaluate(doc))]
    for normalize, minimize in [(False, False), (True, False), (True, True)]:
        size = _fold(history, CATALOG_ALPHABET, normalize, minimize).size()
        rows.append(
            {
                "workload": "catalog q1+q2",
                "normalize": normalize,
                "minimize": minimize,
                "size": size,
            }
        )
    series.print_table("Ablation: normalization / minimization", rows)
    # normalization must never grow the representation
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row["size"])
    for sizes in by_workload.values():
        assert sizes[0] >= sizes[1] >= sizes[2]


def test_refine_without_normalization(benchmark):
    history = pair_queries(5)
    benchmark.pedantic(
        lambda: _fold(history, BLOWUP_ALPHABET, False, False),
        rounds=3,
        iterations=1,
    )


def test_refine_with_normalization(benchmark):
    history = pair_queries(5)
    benchmark.pedantic(
        lambda: _fold(history, BLOWUP_ALPHABET, True, False),
        rounds=3,
        iterations=1,
    )


def test_refine_with_minimization(benchmark):
    history = pair_queries(5)
    benchmark.pedantic(
        lambda: _fold(history, BLOWUP_ALPHABET, True, True),
        rounds=3,
        iterations=1,
    )
