"""E5 — Theorem 2.8: certain/possible prefix checks are PTIME in the
incomplete tree."""

from repro.core.tree import DataTree, node
from repro.incomplete.certainty import certain_prefix, possible_prefix
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import CATALOG_ALPHABET, catalog_type, generate_catalog, query1

import series


def _knowledge(n_products):
    doc = generate_catalog(n_products, seed=n_products)
    history = [(query1(), query1().evaluate(doc))]
    return intersect_with_tree_type(
        refine_sequence(CATALOG_ALPHABET, history), catalog_type()
    )


def _ghost_prefix():
    return DataTree.build(
        node(
            "cat0",
            "catalog",
            0,
            [
                node(
                    "ghost",
                    "product",
                    0,
                    [node("gp", "price", 999), node("gc", "cat", "garden")],
                )
            ],
        )
    )


def test_prefix_scaling_table():
    rows = series.series_prefix()
    series.print_table("E5 certain/possible prefix (Theorem 2.8, PTIME)", rows)
    small, large = rows[0], rows[-1]
    size_ratio = large["repr_size"] / small["repr_size"]
    for key in ("possible_s", "certain_s"):
        assert large[key] < max(small[key], 1e-4) * size_ratio**3


def test_possible_prefix_20_products(benchmark):
    knowledge = _knowledge(20)
    prefix = _ghost_prefix()
    result = benchmark(lambda: possible_prefix(prefix, knowledge))
    assert result  # a cheap garden product can be missing


def test_certain_prefix_20_products(benchmark):
    knowledge = _knowledge(20)
    prefix = _ghost_prefix()
    result = benchmark(lambda: certain_prefix(prefix, knowledge))
    assert not result
