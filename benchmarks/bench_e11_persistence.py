"""E11: persistence overhead and resume cost (docs/PERSISTENCE.md).

Two questions:

- How much does journaling (with per-event fsync) add to a refine step?
  Compares ``Webhouse.record`` bare vs attached to a session.
- How does resume time scale with history length, and how much does a
  snapshot save over pure replay of the journal?

Run:  PYTHONPATH=src python benchmarks/report.py E11
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

import series


@pytest.mark.parametrize("steps", [4])
def test_journal_overhead_benchmark(benchmark, steps):
    from repro.mediator.webhouse import Webhouse
    from repro.store import SessionStore
    from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

    history = pair_queries(steps)

    def journaled_session():
        with tempfile.TemporaryDirectory() as root:
            store = SessionStore(root, snapshot_every=10_000)
            wh = Webhouse(BLOWUP_ALPHABET)
            wh.attach(store.create("bench", BLOWUP_ALPHABET))
            for query, answer in history:
                wh.record(query, answer)
            wh.detach()

    benchmark(journaled_session)


@pytest.mark.parametrize("steps", [4])
def test_resume_benchmark(benchmark, steps):
    from repro.mediator.webhouse import Webhouse
    from repro.store import SessionStore
    from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

    root = tempfile.mkdtemp(prefix="repro-bench-e11-")
    store = SessionStore(root, snapshot_every=10_000)
    wh = Webhouse(BLOWUP_ALPHABET)
    wh.attach(store.create("bench", BLOWUP_ALPHABET))
    for query, answer in pair_queries(steps):
        wh.record(query, answer)
    wh.detach()

    def resume():
        Webhouse.resume(store, "bench").detach()

    benchmark(resume)


if __name__ == "__main__":
    series.print_table(
        "E11: persistence overhead and resume cost",
        series.series_persistence(),
    )
