#!/usr/bin/env python
"""E17-faults: disarmed-injection overhead + shard recovery time.

PR 9 threads fault-injection sites through the store, cluster, and ops
layers, always compiled in.  That is only tenable if the *disarmed*
plane is free and the recovery machinery it proves is fast.  Two
measurements, two acceptance criteria:

* **overhead** — the same ``/ask`` workload driven through the full
  in-process request pipeline twice: once with the shipped disarmed
  hooks (one module-global read per site) and once with every call
  site's ``armed`` gate monkeypatched to a constant-False stub (the
  no-plumbing baseline).  Batches alternate between the two servers,
  and the whole comparison repeats for several rounds with the median
  round reported, so scheduler noise hits both sides equally.
  Criterion: disarmed ``/ask`` p50 within **2%** of the baseline;
* **recovery** — a durable 2-shard cluster records a keyed workload,
  is killed (handles abandoned, locks left behind), and every session
  is resumed from its journal+snapshot the way a restarted shard would
  (:meth:`Webhouse.resume` — the same path ``_revive_engine`` and
  cluster restart take).  Reported as a per-session recovery-time
  distribution plus the full-fleet restart wall time.  Criterion:
  every session recovers with its acknowledged history intact.

Usage::

    python benchmarks/bench_e17_faults.py              # run + print
    python benchmarks/bench_e17_faults.py --write      # also write BENCH_pr9.json
    python benchmarks/bench_e17_faults.py --check      # exit 1 if criteria unmet
"""

from __future__ import annotations

import json
import math
import shutil
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.cluster.executor as executor_module  # noqa: E402
import repro.obs as obs  # noqa: E402
import repro.ops.server as server_module  # noqa: E402
import repro.store.journal as journal_module  # noqa: E402
import repro.store.snapshot as snapshot_module  # noqa: E402
from repro.cluster import ShardedWebhouse  # noqa: E402
from repro.mediator.source import InMemorySource  # noqa: E402
from repro.mediator.webhouse import Webhouse  # noqa: E402
from repro.ops import OpsServer, demo_webhouse  # noqa: E402
from repro.ops.server import drive_request  # noqa: E402
from repro.store import SessionStore  # noqa: E402
from repro.workloads.catalog import (  # noqa: E402
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)

#: Where the result document goes (repo root, committed).
RESULT_PATH = REPO_ROOT / "BENCH_pr9.json"

PRODUCTS = 48
SEED = 7
WARMUP = 60
ROUNDS = 3
BATCHES = 12
BATCH_SIZE = 25

MAX_OVERHEAD_PCT = 2.0

FLEET_SHARDS = 2
FLEET_SESSIONS = 10
FLEET_OPS_PER_SESSION = 4

SPECS = ("q1", "q2", "q3", "q4")

#: Every module that imported the ``armed`` fast gate at a call site.
_GATED_MODULES = (
    server_module,
    journal_module,
    snapshot_module,
    executor_module,
)


def _percentiles(samples):
    ordered = sorted(samples)
    return {
        "p50_ms": round(statistics.median(ordered) * 1000, 4),
        "p99_ms": round(
            ordered[max(0, math.ceil(0.99 * len(ordered)) - 1)] * 1000, 4
        ),
        "count": len(ordered),
    }


class _gates_stubbed:
    """Swap every call site's ``_faults_armed`` for a constant False."""

    def __enter__(self):
        self._saved = [(m, m._faults_armed) for m in _GATED_MODULES]
        for module in _GATED_MODULES:
            module._faults_armed = lambda: False
        return self

    def __exit__(self, *exc):
        for module, gate in self._saved:
            module._faults_armed = gate
        return False


def _drive_batch(server, offset: int, count: int):
    durations = []
    for i in range(offset, offset + count):
        endpoint = f"/ask?q={SPECS[i % len(SPECS)]}"
        started = time.perf_counter()
        status, _ = drive_request(server, endpoint)
        durations.append(time.perf_counter() - started)
        if status != 200:
            raise RuntimeError(f"{endpoint} returned {status}")
    return durations


def run_overhead():
    """Disarmed hooks vs stubbed-out gates on the same /ask workload.

    The servers are identical; only the module-level ``_faults_armed``
    bindings differ per batch.  Rounds are scored independently and the
    median round's overhead is reported — a single noisy scheduling
    quantum cannot fail the 2% budget.
    """
    obs.reset()
    obs.disable()
    armed_house, armed_source = demo_webhouse(PRODUCTS, seed=SEED)
    disarmed = OpsServer(armed_house, source=armed_source)
    stub_house, stub_source = demo_webhouse(PRODUCTS, seed=SEED)
    stubbed = OpsServer(stub_house, source=stub_source)

    _drive_batch(disarmed, 0, WARMUP)
    with _gates_stubbed():
        _drive_batch(stubbed, 0, WARMUP)

    rounds = []
    for round_index in range(ROUNDS):
        disarmed_durations, stubbed_durations = [], []
        for batch in range(BATCHES):
            offset = WARMUP + (round_index * BATCHES + batch) * BATCH_SIZE
            with _gates_stubbed():
                stubbed_durations.extend(_drive_batch(stubbed, offset, BATCH_SIZE))
            disarmed_durations.extend(_drive_batch(disarmed, offset, BATCH_SIZE))
        baseline = _percentiles(stubbed_durations)
        armed = _percentiles(disarmed_durations)
        rounds.append(
            {
                "baseline": baseline,
                "disarmed": armed,
                "p50_overhead_pct": round(
                    (armed["p50_ms"] - baseline["p50_ms"])
                    / baseline["p50_ms"]
                    * 100.0,
                    2,
                ),
            }
        )
    rounds.sort(key=lambda r: r["p50_overhead_pct"])
    median_round = rounds[len(rounds) // 2]
    return {"rounds": rounds, "median": median_round}


def run_recovery():
    """Kill a durable fleet; time every session's journal+snapshot resume."""
    root = REPO_ROOT / ".bench-e17-recovery"
    store_root = str(root)
    queries = (query1(), query2(), query3(), query4())
    source = InMemorySource(generate_catalog(PRODUCTS, seed=SEED), catalog_type())

    store = SessionStore(store_root)
    for name in store.list_sessions():
        store.delete(name)
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET,
        tree_type=catalog_type(),
        shards=FLEET_SHARDS,
        store=store,
    )
    expected = {}
    for tenant in range(FLEET_SESSIONS):
        key = f"tenant-{tenant}"
        for op in range(FLEET_OPS_PER_SESSION):
            cluster.ask(key, source, queries[(tenant + op) % len(queries)])
        expected[key] = len(cluster.engine(key).history)
    # the kill: abandon every handle without detaching (locks stay on
    # disk; resume breaks them as same-pid stale locks)
    del cluster

    resume_times = []
    recovered = {}
    restart_started = time.perf_counter()
    for shard_index in range(FLEET_SHARDS):
        sub = store.shard(shard_index)
        for name in sub.list_sessions():
            started = time.perf_counter()
            engine = Webhouse.resume(sub, name)
            engine.prepare()
            resume_times.append(time.perf_counter() - started)
            recovered[name] = len(engine.history)
            engine.detach()
    restart_wall_s = time.perf_counter() - restart_started

    shutil.rmtree(store_root, ignore_errors=True)

    ordered = sorted(resume_times)
    return {
        "sessions": FLEET_SESSIONS,
        "ops_per_session": FLEET_OPS_PER_SESSION,
        "expected_histories": expected,
        "recovered_histories": recovered,
        "resume_ms": {
            "p50": round(statistics.median(ordered) * 1000, 3),
            "p95": round(
                ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)] * 1000, 3
            ),
            "max": round(ordered[-1] * 1000, 3),
            "count": len(ordered),
        },
        "fleet_restart_wall_ms": round(restart_wall_s * 1000, 3),
    }


def evaluate(overhead, recovery) -> dict:
    failures = []
    median = overhead["median"]
    if median["p50_overhead_pct"] > MAX_OVERHEAD_PCT:
        failures.append(
            f"disarmed p50 overhead {median['p50_overhead_pct']}% > "
            f"{MAX_OVERHEAD_PCT:g}% budget"
        )
    if recovery["recovered_histories"] != recovery["expected_histories"]:
        failures.append(
            "recovered histories differ from the acknowledged ones: "
            f"{recovery['recovered_histories']} vs "
            f"{recovery['expected_histories']}"
        )
    if recovery["resume_ms"]["count"] != recovery["sessions"]:
        failures.append(
            f"resumed {recovery['resume_ms']['count']} sessions, "
            f"expected {recovery['sessions']}"
        )
    return {
        "suite": "pr9-faults",
        "overhead": {**overhead, "budget_pct": MAX_OVERHEAD_PCT},
        "recovery": recovery,
        "criteria": {
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "failures": failures,
            "met": not failures,
        },
    }


def main(argv) -> int:
    args = set(argv[1:])
    if not args <= {"--write", "--check"}:
        print(__doc__)
        return 2
    write, check = "--write" in args, "--check" in args

    print(
        f"overhead: {ROUNDS} rounds x {BATCHES}x{BATCH_SIZE} asks per mode, "
        "alternating batches, disarmed hooks vs stubbed gates..."
    )
    overhead = run_overhead()
    print(
        f"recovery: {FLEET_SHARDS} shards, {FLEET_SESSIONS} sessions x "
        f"{FLEET_OPS_PER_SESSION} ops, kill + resume every session..."
    )
    recovery = run_recovery()

    document = evaluate(overhead, recovery)
    median = overhead["median"]
    print(
        f"  baseline p50 {median['baseline']['p50_ms']:>8.4f}ms  "
        f"disarmed p50 {median['disarmed']['p50_ms']:>8.4f}ms  "
        f"overhead {median['p50_overhead_pct']}% "
        f"(budget {MAX_OVERHEAD_PCT:g}%, per-round "
        f"{[r['p50_overhead_pct'] for r in overhead['rounds']]})"
    )
    resume = recovery["resume_ms"]
    print(
        f"  recovery p50 {resume['p50']}ms  p95 {resume['p95']}ms  "
        f"max {resume['max']}ms over {resume['count']} sessions; "
        f"fleet restart {recovery['fleet_restart_wall_ms']}ms"
    )
    for failure in document["criteria"]["failures"]:
        print(f"  FAIL: {failure}")
    print(f"criteria: {'PASS' if document['criteria']['met'] else 'FAIL'}")
    if write:
        RESULT_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {RESULT_PATH}")
    if check and not document["criteria"]["met"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
