"""E6 — the central size trade-off (Example 3.2, Corollary 3.9,
Lemma 3.12, Proposition 3.13).

Reproduced shape: plain Refine doubles per step on the pair-query
family; conjunctive trees grow linearly; the probing heuristic and the
linear-query fast path stay polynomial.  Crossover: plain is smaller for
n ≤ 3, conjunctive wins from n ≈ 4 on.
"""

from repro.refine.conjunctive import refine_plus_sequence
from repro.refine.refine import refine_sequence
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

import series


def test_blowup_table():
    rows = series.series_blowup(max_n=8)
    series.print_table("E6 representation sizes (Example 3.2 family)", rows)
    # exponential doubling of the plain representation
    plain = [r["plain_refine"] for r in rows]
    increments = [b - a for a, b in zip(plain, plain[1:])]
    for a, b in zip(increments, increments[1:]):
        assert b == 2 * a
    # linear growth of the conjunctive representation
    conj = [r["conjunctive"] for r in rows]
    conj_inc = {b - a for a, b in zip(conj, conj[1:])}
    assert len(conj_inc) == 1
    # crossover: plain starts smaller, ends much larger
    assert plain[0] < conj[0]
    assert plain[-1] > 2 * conj[-1]


def test_plain_refine_n6(benchmark):
    history = pair_queries(6)
    benchmark.pedantic(
        lambda: refine_sequence(BLOWUP_ALPHABET, history), rounds=3, iterations=1
    )


def test_conjunctive_refine_n6(benchmark):
    history = pair_queries(6)
    benchmark.pedantic(
        lambda: refine_plus_sequence(BLOWUP_ALPHABET, history),
        rounds=3,
        iterations=1,
    )


def test_plain_refine_n9_exponential(benchmark):
    history = pair_queries(9)
    benchmark.pedantic(
        lambda: refine_sequence(BLOWUP_ALPHABET, history), rounds=1, iterations=1
    )
