"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only          # timings
    pytest benchmarks/ --benchmark-only -s       # + experiment tables
    python benchmarks/report.py                  # tables only, no pytest

Each ``bench_*`` module covers one experiment id from EXPERIMENTS.md.
"""

import sys
from pathlib import Path

# allow `import series` both under pytest and standalone
sys.path.insert(0, str(Path(__file__).parent))
