#!/usr/bin/env python
"""A longer Webhouse session over a synthetic 30-product catalog.

Demonstrates the Section 1 scenario at a more realistic scale: a
sequence of exploratory queries, local answering whenever Corollary
3.15 allows it, incomplete answers via Theorem 3.14 when it does not,
transfer accounting for the mediated completions — and finally
persistence: the session is journaled to disk, "killed", and resumed
in a fresh warehouse that answers identically (docs/PERSISTENCE.md).

Run:  python examples/webhouse_session.py
"""

import tempfile

from repro import Cond, InMemorySource, PSQuery, SessionStore, Webhouse
from repro.core import pattern
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
)


def product_query(*children: object) -> PSQuery:
    return PSQuery(pattern("catalog", children=[pattern("product", children=list(children))]))


def main() -> None:
    tree_type = catalog_type()
    document = generate_catalog(30, seed=7)
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type, auto_minimize=True)
    store = SessionStore(tempfile.mkdtemp(prefix="repro-session-"))
    webhouse.attach(
        store.create(
            "catalog-demo", CATALOG_ALPHABET, tree_type=tree_type, auto_minimize=True
        )
    )

    print(f"document: {len(document)} nodes, 30 products")
    print(f"journaling to {store.root}/catalog-demo")

    # exploratory phase: two overlapping range queries
    q_cheap = product_query(
        pattern("name"),
        pattern("price", Cond.lt(300)),
        pattern("cat", None, [pattern("subcat")]),
    )
    q_mid = product_query(
        pattern("name"),
        pattern("price", Cond.ge(200) & Cond.lt(700)),
    )
    for label, query in [("cheap products", q_cheap), ("mid-range products", q_mid)]:
        answer = webhouse.ask(source, query)
        print(f"asked for {label}: {len(answer)} nodes; repr size {webhouse.size()}")

    # a query covered by what we already know
    q_bargain = product_query(
        pattern("name"),
        pattern("price", Cond.lt(100)),
        pattern("cat", None, [pattern("subcat")]),
    )
    print(f"\nbargains answerable locally? {webhouse.can_answer(q_bargain)}")
    if webhouse.can_answer(q_bargain):
        answer = webhouse.answer_locally(q_bargain)
        names = sorted(
            answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
        )
        print(f"bargain products: {names}")

    # a query that needs the source: expensive items were never fetched
    q_premium = product_query(
        pattern("name"),
        pattern("price", ~Cond.lt(700)),
    )
    print(f"\npremium answerable locally? {webhouse.can_answer(q_premium)}")
    print(f"premium possibly non-empty? {webhouse.may_match(q_premium)}")
    served_before = source.stats.nodes_served
    answer, plan = webhouse.complete_and_answer(source, q_premium)
    fetched = source.stats.nodes_served - served_before
    names = sorted(
        answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
    )
    print(f"premium products: {names}")
    print(f"plan had {len(plan)} local queries; fetched {fetched} nodes "
          f"(document has {len(document)})")

    # what do we know now, in XML form?
    print("\nknown prefix as XML (first lines):")
    from repro.core import tree_to_xml

    xml = tree_to_xml(webhouse.data_tree())
    print("\n".join(xml.splitlines()[:8]))
    print("  ...")

    print(f"\nsource served {source.stats.queries} queries, "
          f"{source.stats.nodes_served} nodes in total")

    # "kill" the process and resume from disk in a fresh warehouse
    verdict_before = webhouse.can_answer(q_bargain)
    info = webhouse.session.info()
    webhouse.detach()
    resumed = Webhouse.resume(store, "catalog-demo")
    print(
        f"\nresumed from disk: {info['journal_records']} journal records, "
        f"{info['snapshots']} snapshots; history length {len(resumed.history)}"
    )
    print(
        f"bargains still answerable locally? {resumed.can_answer(q_bargain)} "
        f"(was {verdict_before})"
    )
    assert resumed.can_answer(q_bargain) == verdict_before
    resumed.detach()


if __name__ == "__main__":
    main()
