#!/usr/bin/env python
"""Tutorial: your own schema, end to end, using the text DSLs.

Everything here is written as text — the tree type in the DTD-like
syntax, queries in the indentation syntax — and then run through the
full incomplete-information pipeline on a small bibliography source.

Run:  python examples/custom_schema.py
"""

from repro import (
    DataTree,
    InMemorySource,
    TreeType,
    Webhouse,
    node,
    parse_query,
)


def build_library() -> DataTree:
    def book(bid, title, year, genre, copies):
        children = [
            node(f"{bid}-title", "title", title),
            node(f"{bid}-year", "year", year),
            node(f"{bid}-genre", "genre", genre),
        ]
        children += [
            node(f"{bid}-copy{i}", "copy", f"shelf-{i}") for i in range(copies)
        ]
        return node(bid, "book", 0, children)

    return DataTree.build(
        node(
            "lib",
            "library",
            0,
            [
                book("b1", "Foundations of Databases", 1995, "cs", 2),
                book("b2", "The Art of Computer Programming", 1968, "cs", 1),
                book("b3", "Dune", 1965, "scifi", 3),
                book("b4", "Hyperion", 1989, "scifi", 0),
                book("b5", "A Pattern Language", 1977, "architecture", 1),
            ],
        )
    )


def main() -> None:
    tree_type = TreeType.parse(
        """
        root: library
        library -> book*
        book    -> title year genre copy*
        """
    )
    document = build_library()
    assert tree_type.satisfied_by(document)

    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(tree_type.alphabet, tree_type=tree_type)

    recent_cs = parse_query(
        """
        library
          book
            title
            year [>= 1990]
            genre [= "cs"]
        """
    )
    old_books = parse_query(
        """
        library
          book
            title
            year [< 1970]
        """
    )
    for name, query in [("recent CS books", recent_cs), ("pre-1970 books", old_books)]:
        answer = webhouse.ask(source, query)
        titles = sorted(
            answer.value(n) for n in answer.node_ids() if answer.label(n) == "title"
        )
        print(f"{name}: {titles}")

    seventies = parse_query(
        """
        library
          book
            title
            year [>= 1970 & < 1980]
        """
    )
    print(f"\n1970s books answerable locally? {webhouse.can_answer(seventies)}")
    sure, more = webhouse.answer_with_caveats(seventies)
    titles = sorted(
        sure.value(n) for n in sure.node_ids() if sure.label(n) == "title"
    )
    print(f"known so far: {titles}; could there be more? {more}")

    answer, plan = webhouse.complete_and_answer(source, seventies)
    titles = sorted(
        answer.value(n) for n in answer.node_ids() if answer.label(n) == "title"
    )
    print(f"after completion ({len(plan)} local queries): {titles}")

    # negative knowledge: nothing older than 1900
    ancient = parse_query(
        """
        library
          book
            year [< 1900]
        """
    )
    print(f"\ncould an 1800s book exist? {webhouse.may_match(ancient)}")


if __name__ == "__main__":
    main()
