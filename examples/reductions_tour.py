#!/usr/bin/env python
"""A tour of the paper's hardness constructions, executed.

* Theorem 3.6: deciding a 3-SAT formula through query/answer histories
  and the possible-prefix machinery;
* Theorem 4.1: DNF validity through branching+optional queries;
* Theorem 4.5: checking FDs and INDs with join/negation queries;
* Theorem 4.7: the CFG encoding with regular-path queries.

Run:  python examples/reductions_tour.py
"""

from repro.reductions.dependencies import (
    FD,
    IND,
    encode_relation,
    query_for,
    satisfies,
)
from repro.reductions.dnf import brute_force_validity, certain_prefix_of_answers
from repro.reductions.cfg import (
    Grammar,
    consistency_queries,
    difference_query,
    encode_pair,
)
from repro.reductions.sat3 import (
    brute_force_sat,
    build_instance,
    decide_by_representation,
)


def tour_sat() -> None:
    print("== Theorem 3.6: 3-SAT as a possible-prefix question ==")
    formula = [(1, 2, 2), (-1, 2, 2), (1, -2, -2)]
    instance = build_instance(2, formula)
    print(f"formula (2 vars): {formula}")
    print(f"history: {len(instance.history)} query/answer pairs")
    verdict = decide_by_representation(instance)
    print(f"'val = 1 possible' via incomplete trees: {verdict}")
    print(f"brute-force SAT:                          {brute_force_sat(2, formula)}")


def tour_dnf() -> None:
    print("\n== Theorem 4.1: DNF validity as a certain prefix ==")
    tautology = [(1, 1, 1), (-1, -1, -1)]  # x1 or not-x1
    print(f"x1 ∨ ¬x1 valid?  certain-prefix: "
          f"{certain_prefix_of_answers(1, tautology)}  "
          f"direct: {brute_force_validity(1, tautology)}")
    partial = [(1, 2, 2)]
    print(f"x1∧x2 valid?     certain-prefix: "
          f"{certain_prefix_of_answers(2, partial)}  "
          f"direct: {brute_force_validity(2, partial)}")


def tour_dependencies() -> None:
    print("\n== Theorem 4.5: dependencies via join/negation queries ==")
    relation = [(1, "x"), (1, "y"), (2, "x")]
    tree = encode_relation(relation, 2)
    fd = FD((1,), 2)
    ind = IND((2,), (2,))
    print(f"relation: {relation}")
    print(f"A1 -> A2 holds?   q_fd empty: {not query_for(fd).matches(tree)}   "
          f"direct: {satisfies(relation, fd)}")
    print(f"R[A2] ⊆ R[A2]?    q_ind empty: {not query_for(ind).matches(tree)}  "
          f"direct: {satisfies(relation, ind)}")


def tour_cfg() -> None:
    print("\n== Theorem 4.7: the CFG-intersection encoding ==")
    g1 = Grammar("LS", {"LS": [("LA", "LB"), ("LA", "LX")],
                        "LX": [("LS", "LB")],
                        "LA": [("a",)], "LB": [("b",)]}).position_split()
    g2 = Grammar("RS", {"RS": [("a",), ("b",), ("RA", "RS2")],
                        "RS2": [("a",), ("b",)],
                        "RA": [("a",), ("b",)]}).position_split()
    print("G1: a^n b^n      G2: all words of length 1-2")
    tree = encode_pair(g1, "ab", g2, "ab")
    queries = consistency_queries(g1, g2)
    fired = sum(0 if q.is_empty_on(tree) else 1 for q in queries)
    print(f"encoding w1 = w2 = 'ab': {len(queries)} consistency queries, "
          f"{fired} fired (expect 0)")
    print(f"difference query empty (w1 == w2)? "
          f"{difference_query().is_empty_on(tree)}")
    tree2 = encode_pair(g1, "ab", g2, "aa")
    print(f"after encoding w2 = 'aa' instead: difference query empty? "
          f"{difference_query().is_empty_on(tree2)}")


def main() -> None:
    tour_sat()
    tour_dnf()
    tour_dependencies()
    tour_cfg()


if __name__ == "__main__":
    main()
