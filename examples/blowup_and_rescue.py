#!/usr/bin/env python
"""The exponential blowup of Example 3.2 and the three rescues.

Shows the representation size after n pair-queries under: plain
Algorithm Refine (doubles per step), conjunctive incomplete trees
(linear, Corollary 3.9), the probing heuristic of Proposition 3.13 /
Example 3.3, and the lossy forgetting heuristic.

Run:  python examples/blowup_and_rescue.py
"""

from repro import forget_specializations, probing_queries
from repro.core import DataTree
from repro.refine import refine_plus_sequence, refine_sequence
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries


def main() -> None:
    print("Example 3.2: queries root -> {a = i, b = i}, all answers empty")
    print()
    header = f"{'n':>2}  {'plain':>7}  {'conjunctive':>11}  {'probing':>7}  {'forgetting':>10}"
    print(header)
    print("-" * len(header))
    for n in range(1, 9):
        history = pair_queries(n)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        conjunctive = refine_plus_sequence(BLOWUP_ALPHABET, history)
        probes = [
            (q, DataTree.empty()) for q in probing_queries(q for q, _a in history)
        ]
        probed = refine_sequence(BLOWUP_ALPHABET, probes + history)
        lossy = forget_specializations(plain)
        print(
            f"{n:>2}  {plain.size():>7}  {conjunctive.size():>11}  "
            f"{probed.size():>7}  {lossy.size():>10}"
        )

    print()
    print("plain Refine doubles per step; the alternatives stay flat/linear.")
    print("Membership in the conjunctive representation is still PTIME:")
    from repro.core import node

    conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(8))
    witness = DataTree.build(
        node("r", "root", 0, [node("x", "a", 42), node("y", "b", 41)])
    )
    print(f"  witness tree represented? {conj.contains(witness)}")
    bad = DataTree.build(
        node("r", "root", 0, [node("x", "a", 3), node("y", "b", 3)])
    )
    print(f"  forbidden combination (a=3, b=3) represented? {conj.contains(bad)}")
    print("The price: emptiness is NP-complete (see benchmarks/bench_e8_*).")


if __name__ == "__main__":
    main()
