#!/usr/bin/env python
"""Browsing incomplete knowledge as XML, and the ordered-source caveat.

The paper's introduction points out that incomplete trees "can be
itself naturally represented and browsed as an XML document"; this
example refines knowledge from the catalog, prints the incomplete tree
in its XML document form, round-trips it, and then demonstrates the
Section 4 order discussion: when can per-label answers be merged into
an ordered document?

Run:  python examples/incomplete_browser.py
"""

from repro import InMemorySource, Webhouse
from repro.incomplete.xml_view import incomplete_from_xml, incomplete_to_xml
from repro.extensions.order import (
    AmbiguousInterleaving,
    OrderedElement,
    any_of_star,
    merge_by_rank,
    merge_ordered_answers,
    words_type,
)
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
)


def browse_incomplete_tree() -> None:
    tree_type = catalog_type()
    source = InMemorySource(demo_catalog(), tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    webhouse.ask(source, query1())

    xml = incomplete_to_xml(webhouse.knowledge)
    lines = xml.splitlines()
    print("incomplete tree as an XML document "
          f"({len(lines)} lines; showing head and first type rules):")
    for line in lines[:14]:
        print(" ", line)
    print("   ...")
    for line in lines:
        if "<symbol" in line and "kind=\"label\"" in line:
            print(" ", line.strip())
            break

    restored = incomplete_from_xml(xml)
    print(f"\nround trip preserves semantics: "
          f"{restored.contains(demo_catalog())=}, "
          f"{restored.size() == webhouse.knowledge.size()=}")


def order_discussion() -> None:
    print("\n-- the order discussion (Section 4) --")
    a_answer = [OrderedElement("a", f"a{i}", rank=r) for i, r in enumerate([0, 1, 4])]
    b_answer = [OrderedElement("b", f"b{i}", rank=r) for i, r in enumerate([2, 3])]

    print("q1 returned the a's in order, q2 the b's; can q3 (everything,")
    print("in order) be answered?")

    merged = merge_ordered_answers(words_type("a", "b"), [a_answer, b_answer])
    print(f"  type a*b*:   yes -> {[e.node_id for e in merged]}")

    try:
        merge_ordered_answers(any_of_star("a", "b"), [a_answer, b_answer])
    except AmbiguousInterleaving as exc:
        print(f"  type (a+b)*: no  -> {exc}")

    merged = merge_by_rank([a_answer, b_answer])
    print(f"  with wrapper-provided ranks: {[e.node_id for e in merged]}")


def main() -> None:
    browse_incomplete_tree()
    order_discussion()


if __name__ == "__main__":
    main()
