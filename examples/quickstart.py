#!/usr/bin/env python
"""Quickstart: the paper's catalog example, end to end.

Builds the Figure 1 tree type and the Figure 6 document, runs Queries
1-2 to acquire incomplete knowledge, answers Query 3 locally, reasons
about what is certain and possible, and completes Query 4 against the
source with a non-redundant plan.

Run:  python examples/quickstart.py
"""

from repro import InMemorySource, Webhouse
from repro.core import DataTree, node
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
    query3,
    query4,
    query5,
)


def main() -> None:
    tree_type = catalog_type()
    document = demo_catalog()
    print("Source document (normally remote):")
    print(document.pretty())

    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)

    print("\n-- acquiring knowledge --")
    answer1 = webhouse.ask(source, query1())
    print(f"Query 1 returned {len(answer1)} nodes (cheap electronics)")
    answer2 = webhouse.ask(source, query2())
    print(f"Query 2 returned {len(answer2)} nodes (pictured cameras)")
    print(f"representation size: {webhouse.size()}")

    print("\n-- everything known for sure (the data tree Td) --")
    print(webhouse.data_tree().pretty())

    print("\n-- Query 3: cameras < $100 with a picture --")
    if webhouse.can_answer(query3()):
        answer = webhouse.answer_locally(query3())
        print("answerable locally, no source round-trip needed; answer:")
        print(answer.pretty() if not answer.is_empty() else "(empty answer)")

    print("\n-- Query 4: all cameras --")
    print(f"fully answerable locally? {webhouse.can_answer(query4())}")
    sure = webhouse.certain_answer_part(query4())
    names = sorted(
        sure.value(n) for n in sure.node_ids() if sure.label(n) == "name"
    )
    print(f"cameras known for sure: {names}")
    print(f"could there be more (expensive, unpictured)? {webhouse.may_match(query5())}")

    print("\n-- reasoning about the unknown --")
    nikon_pic = DataTree.build(
        node("cat0", "catalog", 0,
             [node("p-nikon", "product", 0, [node("g", "picture", "n.jpg")])])
    )
    print(f"could Nikon have a picture? {webhouse.is_possible_prefix(nikon_pic)}")
    cheap_olympus = DataTree.build(
        node("cat0", "catalog", 0,
             [node("p-olympus", "product", 0, [node("g", "price", 99)])])
    )
    print(f"could the Olympus cost $99? {webhouse.is_possible_prefix(cheap_olympus)}")

    print("\n-- completing Query 4 against the source --")
    served_before = source.stats.nodes_served
    answer, plan = webhouse.complete_and_answer(source, query4())
    fetched = source.stats.nodes_served - served_before
    names = sorted(
        answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
    )
    print(f"plan: {plan}")
    print(f"all cameras: {names}")
    print(f"fetched {fetched} nodes vs {len(document)} in the document")


if __name__ == "__main__":
    main()
