"""An independent end-to-end scenario on a second schema (bookstore).

Exercises the full pipeline — text DSLs, acquisition, local answering,
certainty reasoning, mediation — with hand-derivable expectations, on a
schema with different shape characteristics than the catalog (optional
children, multi-level nesting, string-heavy values).
"""

import pytest

from repro import InMemorySource, TreeType, Webhouse, parse_query
from repro.core.tree import DataTree, node


def library_type() -> TreeType:
    return TreeType.parse(
        """
        root: library
        library -> section+
        section -> name book*
        book    -> title year copy*
        """
    )


def library_doc() -> DataTree:
    def book(bid, title, year, copies):
        children = [
            node(f"{bid}-t", "title", title),
            node(f"{bid}-y", "year", year),
        ] + [node(f"{bid}-c{i}", "copy", i) for i in range(copies)]
        return node(bid, "book", 0, children)

    return DataTree.build(
        node(
            "lib",
            "library",
            0,
            [
                node(
                    "s-cs",
                    "section",
                    0,
                    [
                        node("s-cs-n", "name", "cs"),
                        book("b1", "Foundations", 1995, 2),
                        book("b2", "TAOCP", 1968, 0),
                    ],
                ),
                node(
                    "s-fic",
                    "section",
                    0,
                    [
                        node("s-fic-n", "name", "fiction"),
                        book("b3", "Dune", 1965, 1),
                    ],
                ),
            ],
        )
    )


@pytest.fixture()
def session():
    tt = library_type()
    doc = library_doc()
    source = InMemorySource(doc, tt)
    wh = Webhouse(tt.alphabet, tree_type=tt)
    return wh, source, doc


Q_MODERN = """
library
  section
    name
    book
      title
      year [>= 1990]
"""

Q_SECTIONS = """
library
  section
    name
"""

Q_ALL_BOOKS = """
library
  section
    book
      title
      year
"""


class TestBookstoreScenario:
    def test_acquisition_and_local_answer(self, session):
        wh, source, doc = session
        wh.ask(source, parse_query(Q_SECTIONS))
        wh.ask(source, parse_query(Q_MODERN))
        # re-asking recorded queries is local
        assert wh.can_answer(parse_query(Q_MODERN))
        assert wh.can_answer(parse_query(Q_SECTIONS))
        # all books is not answerable: old books were never fetched
        assert not wh.can_answer(parse_query(Q_ALL_BOOKS))

    def test_negative_knowledge(self, session):
        wh, source, doc = session
        wh.ask(source, parse_query(Q_MODERN))
        # the modern query returned only b1: no OTHER post-1990 book can
        # exist anywhere
        ghost = parse_query(
            """
            library
              section
                book
                  year [>= 2000]
            """
        )
        assert not wh.may_match(ghost)

    def test_sections_closed_after_plus_query(self, session):
        wh, source, doc = session
        wh.ask(source, parse_query(Q_SECTIONS))
        # every section was returned (no condition): a third section with
        # a different name is impossible
        third = DataTree.build(
            node(
                "lib",
                "library",
                0,
                [node("ghost", "section", 0, [node("gn", "name", "poetry")])],
            )
        )
        assert not wh.is_possible_prefix(third)

    def test_mediated_full_listing(self, session):
        wh, source, doc = session
        wh.ask(source, parse_query(Q_SECTIONS))
        wh.ask(source, parse_query(Q_MODERN))
        query = parse_query(Q_ALL_BOOKS)
        answer, plan = wh.complete_and_answer(source, query)
        assert answer == query.evaluate(doc)
        titles = {
            answer.value(n) for n in answer.node_ids() if answer.label(n) == "title"
        }
        assert titles == {"Foundations", "TAOCP", "Dune"}

    def test_caveated_answer(self, session):
        wh, source, doc = session
        wh.ask(source, parse_query(Q_MODERN))
        sure, more = wh.answer_with_caveats(parse_query(Q_ALL_BOOKS))
        sure_titles = {
            sure.value(n) for n in sure.node_ids() if sure.label(n) == "title"
        }
        assert sure_titles == {"Foundations"}
        assert more

    def test_bar_query_closes_section(self, session):
        wh, source, doc = session
        q_bar = parse_query(
            """
            library
              ~section
            """
        )
        wh.ask(source, q_bar)
        # everything is now known; any query is answerable
        assert wh.can_answer(parse_query(Q_ALL_BOOKS))
        assert wh.answer_locally(parse_query(Q_ALL_BOOKS)) == parse_query(
            Q_ALL_BOOKS
        ).evaluate(doc)
        # and nothing new can exist anywhere: a book with an unseen title
        # is impossible (a bare fresh book node would merely embed onto a
        # known one, which is fine)
        unseen = DataTree.build(
            node(
                "lib",
                "library",
                0,
                [
                    node(
                        "s-cs",
                        "section",
                        0,
                        [node("gb", "book", 0, [node("gt", "title", "Ghost")])],
                    )
                ],
            )
        )
        assert not wh.is_possible_prefix(unseen)
