"""The diagnostics layer: profiles, EXPLAIN, growth monitor, exporters."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.obs as obs
from repro.obs.monitor import (
    Alert,
    BudgetExceeded,
    GrowthMonitor,
    REGIME_FLAT,
    REGIME_LINEAR,
    REGIME_SUPERLINEAR,
    REGIME_WARMUP,
    REMEDY_CONJUNCTIVE,
    REMEDY_LINEAR,
    REMEDY_LOSSY,
)
from repro.obs.profile import Profile, aggregate
from repro.obs.registry import Counter, Histogram, Metrics
from repro.obs.sinks import NullSink, RingBufferSink
from repro.obs.spans import Span, span


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a pristine disabled state."""
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()


def make_span(name, start, end, children=(), **attrs):
    built = Span(name, dict(attrs))
    built.start = start
    built.end = end
    built.children = list(children)
    return built


# -- satellite: thread safety under concurrent load ----------------------------------


class TestThreadSafety:
    def test_counter_hammer(self):
        counter = Counter("c")
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: counter.inc(), range(8000)))
        assert counter.value == 8000

    def test_histogram_hammer(self):
        histogram = Histogram("h")
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(histogram.observe, [1.0] * 8000))
        assert histogram.count == 8000
        assert histogram.total == pytest.approx(8000.0)
        assert histogram.min == 1.0 and histogram.max == 1.0

    def test_metrics_concurrent_lazy_creation(self):
        metrics = Metrics()

        def worker(_):
            metrics.inc("shared.calls")
            metrics.observe("shared.values", 2.0)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(4000)))
        assert metrics.value("shared.calls") == 4000
        assert metrics.histogram("shared.values").count == 4000


# -- satellite: span error paths and capture nesting ---------------------------------


class TestSpanErrorPaths:
    def test_exception_closes_and_marks_span(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        roots = obs.traces()
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].attrs["error"] == "ValueError"
        (inner,) = roots[0].children
        assert inner.attrs["error"] == "ValueError"
        assert inner.end is not None
        assert obs.STATE.stack == []

    def test_errored_span_still_reaches_sink_and_metrics(self):
        ring = RingBufferSink()
        with obs.capture(ring):
            with pytest.raises(RuntimeError):
                with span("fails"):
                    raise RuntimeError("nope")
            assert obs.metrics.histogram("span.fails.seconds").count == 1
        events = [e for e in ring.events() if e["type"] == "span"]
        assert events[0]["attrs"]["error"] == "RuntimeError"

    def test_nested_capture_restores_outer_sink(self):
        outer_ring = RingBufferSink()
        with obs.capture(outer_ring):
            inner_ring = RingBufferSink()
            with obs.capture(inner_ring):
                with span("inner.work"):
                    pass
            # outer sink is back; inner events went to the inner ring only
            assert obs.STATE.sink is outer_ring
            with span("outer.work"):
                pass
        assert not obs.enabled()
        outer_names = {e["name"] for e in outer_ring.events() if e["type"] == "span"}
        inner_names = {e["name"] for e in inner_ring.events() if e["type"] == "span"}
        assert outer_names == {"outer.work"}
        assert inner_names == {"inner.work"}

    def test_capture_restores_on_exception(self):
        with pytest.raises(KeyError):
            with obs.capture():
                raise KeyError("x")
        assert not obs.enabled()


# -- profile aggregation ----------------------------------------------------------------


class TestProfile:
    def tree(self):
        inner_a = make_span("child", 1.0, 2.0)
        inner_b = make_span("child", 2.0, 2.5)
        return make_span("root", 0.0, 4.0, [inner_a, inner_b])

    def test_self_time_subtracts_children(self):
        profile = aggregate([self.tree()])
        root = profile.entries["root"]
        assert root.calls == 1
        assert root.total_s == pytest.approx(4.0)
        assert root.self_s == pytest.approx(2.5)  # 4.0 - (1.0 + 0.5)
        child = profile.entries["child"]
        assert child.calls == 2
        assert child.total_s == pytest.approx(1.5)
        assert root.children["child"] == (2, pytest.approx(1.5))

    def test_hot_paths_and_render(self):
        profile = aggregate([self.tree()])
        paths = profile.hot_paths(top=5)
        assert [p[0] for p in paths][0] in (("root",), ("root", "child"))
        text = profile.render()
        assert "root" in text and "child" in text
        assert "total_s" in text

    def test_errors_counted(self):
        errored = make_span("bad", 0.0, 1.0, error="ValueError")
        profile = aggregate([errored])
        assert profile.entries["bad"].errors == 1

    def test_live_aggregation_from_state(self):
        with obs.capture():
            with span("a"):
                with span("b"):
                    pass
            profile = obs.profile()
        assert set(profile.entries) == {"a", "b"}
        assert profile.roots_seen == 1
        doc = profile.to_dict()
        assert "by_name" in doc and "hot_paths" in doc
        json.dumps(doc)  # JSON-ready


# -- growth monitor ---------------------------------------------------------------------


class TestGrowthMonitor:
    def test_warmup_then_flat(self):
        monitor = GrowthMonitor(min_points=3)
        monitor.observe(100)
        assert monitor.classification() == REGIME_WARMUP
        for _ in range(4):
            monitor.observe(100)
        assert monitor.classification() == REGIME_FLAT

    def test_linear_growth(self):
        monitor = GrowthMonitor(min_points=3)
        for size in (100, 200, 300, 400, 500):
            fired = monitor.observe(size)
        assert monitor.classification() == REGIME_LINEAR
        assert fired == []

    def test_superlinear_fires_edge_triggered_alert(self):
        monitor = GrowthMonitor(min_points=3)
        sizes = [10, 20, 40, 80, 160, 320]
        all_fired = []
        for size in sizes:
            all_fired.extend(monitor.observe(size, linear=False))
        regimes = [a for a in all_fired if a.kind == "regime"]
        assert len(regimes) == 1  # edge-triggered, not per observation
        assert regimes[0].regime == REGIME_SUPERLINEAR
        assert regimes[0].remedy == REMEDY_CONJUNCTIVE

    def test_superlinear_on_linear_history_recommends_linear(self):
        monitor = GrowthMonitor(min_points=3)
        for size in (10, 20, 40, 80, 160):
            fired = monitor.observe(size, linear=True)
        assert any(a.remedy == REMEDY_LINEAR for a in monitor.alerts)

    def test_budget_warn_latches(self):
        monitor = GrowthMonitor(warn_budget=50, min_points=3)
        monitor.observe(60)
        monitor.observe(70)
        warns = [a for a in monitor.alerts if a.kind == "budget_warn"]
        assert len(warns) == 1

    def test_hard_budget_raises(self):
        monitor = GrowthMonitor(hard_budget=100, on_hard="raise")
        monitor.observe(50)
        with pytest.raises(BudgetExceeded) as excinfo:
            monitor.observe(150)
        assert excinfo.value.alert.kind == "budget_hard"

    def test_hard_budget_degrade_callback(self):
        seen = []
        monitor = GrowthMonitor(
            hard_budget=100, on_hard="degrade", degrade_callback=seen.append
        )
        monitor.observe(150, linear=False)
        assert len(seen) == 1 and seen[0].kind == "budget_hard"

    def test_budget_breach_without_superlinear_recommends_lossy(self):
        monitor = GrowthMonitor(hard_budget=100, on_hard="warn", min_points=3)
        for size in (90, 95, 100, 105):
            monitor.observe(size)
        hard = [a for a in monitor.alerts if a.kind == "budget_hard"]
        assert hard and all(a.remedy == REMEDY_LOSSY for a in hard)

    def test_degrade_needs_callback(self):
        with pytest.raises(ValueError):
            GrowthMonitor(hard_budget=10, on_hard="degrade")
        with pytest.raises(ValueError):
            GrowthMonitor(on_hard="explode")

    def test_alert_callbacks_and_snapshot(self):
        seen = []
        monitor = GrowthMonitor(min_points=3, alert_callbacks=[seen.append])
        for size in (10, 20, 40, 80, 160):
            monitor.observe(size)
        assert seen and isinstance(seen[0], Alert)
        snapshot = monitor.snapshot()
        assert snapshot["regime"] == REGIME_SUPERLINEAR
        assert snapshot["alerts"][0]["kind"] == "regime"
        json.dumps(snapshot)

    def test_seed_does_not_fire_alerts(self):
        monitor = GrowthMonitor(min_points=3)
        monitor.seed([10, 20, 40, 80], all_linear=False)
        assert monitor.alerts == ()
        assert monitor.classification() == REGIME_SUPERLINEAR

    def test_reset_window_restarts_classification(self):
        monitor = GrowthMonitor(min_points=3)
        for size in (10, 20, 40, 80):
            monitor.observe(size)
        monitor.reset_window()
        assert monitor.classification() == REGIME_WARMUP
        assert monitor.alerts  # history survives


# -- acceptance: Example 3.2 blowup, alert, degrade, polynomial size ------------------


class TestBlowupDegrade:
    def test_superlinear_alert_and_conjunctive_degrade(self):
        from repro.mediator.webhouse import Webhouse
        from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

        steps = 12
        wh = Webhouse(BLOWUP_ALPHABET)
        wh.guard(hard_budget=200, on_hard="degrade", window=4)
        for query, answer in pair_queries(steps):
            wh.record(query, answer)

        alerts = wh.monitor.alerts
        regimes = [a for a in alerts if a.kind == "regime"]
        assert regimes, "superlinear growth must fire a regime alert"
        assert regimes[0].regime == REGIME_SUPERLINEAR
        assert regimes[0].remedy == REMEDY_CONJUNCTIVE

        # the degrade hook applied the remedy: Refine+ layering
        assert wh.engine == "conjunctive"
        assert wh.stats()["engine"] == "conjunctive"

        # conjunctive representation stays linear in the history
        # (plain Refine reaches 45061 at n=12 — Example 3.2's 2^n)
        degraded_size = wh.size()
        assert degraded_size < 50 * steps

        # knowledge is still correct: materialization agrees with plain
        from repro.refine.refine import refine_sequence

        plain = refine_sequence(BLOWUP_ALPHABET, pair_queries(4))
        wh4 = Webhouse(BLOWUP_ALPHABET)
        for query, answer in pair_queries(4):
            wh4.record(query, answer)
        wh4.apply_remedy(REMEDY_CONJUNCTIVE)
        assert wh4.engine == "conjunctive"
        assert wh4.knowledge.normalized().size() == plain.normalized().size()

    def test_stats_surfaces_growth_regime(self):
        from repro.mediator.webhouse import Webhouse
        from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries

        wh = Webhouse(BLOWUP_ALPHABET)
        for query, answer in pair_queries(6):
            wh.record(query, answer)
        stats = wh.stats()
        assert stats["growth_regime"] == REGIME_SUPERLINEAR
        assert stats["engine"] == "plain"

    def test_apply_remedy_rejects_unknown(self):
        from repro.mediator.webhouse import Webhouse

        wh = Webhouse(["a", "b"])
        with pytest.raises(ValueError):
            wh.apply_remedy("wishful-thinking")


# -- EXPLAIN ---------------------------------------------------------------------------


class TestExplain:
    def knowledge(self, products=3):
        from repro.refine.refine import refine_sequence
        from repro.workloads.catalog import (
            CATALOG_ALPHABET,
            generate_catalog,
            query1,
        )

        doc = generate_catalog(products, seed=products)
        return (
            refine_sequence(CATALOG_ALPHABET, [(query1(), query1().evaluate(doc))]),
            doc,
        )

    def test_explain_refine_structure(self):
        from repro.workloads.catalog import CATALOG_ALPHABET, query2

        knowledge, doc = self.knowledge()
        explanation, refined = obs.explain_refine(
            knowledge, query2(), query2().evaluate(doc), CATALOG_ALPHABET
        )
        assert refined.size() > 0
        doc_dict = explanation.to_dict()
        assert doc_dict["inputs"]["knowledge_size"] == knowledge.size()
        assert doc_dict["result"]["knowledge_size"] == refined.size()
        phase_names = [p["phase"] for p in doc_dict["phases"]]
        assert "refine.step" in phase_names
        assert "refine.inverse" in phase_names
        assert "refine.intersect" in phase_names
        text = explanation.render()
        assert "EXPLAIN" in text and "refine.step" in text
        json.loads(explanation.to_json())

    def test_explain_ask_structure(self):
        from repro.workloads.catalog import query4

        knowledge, _ = self.knowledge()
        explanation, answers = obs.explain_ask(knowledge, query4())
        doc_dict = explanation.to_dict()
        phase_names = [p["phase"] for p in doc_dict["phases"]]
        assert "query_incomplete" in phase_names
        assert "query_incomplete.poss_cert" in phase_names
        assert doc_dict["result"]["answer_size"] == answers.size()

    def test_explain_is_isolated_from_global_state(self):
        from repro.workloads.catalog import CATALOG_ALPHABET, query2

        knowledge, doc = self.knowledge()
        ring = RingBufferSink()
        with obs.capture(ring):
            obs.metrics.inc("mine.calls")
            obs.explain_refine(
                knowledge, query2(), query2().evaluate(doc), CATALOG_ALPHABET
            )
            # EXPLAIN's isolated run leaked nothing into our capture
            assert obs.metrics.value("refine.steps") == 0
            assert obs.metrics.value("mine.calls") == 1
            assert obs.traces() == []

    def test_explain_works_with_obs_disabled(self):
        from repro.workloads.catalog import query4

        knowledge, _ = self.knowledge()
        assert not obs.enabled()
        explanation, _ = obs.explain_ask(knowledge, query4())
        assert explanation.phases  # spans were recorded despite disabled global
        assert not obs.enabled()


# -- exporters -------------------------------------------------------------------------


class TestExporters:
    def test_prometheus_text_validates(self):
        metrics = Metrics()
        metrics.inc("refine.steps", 3)
        metrics.observe("refine.result_size", 10.0)
        metrics.observe("refine.result_size", 30.0)
        text = obs.prometheus_text(metrics)
        samples = obs.validate_prometheus_text(text)
        assert samples["repro_refine_steps_total"] == 3.0
        assert samples["repro_refine_result_size_count"] == 2.0
        assert samples["repro_refine_result_size_sum"] == 40.0
        assert samples["repro_refine_result_size_min"] == 10.0
        assert samples["repro_refine_result_size_max"] == 30.0

    def test_prometheus_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.validate_prometheus_text("repro_x_total not_a_number\n")
        with pytest.raises(ValueError):
            # sample without a preceding TYPE comment
            obs.validate_prometheus_text("repro_unknown_total 1\n")

    def test_prometheus_defaults_to_global_metrics(self):
        with obs.capture():
            obs.metrics.inc("something.calls")
            text = obs.prometheus_text()
        assert "repro_something_calls_total 1" in text

    def test_chrome_trace_roundtrip(self, tmp_path):
        child = make_span("inner", 1.0, 2.0, step=1)
        root = make_span("outer", 0.5, 3.0, [child])
        document = obs.chrome_trace([root])
        assert obs.validate_chrome_trace(document) == 2
        events = document["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["dur"] == pytest.approx(2.5e6)

        target = tmp_path / "trace.json"
        assert obs.write_chrome_trace(str(target), [root]) == 2
        obs.validate_chrome_trace(json.loads(target.read_text()))

    def test_chrome_trace_validator_rejects_bad_events(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"no_events": True})
