"""Experiment E3: the incomplete trees of Figures 8-9 — semantic checks.

We do not compare against the figures' drawings; we assert the semantic
facts the figures encode (Example 3.1's narrative):

* after Query 1: missing products are non-electronics or cost ≥ 200;
* after Query 2: Nikon certainly has no picture; Olympus' price is
  certainly ≥ 200; missing products are non-elec, or expensive
  non-cameras, or expensive cameras without pictures.
"""

import pytest

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.incomplete.certainty import certain_prefix, possible_prefix
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
)


def product_prefix(pid, children):
    return DataTree.build(
        node("cat0", "catalog", 0, [node(pid, "product", 0, children)])
    )


def fresh_product(children, pid="fresh-p"):
    return DataTree.build(
        node("cat0", "catalog", 0, [node(pid, "product", 0, children)])
    )


@pytest.fixture(scope="module")
def after_q1(catalog_tt=None):
    tt = catalog_type()
    doc = demo_catalog()
    refined = refine_sequence(
        CATALOG_ALPHABET, [(query1(), query1().evaluate(doc))]
    )
    return intersect_with_tree_type(refined, tt), doc


@pytest.fixture(scope="module")
def after_q2():
    tt = catalog_type()
    doc = demo_catalog()
    refined = refine_sequence(
        CATALOG_ALPHABET,
        [(query1(), query1().evaluate(doc)), (query2(), query2().evaluate(doc))],
    )
    return intersect_with_tree_type(refined, tt), doc


class TestAfterQuery1:
    """Figure 8: product1 (cat != elec) and product2 (price >= 200)."""

    def test_source_still_represented(self, after_q1):
        knowledge, doc = after_q1
        assert knowledge.contains(doc)

    def test_missing_cheap_elec_impossible(self, after_q1):
        knowledge, _doc = after_q1
        ghost = fresh_product(
            [
                node("g-price", "price", 150),
                node("g-cat", "cat", "elec"),
            ]
        )
        assert not possible_prefix(ghost, knowledge)

    def test_missing_expensive_elec_possible(self, after_q1):
        knowledge, _doc = after_q1
        ghost = fresh_product(
            [node("g-price", "price", 500), node("g-cat", "cat", "elec")]
        )
        assert possible_prefix(ghost, knowledge)

    def test_missing_cheap_nonelec_possible(self, after_q1):
        knowledge, _doc = after_q1
        ghost = fresh_product(
            [node("g-price", "price", 10), node("g-cat", "cat", "garden")]
        )
        assert possible_prefix(ghost, knowledge)

    def test_known_products_certain(self, after_q1):
        knowledge, _doc = after_q1
        canon = product_prefix(
            "p-canon", [node("p-canon-price", "price", 120)]
        )
        assert certain_prefix(canon, knowledge)


class TestAfterQuery2:
    """Figure 9: the refined categories of Example 3.1."""

    def test_source_still_represented(self, after_q2):
        knowledge, doc = after_q2
        assert knowledge.contains(doc)

    def test_nikon_certainly_has_no_picture(self, after_q2):
        knowledge, _doc = after_q2
        nikon_pic = product_prefix(
            "p-nikon", [node("g-pic", "picture", "n.jpg")]
        )
        assert not possible_prefix(nikon_pic, knowledge)

    def test_olympus_price_certainly_at_least_200(self, after_q2):
        knowledge, _doc = after_q2
        cheap = product_prefix("p-olympus", [node("g-price", "price", 100)])
        assert not possible_prefix(cheap, knowledge)
        fine = product_prefix("p-olympus", [node("g-price", "price", 250)])
        assert possible_prefix(fine, knowledge)

    def test_olympus_has_some_price_certainly(self, after_q2):
        knowledge, _doc = after_q2
        # the type forces a price child; its value is pinned >= 200 but not
        # to a constant, so no specific price is certain
        some = product_prefix("p-olympus", [node("g-price", "price", 250)])
        assert not certain_prefix(some, knowledge)

    def test_missing_expensive_pictured_camera_impossible(self, after_q2):
        """A camera with a picture would have been returned by Query 2."""
        knowledge, _doc = after_q2
        ghost = fresh_product(
            [
                node("g-price", "price", 500),
                node("g-cat", "cat", "elec", [node("g-sub", "subcat", "camera")]),
                node("g-pic", "picture", "g.jpg"),
            ]
        )
        assert not possible_prefix(ghost, knowledge)

    def test_missing_expensive_unpictured_camera_possible(self, after_q2):
        """product2c of Figure 9 — the Leica-shaped hole."""
        knowledge, _doc = after_q2
        ghost = fresh_product(
            [
                node("g-price", "price", 500),
                node("g-cat", "cat", "elec", [node("g-sub", "subcat", "camera")]),
            ]
        )
        assert possible_prefix(ghost, knowledge)

    def test_missing_expensive_noncamera_possible(self, after_q2):
        """product2b of Figure 9."""
        knowledge, _doc = after_q2
        ghost = fresh_product(
            [
                node("g-price", "price", 500),
                node("g-cat", "cat", "elec", [node("g-sub", "subcat", "tv")]),
                node("g-pic", "picture", "g.jpg"),
            ]
        )
        assert possible_prefix(ghost, knowledge)

    def test_canon_fully_known(self, after_q2):
        knowledge, _doc = after_q2
        canon = product_prefix(
            "p-canon",
            [
                node("p-canon-name", "name", "Canon"),
                node("p-canon-price", "price", 120),
                node("p-canon-pic0", "picture", "c.jpg"),
                node(
                    "p-canon-cat",
                    "cat",
                    "elec",
                    [node("p-canon-subcat", "subcat", "camera")],
                ),
            ],
        )
        assert certain_prefix(canon, knowledge)
