"""Regular path expressions and path-pattern queries (Theorem 4.7's
query machinery)."""

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.extensions.paths import (
    RPConstraint,
    RegularPathQuery,
    any_star,
    any_sym,
    eps,
    from_graph,
    rpnode,
    seq,
    sym,
    word,
)


class TestPathExpr:
    def test_single_symbol(self):
        assert sym("a").matches(["a"])
        assert not sym("a").matches(["b"])
        assert not sym("a").matches([])
        assert not sym("a").matches(["a", "a"])

    def test_concatenation(self):
        e = word("a", "b", "c")
        assert e.matches(["a", "b", "c"])
        assert not e.matches(["a", "b"])

    def test_union(self):
        e = sym("a").alt(sym("b"))
        assert e.matches(["a"]) and e.matches(["b"])
        assert not e.matches(["c"])

    def test_star(self):
        e = sym("a").star()
        assert e.matches([])
        assert e.matches(["a", "a", "a"])
        assert not e.matches(["a", "b"])

    def test_any_star(self):
        e = any_star()
        assert e.matches([]) and e.matches(["x", "y", "z"])

    def test_epsilon(self):
        assert eps().matches([])
        assert not eps().matches(["a"])

    def test_composite(self):
        # a (b|c)* d
        e = seq(sym("a"), sym("b").alt(sym("c")).star(), sym("d"))
        assert e.matches(["a", "d"])
        assert e.matches(["a", "b", "c", "b", "d"])
        assert not e.matches(["a", "b"])

    def test_from_graph_cycle(self):
        # NFA: S -a-> S, S -b-> F : a* b
        expr = from_graph("S", ["F"], [("S", "a", "S"), ("S", "b", "F")])
        assert expr.matches(["b"])
        assert expr.matches(["a", "a", "b"])
        assert not expr.matches(["a"])
        # composes with other combinators
        extended = expr.then(sym("c"))
        assert extended.matches(["a", "b", "c"])


def chain_doc():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node(
                    "s1",
                    "S",
                    0,
                    [node("m1", "M", 0, [node("t1", "t", 5)])],
                ),
                node("s2", "S", 0, [node("t2", "t", 5)]),
            ],
        )
    )


class TestRegularPathQuery:
    def test_descendant_reachability(self):
        q = RegularPathQuery(
            rpnode(label="root", children=[rpnode(edge=any_star().then(sym("t")))])
        )
        assert q.matches(chain_doc())

    def test_exact_path(self):
        q = RegularPathQuery(
            rpnode(label="root", children=[rpnode(edge=word("S", "M", "t"))])
        )
        assert q.matches(chain_doc())
        q2 = RegularPathQuery(
            rpnode(label="root", children=[rpnode(edge=word("S", "Q", "t"))])
        )
        assert not q2.matches(chain_doc())

    def test_conditions_on_targets(self):
        q = RegularPathQuery(
            rpnode(
                label="root",
                children=[rpnode(edge=any_star().then(sym("t")), cond=Cond.eq(5))],
            )
        )
        assert q.matches(chain_doc())
        q2 = RegularPathQuery(
            rpnode(
                label="root",
                children=[rpnode(edge=any_star().then(sym("t")), cond=Cond.eq(6))],
            )
        )
        assert not q2.matches(chain_doc())

    def test_join_equality(self):
        q = RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(edge=word("S", "M", "t"), var="X"),
                    rpnode(edge=word("S", "t"), var="X"),
                ],
            )
        )
        assert q.matches(chain_doc())  # both t's have value 5

    def test_join_inequality_constraint(self):
        q = RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(edge=word("S", "M", "t"), var="X"),
                    rpnode(edge=word("S", "t"), var="Y"),
                ],
            ),
            [RPConstraint("X", "!=", "Y")],
        )
        assert not q.matches(chain_doc())  # values equal -> constraint fails

    def test_nested_pattern(self):
        q = RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(
                        edge=sym("S"),
                        children=[rpnode(edge=sym("M"), children=[rpnode(edge=sym("t"))])],
                    )
                ],
            )
        )
        assert q.matches(chain_doc())

    def test_empty_tree(self):
        q = RegularPathQuery(rpnode(label="root"))
        assert q.is_empty_on(DataTree.empty())

    def test_root_label_filter(self):
        q = RegularPathQuery(rpnode(label="zzz"))
        assert not q.matches(chain_doc())
