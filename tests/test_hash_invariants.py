"""Regression pins for the ``__hash__``/``__eq__`` invariants interning
relies on.

``repro.perf.intern`` collapses equal terms to one canonical instance;
that is sound only while

* ``Cond`` compares (and hashes) by *denotation* — syntactically
  different conditions with one value set are interchangeable;
* ``Atom``/``Disjunction`` compare structurally, order-normalized;
* ``ConditionalTreeType`` equality matches its ``cache_key()``;
* ``normalized()`` is idempotent (a normalized type is its own normal
  form, so memo tables may cache it under its own key).

If any of these drift, interning silently changes semantics — these
tests are the tripwire.
"""

from __future__ import annotations

import pytest

import repro.perf as perf
from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction, Mult
from repro.incomplete.conditional import ConditionalTreeType
from repro.incomplete.incomplete_tree import DataNode, IncompleteTree
from repro.perf.intern import InternPool


def _example_type() -> ConditionalTreeType:
    return ConditionalTreeType(
        roots=["r"],
        mu={
            "r": Disjunction.single(Atom.of(a="*", b="?")),
            "a": Disjunction.leaf(),
            "b": Disjunction.leaf(),
        },
        cond={"r": Cond.eq(0), "a": Cond.ne(0)},
        sigma={"r": "r", "a": "a", "b": "b"},
    )


class TestCondDenotationHashing:
    #: pairs of syntactically distinct, denotationally equal conditions
    EQUAL_PAIRS = [
        (Cond.eq(5) & Cond.ge(2), Cond.eq(5)),
        (Cond.true() & Cond.lt(3), Cond.lt(3)),
        (Cond.eq(5) & Cond.ne(0), Cond.eq(5)),
        # note strings: numeric comparisons reject them, so the union of
        # < and >= is NOT true(); != keeps strings, making this one total
        (Cond.ne(5) | Cond.eq(5), Cond.true()),
        (Cond.le(4) & Cond.ge(4), Cond.eq(4)),
        ((Cond.eq(1) | Cond.eq(2)) & Cond.ne(2), Cond.eq(1)),
    ]

    @pytest.mark.parametrize("left, right", EQUAL_PAIRS)
    def test_equal_denotation_equal_hash(self, left, right):
        assert left == right
        assert hash(left) == hash(right)

    @pytest.mark.parametrize("left, right", EQUAL_PAIRS)
    def test_interning_collapses_to_one_instance(self, left, right):
        pool = InternPool()
        assert pool.cond(left) is pool.cond(right)

    def test_distinct_denotations_stay_distinct(self):
        pool = InternPool()
        a, b = Cond.eq(5), Cond.eq(6)
        assert a != b
        assert pool.cond(a) is not pool.cond(b)


class TestAtomDisjunctionHashing:
    def test_atom_entry_order_irrelevant(self):
        a = Atom([("x", Mult.ONE), ("y", Mult.STAR)])
        b = Atom([("y", Mult.STAR), ("x", Mult.ONE)])
        assert a == b
        assert hash(a) == hash(b)
        pool = InternPool()
        assert pool.atom(a) is pool.atom(b)

    def test_disjunction_atom_multiset(self):
        a1 = Atom([("x", Mult.ONE)])
        a2 = Atom([("y", Mult.PLUS)])
        d1 = Disjunction([a1, a2])
        d2 = Disjunction([Atom([("x", Mult.ONE)]), Atom([("y", Mult.PLUS)])])
        assert d1 == d2
        assert hash(d1) == hash(d2)
        pool = InternPool()
        assert pool.disjunction(d1) is pool.disjunction(d2)

    def test_unequal_atoms_unequal(self):
        assert Atom([("x", Mult.ONE)]) != Atom([("x", Mult.STAR)])
        assert Atom([("x", Mult.ONE)]) != Atom([("y", Mult.ONE)])


class TestConditionalTreeTypeKeys:
    def test_equal_types_equal_key(self):
        t1, t2 = _example_type(), _example_type()
        assert t1 is not t2
        assert t1 == t2
        assert t1.cache_key() == t2.cache_key()
        assert hash(t1.cache_key()) == hash(t2.cache_key())

    def test_cond_syntactic_variants_share_key(self):
        """cache_key components use denotation-hashed conds, so a type
        built with ``=5 ∧ ≥2`` keys identically to one with ``=5``."""
        base = _example_type()
        variant = ConditionalTreeType(
            roots=["r"],
            mu={
                "r": Disjunction.single(Atom.of(a="*", b="?")),
                "a": Disjunction.leaf(),
                "b": Disjunction.leaf(),
            },
            cond={"r": Cond.eq(0) & Cond.le(0), "a": Cond.ne(0)},
            sigma={"r": "r", "a": "a", "b": "b"},
        )
        assert base == variant
        assert base.cache_key() == variant.cache_key()

    def test_interning_types(self):
        pool = InternPool()
        assert pool.type(_example_type()) is pool.type(_example_type())

    def test_normalized_idempotent(self):
        tau = _example_type()
        once = tau.normalized()
        assert once.normalized() == once
        # and under caching too (the memoized path must agree)
        perf.clear_caches()
        with perf.cached():
            once_cached = tau.normalized()
            assert once_cached.normalized() == once_cached
            assert once_cached == once
        perf.clear_caches()

    def test_normalized_idempotent_after_denormalization(self):
        """A type with an unproductive symbol normalizes to a fixpoint."""
        tau = ConditionalTreeType(
            roots=["r"],
            mu={
                "r": Disjunction.single(Atom.of(a="*")),
                "a": Disjunction.leaf(),
                # never satisfiable: requires itself
                "loop": Disjunction.single(Atom.of(loop="1")),
            },
            cond={},
            sigma={"r": "r", "a": "a", "loop": "loop"},
        )
        once = tau.normalized()
        assert "loop" not in once.symbols()
        assert once.normalized() == once


class TestIncompleteTreeKeys:
    def test_equal_incomplete_trees_equal_key(self):
        def build():
            return IncompleteTree(
                {"r": DataNode("root", 0)}, _example_type(), allows_empty=False
            )

        a, b = build(), build()
        assert a.cache_key() == b.cache_key()

    def test_key_distinguishes_allows_empty(self):
        base = IncompleteTree({}, _example_type(), allows_empty=False)
        other = IncompleteTree({}, _example_type(), allows_empty=True)
        assert base.cache_key() != other.cache_key()

    def test_key_distinguishes_data_nodes(self):
        a = IncompleteTree({"r": DataNode("root", 0)}, _example_type())
        b = IncompleteTree({"r": DataNode("root", 1)}, _example_type())
        assert a.cache_key() != b.cache_key()
