"""Conditional tree type tests: emptiness (Lemma 2.5), useful symbols
(Corollary 2.6), normalization and membership."""

import pytest

from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType
from repro.incomplete.conditional import ConditionalTreeType


def simple(mu, roots=("r",), cond=None):
    return ConditionalTreeType.simple(roots, mu, cond)


class TestEmptiness:
    def test_leaf_type_nonempty(self):
        tau = simple({"r": Disjunction.leaf()})
        assert not tau.is_empty()

    def test_unsatisfiable_root_condition(self):
        tau = simple({"r": Disjunction.leaf()}, cond={"r": Cond.false()})
        assert tau.is_empty()

    def test_required_dead_child(self):
        # r needs an 'a' child, but 'a' needs itself: no finite tree
        tau = simple(
            {"r": Disjunction.single(Atom.of(a="1")), "a": Disjunction.single(Atom.of(a="1"))}
        )
        assert tau.is_empty()

    def test_recursion_with_escape(self):
        # a -> a | leaf: finite trees exist
        tau = simple(
            {"r": Disjunction.single(Atom.of(a="1")),
             "a": Disjunction([Atom.of(a="1"), Atom.leaf()])}
        )
        assert not tau.is_empty()

    def test_optional_dead_child_is_fine(self):
        tau = simple(
            {"r": Disjunction.single(Atom.of(a="*")),
             "a": Disjunction.single(Atom.of(a="1"))}
        )
        assert not tau.is_empty()

    def test_never_disjunction(self):
        tau = simple({"r": Disjunction.never()})
        assert tau.is_empty()


class TestUsefulAndNormalize:
    def test_unreachable_symbol_dropped(self):
        tau = simple(
            {"r": Disjunction.leaf(), "ghost": Disjunction.leaf()}
        )
        assert "ghost" not in tau.useful_symbols()
        assert "ghost" not in tau.normalized().symbols()

    def test_unproductive_star_entry_removed(self):
        tau = simple(
            {"r": Disjunction.single(Atom.of(dead="*")),
             "dead": Disjunction.single(Atom.of(dead="1"))}
        )
        normalized = tau.normalized()
        assert normalized.mu("r").atoms[0].is_leaf()

    def test_unrealizable_atom_removed(self):
        tau = simple(
            {
                "r": Disjunction([Atom.of(dead="1"), Atom.leaf()]),
                "dead": Disjunction.single(Atom.of(dead="1")),
            }
        )
        normalized = tau.normalized()
        assert len(normalized.mu("r")) == 1

    def test_normalize_idempotent(self):
        tau = simple(
            {"r": Disjunction.single(Atom.of(a="*")), "a": Disjunction.leaf()}
        )
        once = tau.normalized()
        assert once.normalized() == once

    def test_normalization_preserves_membership(self):
        tau = simple(
            {
                "r": Disjunction([Atom.of(a="+", dead="*"), Atom.of(b="1")]),
                "a": Disjunction.leaf(),
                "b": Disjunction.leaf(),
                "dead": Disjunction.single(Atom.of(dead="1")),
            }
        )
        tree = DataTree.build(node("n1", "r", 0, [node("n2", "a", 0)]))
        assert tau.contains(tree) == tau.normalized().contains(tree)


class TestMembership:
    TAU = simple(
        {
            "r": Disjunction.single(Atom.of(a="+", b="?")),
            "a": Disjunction.leaf(),
            "b": Disjunction.leaf(),
        },
        cond={"a": Cond.gt(0)},
    )

    def test_member(self):
        tree = DataTree.build(
            node("1", "r", 0, [node("2", "a", 1), node("3", "a", 2), node("4", "b", 0)])
        )
        assert self.TAU.contains(tree)

    def test_condition_violation(self):
        tree = DataTree.build(node("1", "r", 0, [node("2", "a", 0)]))
        assert not self.TAU.contains(tree)

    def test_count_violation(self):
        tree = DataTree.build(
            node("1", "r", 0, [node("2", "a", 1), node("3", "b", 0), node("4", "b", 0)])
        )
        assert not self.TAU.contains(tree)

    def test_missing_required(self):
        tree = DataTree.build(node("1", "r", 0, [node("2", "b", 0)]))
        assert not self.TAU.contains(tree)

    def test_empty_tree_not_member(self):
        assert not self.TAU.contains(DataTree.empty())

    def test_specialization_membership(self):
        # two specializations of 'a' with exclusive conditions
        tau = ConditionalTreeType(
            ["r"],
            {
                "r": Disjunction.single(Atom.of(a_small="*", a_big="*")),
                "a_small": Disjunction.leaf(),
                "a_big": Disjunction.leaf(),
            },
            {"a_small": Cond.lt(10), "a_big": Cond.ge(10)},
            {"r": "r", "a_small": "a", "a_big": "a"},
        )
        ok = DataTree.build(node("1", "r", 0, [node("2", "a", 5), node("3", "a", 50)]))
        assert tau.contains(ok)
        assert tau.symbols_for_target("a") == ("a_big", "a_small")

    def test_disjunction_choice(self):
        tau = simple(
            {
                "r": Disjunction([Atom.of(a="1"), Atom.of(b="1")]),
                "a": Disjunction.leaf(),
                "b": Disjunction.leaf(),
            }
        )
        assert tau.contains(DataTree.build(node("1", "r", 0, [node("2", "a", 0)])))
        assert tau.contains(DataTree.build(node("1", "r", 0, [node("2", "b", 0)])))
        assert not tau.contains(
            DataTree.build(node("1", "r", 0, [node("2", "a", 0), node("3", "b", 0)]))
        )


class TestLifting:
    def test_from_tree_type(self):
        tt = TreeType.parse("root: r\nr -> a+ b?")
        tau = ConditionalTreeType.from_tree_type(tt)
        tree = DataTree.build(node("1", "r", 0, [node("2", "a", 0)]))
        assert tau.contains(tree) == tt.satisfied_by(tree)
        bad = DataTree.build(node("1", "r", 0, [node("2", "b", 0)]))
        assert tau.contains(bad) == tt.satisfied_by(bad) == False  # noqa: E712

    def test_with_roots(self):
        tau = simple({"r": Disjunction.leaf(), "s": Disjunction.leaf()}, roots=("r",))
        re_rooted = tau.with_roots(["s"])
        assert re_rooted.roots == {"s"}

    def test_renamed_requires_injective(self):
        tau = simple({"r": Disjunction.single(Atom.of(a="*")), "a": Disjunction.leaf()})
        with pytest.raises(ValueError):
            tau.renamed({"r": "x", "a": "x"})
        renamed = tau.renamed({"a": "a2"})
        assert "a2" in renamed.symbols()

    def test_unknown_symbol_in_rule_rejected(self):
        with pytest.raises(ValueError):
            ConditionalTreeType(
                ["r"], {"r": Disjunction.single(Atom.of(zzz="*"))}, {}, {"r": "r"}
            )


class TestEmptinessAgainstEnumeration:
    """Emptiness (Lemma 2.5) vs the enumeration oracle on random types."""

    def _random_type(self, seed):
        import random

        from repro.core.multiplicity import Atom, Disjunction, Mult

        rng = random.Random(seed)
        symbols = [f"s{i}" for i in range(rng.randint(2, 5))]
        mu = {}
        cond = {}
        for symbol in symbols:
            atoms = []
            for _ in range(rng.randint(1, 2)):
                entries = []
                for child in rng.sample(symbols, k=rng.randint(0, 2)):
                    entries.append(
                        (child, rng.choice([Mult.ONE, Mult.OPT, Mult.PLUS, Mult.STAR]))
                    )
                try:
                    atoms.append(Atom(entries))
                except ValueError:
                    continue  # duplicate child pick
            mu[symbol] = Disjunction(atoms)
            if rng.random() < 0.3:
                cond[symbol] = Cond.false() if rng.random() < 0.2 else Cond.gt(0)
        roots = rng.sample(symbols, k=rng.randint(1, len(symbols)))
        return ConditionalTreeType.simple(roots, mu, cond)

    def test_emptiness_consistent_with_enumeration(self):
        from repro.incomplete.enumerate import enumerate_trees
        from repro.incomplete.incomplete_tree import IncompleteTree

        for seed in range(60):
            tau = self._random_type(seed)
            trees = enumerate_trees(
                IncompleteTree({}, tau), max_nodes=5, values_per_cond=1
            )
            if tau.is_empty():
                assert not trees, f"seed {seed}: empty type produced a tree"
            # non-empty types may still have all witnesses beyond the
            # budget; when the oracle finds one, confirm membership
            for tree in trees[:5]:
                assert tau.contains(tree), f"seed {seed}"
