"""Property test: the prefix relation against a brute-force embedder.

The matching-based `is_prefix_of` is a load-bearing substrate (answers,
certainty checks, oracles all use it); here it is validated against an
exhaustive search over all injective child mappings on small random
trees.
"""

from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import DataTree, NodeSpec, node


def brute_force_embeds(small: DataTree, big: DataTree, anchored) -> bool:
    anchored_set = set(anchored)
    if small.is_empty():
        return True
    if big.is_empty():
        return False

    def embed(sn, bn) -> bool:
        if small.label(sn) != big.label(bn):
            return False
        if small.value(sn) != big.value(bn):
            return False
        if sn in anchored_set and sn != bn:
            return False
        s_children = small.children(sn)
        b_children = big.children(bn)
        if len(s_children) > len(b_children):
            return False
        for targets in permutations(b_children, len(s_children)):
            if all(embed(c, t) for c, t in zip(s_children, targets)):
                return True
        return not s_children

    return embed(small.root, big.root)


labels = st.sampled_from(["a", "b"])
values = st.integers(min_value=0, max_value=2)

_counter = [0]


def _fresh_id() -> str:
    _counter[0] += 1
    return f"h{_counter[0]}"


def tree_specs(depth):
    if depth == 0:
        return st.builds(lambda l, v: node(_fresh_id(), l, v), labels, values)
    return st.builds(
        lambda l, v, kids: node(_fresh_id(), l, v, kids),
        labels,
        values,
        st.lists(tree_specs(depth - 1), max_size=3),
    )


@given(small=tree_specs(1), big=tree_specs(2))
@settings(max_examples=250, deadline=None)
def test_prefix_matches_brute_force(small, big):
    small_tree = DataTree.build(small)
    big_tree = DataTree.build(big)
    got = small_tree.is_prefix_of(big_tree)
    want = brute_force_embeds(small_tree, big_tree, [])
    assert got == want


@given(spec=tree_specs(2))
@settings(max_examples=100, deadline=None)
def test_tree_is_prefix_of_itself_and_anchored(spec):
    tree = DataTree.build(spec)
    assert tree.is_prefix_of(tree)
    assert tree.is_prefix_of(tree, relative_to=list(tree.node_ids()))


@given(spec=tree_specs(2), keep_count=st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_restriction_is_prefix(spec, keep_count):
    tree = DataTree.build(spec)
    ids = list(tree.node_ids())
    # keep a downward-closed subset: root plus first children in preorder
    keep = set()
    for node_id in ids:
        parent = tree.parent(node_id)
        if parent is None or parent in keep:
            keep.add(node_id)
        if len(keep) >= keep_count:
            break
    restricted = tree.restrict(keep)
    assert restricted.is_prefix_of(tree, relative_to=list(keep))
