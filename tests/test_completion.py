"""Theorem 3.19: non-redundant completions actually complete."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.mediator.completion import completion_plan
from repro.mediator.local_query import overlay
from repro.mediator.source import InMemorySource
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    generate_catalog,
    query1,
    query2,
    query4,
)

ALPHABET = ["root", "a", "b"]


def run_plan(plan, source, data_tree, query):
    merged = data_tree
    for local in plan:
        answer = source.ask_local(local.query, local.node)
        if not answer.is_empty():
            merged = overlay(merged, answer)
    return query.evaluate(merged)


class TestCatalogCompletion:
    @pytest.fixture()
    def knowledge(self, catalog_tt, catalog_doc, catalog_queries):
        history = [
            (catalog_queries[1], catalog_queries[1].evaluate(catalog_doc)),
            (catalog_queries[2], catalog_queries[2].evaluate(catalog_doc)),
        ]
        return intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), catalog_tt
        )

    def test_completion_answers_query4(self, knowledge, catalog_doc, catalog_queries):
        plan = completion_plan(knowledge, catalog_queries[4])
        assert plan
        source = InMemorySource(catalog_doc)
        answer = run_plan(plan, source, knowledge.data_tree(), catalog_queries[4])
        assert answer == catalog_queries[4].evaluate(catalog_doc)

    def test_plan_cheaper_than_full_document(self, knowledge, catalog_doc, catalog_queries):
        plan = completion_plan(knowledge, catalog_queries[4])
        source = InMemorySource(catalog_doc)
        run_plan(plan, source, knowledge.data_tree(), catalog_queries[4])
        assert source.stats.nodes_served < len(catalog_doc)

    def test_completion_on_larger_catalog(self, catalog_tt):
        doc = generate_catalog(20, seed=5)
        source = InMemorySource(doc, catalog_tt)
        history = [(query1(), query1().evaluate(doc)), (query2(), query2().evaluate(doc))]
        knowledge = intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), catalog_tt
        )
        plan = completion_plan(knowledge, query4())
        answer = run_plan(plan, source, knowledge.data_tree(), query4())
        assert answer == query4().evaluate(doc)


class TestSmallCases:
    def test_no_knowledge_degenerates(self):
        from repro.refine.inverse import universal_incomplete

        q = linear_query(["root", "a"])
        plan = completion_plan(universal_incomplete(ALPHABET), q)
        assert len(plan) == 1 and plan[0].node == ""

    def test_fully_known_region_needs_nothing(self):
        # bar query recorded: the whole subtree below x is known
        from repro.core.query import subtree

        src = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        q = PSQuery(pattern("root", children=[subtree("a", Cond.gt(0))]))
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(src))])
        plan = completion_plan(knowledge, q)
        # asking the same query again: everything already local
        assert plan == []

    def test_partial_knowledge_targets_missing_branch(self):
        q1 = linear_query(["root", "a"], [None, Cond.gt(0)])
        src = DataTree.build(
            node(
                "r",
                "root",
                0,
                [node("x", "a", 5, [node("y", "b", 1)]), node("z", "a", -1)],
            )
        )
        knowledge = refine_sequence(ALPHABET, [(q1, q1.evaluate(src))])
        q2 = PSQuery(
            pattern("root", children=[pattern("a", None, [pattern("b")])])
        )
        plan = completion_plan(knowledge, q2)
        assert plan
        source = InMemorySource(src)
        answer = run_plan(plan, source, knowledge.data_tree(), q2)
        assert answer == q2.evaluate(src)

    def test_plans_have_no_duplicate_queries(self, catalog_tt, catalog_doc):
        history = [(query1(), query1().evaluate(catalog_doc))]
        knowledge = intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), catalog_tt
        )
        plan = completion_plan(knowledge, query2())
        keys = [(p.query, p.node) for p in plan]
        assert len(keys) == len(set(keys))
