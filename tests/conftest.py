"""Shared fixtures: the paper's running examples and small helpers."""

from __future__ import annotations

import pytest

from repro.core import Cond, DataTree, PSQuery, node, pattern
from repro.incomplete import ConditionalTreeType, IncompleteTree
from repro.incomplete.incomplete_tree import DataNode
from repro.core.multiplicity import Atom, Disjunction
from repro.core.values import as_value
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
    query3,
    query4,
    query5,
)


@pytest.fixture(scope="session")
def catalog_tt():
    return catalog_type()


@pytest.fixture(scope="session")
def catalog_doc():
    return demo_catalog()


@pytest.fixture(scope="session")
def catalog_queries():
    return {
        1: query1(),
        2: query2(),
        3: query3(),
        4: query4(),
        5: query5(),
    }


@pytest.fixture()
def example_2_2():
    """The paper's Example 2.2 incomplete tree T and query q."""
    tau = ConditionalTreeType(
        roots=["r"],
        mu={
            "r": Disjunction.single(Atom.of(n="1", a="*")),
            "a": Disjunction.single(Atom.of(b="*")),
            "n": Disjunction.single(Atom.of(b="*")),
            "b": Disjunction.leaf(),
        },
        cond={"r": Cond.eq(0), "n": Cond.eq(0), "a": Cond.ne(0)},
        sigma={"r": "r", "n": "n", "a": "a", "b": "b"},
    )
    incomplete = IncompleteTree(
        {"r": DataNode("root", as_value(0)), "n": DataNode("a", as_value(0))},
        tau,
    )
    query = PSQuery(
        pattern("root", Cond.eq(0), [pattern("a", children=[pattern("b")])])
    )
    return incomplete, query


@pytest.fixture()
def simple_tree():
    """root(0) with two a-children, one having a b-grandchild."""
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("x", "a", 5, [node("y", "b", 1)]),
                node("z", "a", 0),
            ],
        )
    )
