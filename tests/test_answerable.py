"""Corollary 3.15: full answerability from local knowledge."""

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.answering.answerable import fully_answerable
from repro.incomplete.enumerate import enumerate_trees
from repro.incomplete.incomplete_tree import IncompleteTree
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import CATALOG_ALPHABET

ALPHABET = ["root", "a", "b"]


class TestCatalogScenario:
    """Example 3.4: Query 3 is answerable after Queries 1-2; Query 4 not."""

    def knowledge(self, catalog_tt, catalog_doc, catalog_queries):
        history = [
            (catalog_queries[1], catalog_queries[1].evaluate(catalog_doc)),
            (catalog_queries[2], catalog_queries[2].evaluate(catalog_doc)),
        ]
        refined = refine_sequence(CATALOG_ALPHABET, history)
        return intersect_with_tree_type(refined, catalog_tt)

    def test_query3_answerable(self, catalog_tt, catalog_doc, catalog_queries):
        knowledge = self.knowledge(catalog_tt, catalog_doc, catalog_queries)
        answerable, answer = fully_answerable(knowledge, catalog_queries[3])
        assert answerable
        assert answer == catalog_queries[3].evaluate(catalog_doc)

    def test_query4_not_answerable(self, catalog_tt, catalog_doc, catalog_queries):
        knowledge = self.knowledge(catalog_tt, catalog_doc, catalog_queries)
        answerable, _answer = fully_answerable(knowledge, catalog_queries[4])
        assert not answerable

    def test_query1_replay_answerable(self, catalog_tt, catalog_doc, catalog_queries):
        # asking a recorded query again is trivially answerable
        knowledge = self.knowledge(catalog_tt, catalog_doc, catalog_queries)
        answerable, answer = fully_answerable(knowledge, catalog_queries[1])
        assert answerable
        assert answer == catalog_queries[1].evaluate(catalog_doc)


class TestAnswerableOracle:
    def test_answerable_means_constant_answers(self, example_2_2):
        incomplete, query = example_2_2
        answerable, local = fully_answerable(incomplete, query)
        trees = enumerate_trees(
            incomplete, max_nodes=6, values_per_cond=1, extra_values=[0, 1]
        )
        answers = {repr(sorted(query.evaluate(t).node_ids())) for t in trees}
        if answerable:
            assert len(answers) == 1
        else:
            assert len(answers) > 1

    def test_pinned_knowledge_is_answerable(self):
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 5)]))
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(src))])
        answerable, answer = fully_answerable(knowledge, q)
        assert answerable
        assert set(answer.node_ids()) == {"r", "x"}

    def test_unknown_region_blocks(self):
        q1 = linear_query(["root", "a"], [None, Cond.gt(0)])
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 5)]))
        knowledge = refine_sequence(ALPHABET, [(q1, q1.evaluate(src))])
        # asking about b's: nothing known
        q2 = linear_query(["root", "b"])
        answerable, _ = fully_answerable(knowledge, q2)
        assert not answerable

    def test_empty_rep_vacuously_answerable(self):
        nothing = IncompleteTree.nothing(allows_empty=False)
        answerable, answer = fully_answerable(nothing, PSQuery(pattern("root")))
        assert answerable
        assert answer.is_empty()

    def test_certainly_empty_answer_is_answerable(self):
        # knowledge proves no a > 100 exists: query answer surely empty
        q1 = linear_query(["root", "a"])
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 5)]))
        knowledge = refine_sequence(ALPHABET, [(q1, q1.evaluate(src))])
        q2 = linear_query(["root", "a"], [None, Cond.gt(100)])
        answerable, answer = fully_answerable(knowledge, q2)
        assert answerable
        assert answer.is_empty()
