"""End-to-end Webhouse scenario tests (the Section 1 story)."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import linear_query
from repro.core.tree import DataTree, node
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
    query3,
    query4,
    query5,
)


@pytest.fixture()
def setup(catalog_tt, catalog_doc):
    source = InMemorySource(catalog_doc, catalog_tt)
    wh = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt)
    wh.ask(source, query1())
    wh.ask(source, query2())
    return wh, source


class TestScenario:
    def test_example_3_4_flow(self, setup, catalog_doc):
        wh, source = setup
        # Query 3 answerable locally, without a source round-trip
        queries_before = source.stats.queries
        assert wh.can_answer(query3())
        assert wh.answer_locally(query3()) == query3().evaluate(catalog_doc)
        assert source.stats.queries == queries_before
        # Query 4 is not
        assert not wh.can_answer(query4())
        with pytest.raises(ValueError):
            wh.answer_locally(query4())

    def test_certain_part_and_possibility(self, setup, catalog_doc):
        wh, _source = setup
        sure = wh.certain_answer_part(query4())
        names = {sure.value(n) for n in sure.node_ids() if sure.label(n) == "name"}
        # the known cameras: cheap or pictured
        assert names == {"Canon", "Nikon", "Olympus"}
        # there may be more cameras (expensive without pictures)
        assert wh.may_match(query5())

    def test_semantic_claims(self, setup):
        wh, _source = setup
        nikon_pic = DataTree.build(
            node("cat0", "catalog", 0,
                 [node("p-nikon", "product", 0, [node("f", "picture", "x.jpg")])])
        )
        assert not wh.is_possible_prefix(nikon_pic)
        cheap_olympus = DataTree.build(
            node("cat0", "catalog", 0,
                 [node("p-olympus", "product", 0, [node("f", "price", 150)])])
        )
        assert not wh.is_possible_prefix(cheap_olympus)
        fair_olympus = DataTree.build(
            node("cat0", "catalog", 0,
                 [node("p-olympus", "product", 0, [node("f", "price", 250)])])
        )
        assert wh.is_possible_prefix(fair_olympus)

    def test_mediated_answer(self, setup, catalog_doc):
        wh, source = setup
        before = source.stats.nodes_served
        answer, plan = wh.complete_and_answer(source, query4())
        assert answer == query4().evaluate(catalog_doc)
        assert plan
        assert source.stats.nodes_served - before < len(catalog_doc)

    def test_possible_answers_structure(self, setup, catalog_doc):
        wh, _source = setup
        answers = wh.possible_answers(query4())
        assert answers.contains(query4().evaluate(catalog_doc))


class TestLifecycle:
    def test_reset(self, catalog_tt, catalog_doc):
        source = InMemorySource(catalog_doc, catalog_tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt)
        wh.ask(source, query1())
        assert wh.history
        wh.reset()
        assert not wh.history
        assert wh.data_tree().is_empty()

    def test_compact_keeps_data(self, catalog_tt, catalog_doc):
        source = InMemorySource(catalog_doc, catalog_tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt)
        wh.ask(source, query1())
        before = wh.size()
        data_before = set(wh.data_tree().node_ids())
        wh.compact()
        assert set(wh.data_tree().node_ids()) == data_before
        assert wh.size() <= before

    def test_auto_minimize_mode(self, catalog_tt, catalog_doc):
        source = InMemorySource(catalog_doc, catalog_tt)
        fat = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt)
        slim = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt, auto_minimize=True)
        for wh in (fat, slim):
            wh.ask(InMemorySource(catalog_doc, catalog_tt), query1())
            wh.ask(InMemorySource(catalog_doc, catalog_tt), query2())
        assert slim.size() <= fat.size()
        assert slim.can_answer(query3()) == fat.can_answer(query3())

    def test_without_tree_type(self, catalog_doc):
        wh = Webhouse(CATALOG_ALPHABET)
        source = InMemorySource(catalog_doc)
        wh.ask(source, query1())
        assert wh.can_answer(query1())

    def test_small_alphabet_session(self):
        alphabet = ["root", "a", "b"]
        doc = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        source = InMemorySource(doc)
        wh = Webhouse(alphabet)
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        wh.ask(source, q)
        assert wh.can_answer(q)
        answer, _plan = wh.complete_and_answer(
            source, linear_query(["root", "a", "b"])
        )
        assert answer == linear_query(["root", "a", "b"]).evaluate(doc)
