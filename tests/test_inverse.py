"""Lemma 3.2: the q⁻¹(A) construction is exact."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern, subtree
from repro.core.tree import DataTree, node
from repro.incomplete.enumerate import enumerate_trees
from repro.refine.inverse import (
    answer_witness,
    inverse_incomplete,
    universal_incomplete,
)

ALPHABET = ["root", "a", "b"]


def source():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("x", "a", 5, [node("y", "b", 1)]),
                node("z", "a", 0),
                node("w", "a", 3),
            ],
        )
    )


def q_basic():
    return PSQuery(
        pattern("root", children=[pattern("a", Cond.ne(0), [pattern("b")])])
    )


class TestWitness:
    def test_maps_answer_nodes_to_pattern_paths(self):
        q = q_basic()
        answer = q.evaluate(source())
        witness = answer_witness(q, answer)
        assert witness["r"] == ()
        assert witness["x"] == (0,)
        assert witness["y"] == (0, 0)

    def test_rejects_non_answers(self):
        q = q_basic()
        fake = DataTree.build(node("r", "root", 0, [node("x", "a", 0)]))
        with pytest.raises(ValueError):
            answer_witness(q, fake)  # violates the a != 0 condition

    def test_rejects_stray_labels(self):
        q = q_basic()
        fake = DataTree.build(node("r", "root", 0, [node("q", "b", 0)]))
        with pytest.raises(ValueError):
            answer_witness(q, fake)

    def test_empty_answer(self):
        assert answer_witness(q_basic(), DataTree.empty()) == {}

    def test_bar_descendants(self):
        q = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        answer = q.evaluate(source())
        witness = answer_witness(q, answer)
        assert witness["y"] == (0,)


class TestUniversal:
    def test_contains_everything(self, simple_tree):
        universal = universal_incomplete(ALPHABET)
        assert universal.contains(simple_tree)
        assert universal.contains(DataTree.empty())
        assert universal.validate() == []
        assert universal.is_unambiguous()

    def test_alien_labels_rejected(self):
        universal = universal_incomplete(["root"])
        alien = DataTree.build(node("r", "zzz", 0))
        assert not universal.contains(alien)


class TestInverseExactness:
    """rep(T_{q,A}) = {T | q(T) = A} — both directions."""

    def exactness_check(self, query, src, budget=5, values=(0, 1, 3, 5)):
        answer = query.evaluate(src)
        inverse = inverse_incomplete(query, answer, ALPHABET)
        assert inverse.validate() == []
        assert inverse.is_unambiguous()
        assert inverse.contains(src)
        for tree in enumerate_trees(
            inverse, max_nodes=budget, values_per_cond=1, extra_values=values
        ):
            assert query.evaluate(tree) == answer, tree.pretty()
        return inverse

    def test_basic_query(self):
        self.exactness_check(q_basic(), source())

    def test_linear_query(self):
        q = linear_query(["root", "a"], [None, Cond.gt(2)])
        self.exactness_check(q, source())

    def test_bar_query(self):
        q = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        inverse = self.exactness_check(q, source())
        # below-bar: a tree with an extra child under y is NOT consistent
        extended = source().with_subtree("y", node("extra", "b", 9))
        assert not inverse.contains(extended)

    def test_empty_answer(self):
        q = PSQuery(
            pattern("root", children=[pattern("a", Cond.gt(100), [pattern("b")])])
        )
        answer = q.evaluate(source())
        assert answer.is_empty()
        inverse = inverse_incomplete(q, answer, ALPHABET)
        assert inverse.contains(source())
        assert inverse.contains(DataTree.empty())
        for tree in enumerate_trees(
            inverse, max_nodes=4, extra_values=[0, 101]
        ):
            assert q.evaluate(tree).is_empty()

    def test_rejects_trees_with_more_matches(self):
        q = q_basic()
        answer = q.evaluate(source())
        inverse = inverse_incomplete(q, answer, ALPHABET)
        extra_match = source().with_subtree(
            "r", node("v", "a", 7, [node("u", "b", 2)])
        )
        assert not inverse.contains(extra_match)

    def test_rejects_trees_missing_answer_nodes(self):
        q = q_basic()
        answer = q.evaluate(source())
        inverse = inverse_incomplete(q, answer, ALPHABET)
        shrunk = DataTree.build(node("r", "root", 0, [node("z", "a", 0)]))
        assert not inverse.contains(shrunk)

    def test_allows_irrelevant_variation(self):
        q = q_basic()
        answer = q.evaluate(source())
        inverse = inverse_incomplete(q, answer, ALPHABET)
        # adding a failing 'a' (no b child) keeps the answer unchanged
        varied = source().with_subtree("r", node("v", "a", 7))
        assert inverse.contains(varied)

    def test_root_value_pinned(self):
        q = q_basic()
        answer = q.evaluate(source())
        inverse = inverse_incomplete(q, answer, ALPHABET)
        rerooted = DataTree.build(
            node("r", "root", 1, [node("x", "a", 5, [node("y", "b", 1)]),
                                  node("z", "a", 0), node("w", "a", 3)])
        )
        assert not inverse.contains(rerooted)  # answer fixed root value 0
