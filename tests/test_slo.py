"""SLO objectives, the multi-window burn-rate engine, trace sampling.

The engine's clock is injectable, so these tests drive time by hand:
a burn alert must fire only when *every* window exceeds the threshold
with enough short-window evidence, fire exactly once per episode, and
resolve once the short window cools down.  A burning latency objective
carries a paper remedy; the degrade hook applies it to a real
:class:`Webhouse`.
"""

from __future__ import annotations

import pytest

from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.obs.monitor import REMEDY_CONJUNCTIVE, REMEDY_LOSSY
from repro.obs.sample import (
    DEFAULT_SLOW_S,
    REASON_ERROR,
    REASON_HEAD,
    REASON_SHED,
    REASON_SLOW,
    TraceSampler,
)
from repro.obs.slo import (
    KIND_AVAILABILITY,
    KIND_LATENCY,
    Objective,
    SloEngine,
    default_objectives,
)
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
)


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def availability_engine(**overrides) -> "tuple[SloEngine, FakeClock]":
    clock = FakeClock()
    kwargs = dict(
        objectives=[Objective("avail", KIND_AVAILABILITY, 0.999)],
        windows=(60.0, 300.0),
        burn_threshold=10.0,
        min_events=10,
        clock=clock,
    )
    kwargs.update(overrides)
    return SloEngine(**kwargs), clock


# -- objectives ---------------------------------------------------------------


def test_objective_parse_availability():
    objective = Objective.parse("availability:99.9")
    assert objective.kind == KIND_AVAILABILITY
    assert objective.target == pytest.approx(0.999)
    assert objective.budget == pytest.approx(0.001)
    assert objective.remedy is None
    assert objective.is_bad(500, 0.01)
    assert objective.is_bad(503, 0.01)
    assert not objective.is_bad(404, 0.01)  # 4xx spends no budget
    assert not objective.is_bad(200, 99.0)


def test_objective_parse_latency():
    objective = Objective.parse("latency:99:250ms")
    assert objective.kind == KIND_LATENCY
    assert objective.threshold_s == pytest.approx(0.25)
    assert objective.remedy == REMEDY_LOSSY  # the latency default
    assert objective.is_bad(200, 0.3)
    assert not objective.is_bad(200, 0.2)
    assert objective.is_bad(500, 0.3)  # slow is bad regardless of status

    assert Objective.parse("latency:95:2s").threshold_s == pytest.approx(2.0)
    assert Objective.parse("latency:95:0.1").threshold_s == pytest.approx(0.1)
    custom = Objective.parse("latency:99:250ms:conjunctive")
    assert custom.remedy == REMEDY_CONJUNCTIVE


@pytest.mark.parametrize(
    "spec",
    [
        "availability",  # no target
        "latency:99",  # no threshold
        "latency:99:250ms:lossy:extra",  # trailing fields
        "latency:99:250ms:frobnicate",  # unknown remedy
        "uptime:99",  # unknown kind
        "availability:0",  # target out of range
        "availability:100",
    ],
)
def test_objective_parse_rejects(spec):
    with pytest.raises(ValueError):
        Objective.parse(spec)


def test_default_objectives_follow_slow_threshold():
    objectives = default_objectives(slow_s=0.1)
    by_kind = {o.kind: o for o in objectives}
    assert by_kind[KIND_LATENCY].threshold_s == pytest.approx(0.1)
    assert by_kind[KIND_AVAILABILITY].target == pytest.approx(0.999)


# -- burn-rate engine ---------------------------------------------------------


def test_no_alert_below_min_events():
    engine, _ = availability_engine()
    for _ in range(9):  # every request bad, but not enough evidence
        engine.record(500, 0.01)
    assert engine.alerts == ()
    assert engine.burning() == []


def test_burn_fires_once_per_episode():
    engine, _ = availability_engine()
    fired = []
    engine.on_alert(fired.append)
    for _ in range(30):
        engine.record(500, 0.01)
    burns = [a for a in engine.alerts if a.kind == "burn"]
    assert len(burns) == 1  # edge-triggered, not once per request
    assert engine.burning() == ["avail"]
    assert fired == list(engine.alerts)
    assert "avail" in burns[0].message


def test_long_window_gates_a_short_blip():
    """A 5xx burst inside the short window alone must not alert when
    the long window has enough healthy history to stay below threshold."""
    engine, clock = availability_engine()
    for _ in range(5000):
        engine.record(200, 0.01)
    clock.advance(250.0)
    for _ in range(15):
        engine.record(500, 0.01)
    # the short window burns hot, but the long window remembers the
    # healthy history — no alert
    snapshot = engine.snapshot()["objectives"][0]
    assert snapshot["windows"]["60"]["burn_rate"] >= 10.0
    assert snapshot["windows"]["300"]["burn_rate"] < 10.0
    assert engine.burning() == []
    assert all(a.kind != "burn" for a in engine.alerts)


def test_burn_resolves_when_short_window_cools():
    engine, clock = availability_engine()
    for _ in range(30):
        engine.record(500, 0.01)
    assert engine.burning() == ["avail"]
    # the bad burst ages out of the 60s window; healthy traffic resumes
    clock.advance(90.0)
    for _ in range(20):
        engine.record(200, 0.01)
    assert engine.burning() == []
    kinds = [a.kind for a in engine.alerts]
    assert kinds == ["burn", "resolved"]


def test_evaluate_resolves_without_new_traffic():
    engine, clock = availability_engine()
    for _ in range(30):
        engine.record(500, 0.01)
    assert engine.burning() == ["avail"]
    clock.advance(90.0)
    engine.evaluate()  # no new requests; the burst decayed
    assert engine.burning() == []
    assert [a.kind for a in engine.alerts] == ["burn", "resolved"]


def test_latency_objective_burns_on_slow_traffic():
    clock = FakeClock()
    engine = SloEngine(
        objectives=[Objective("lat", KIND_LATENCY, 0.99, threshold_s=0.25)],
        clock=clock,
    )
    for _ in range(30):
        engine.record(200, 0.5)  # successful but slow
    burns = [a for a in engine.alerts if a.kind == "burn"]
    assert len(burns) == 1
    assert burns[0].remedy == REMEDY_LOSSY
    assert "lossy" in burns[0].message


def test_degrade_hook_applies_paper_remedy():
    clock = FakeClock()
    engine = SloEngine(
        objectives=[Objective("lat", KIND_LATENCY, 0.99, threshold_s=0.25)],
        clock=clock,
    )
    tree_type = catalog_type()
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    webhouse.ask(InMemorySource(demo_catalog(), tree_type), query1())
    applied = []

    def degrade(alert):
        applied.append(alert.remedy)
        webhouse.apply_remedy(alert.remedy)

    engine.set_degrade(degrade)
    before = webhouse.size()
    for _ in range(30):
        engine.record(200, 0.5)
    assert applied == [REMEDY_LOSSY]
    assert webhouse.size() <= before  # forgetting never grows knowledge
    # availability burns carry no remedy: the hook must not re-fire
    assert [a.kind for a in engine.alerts] == ["burn"]


def test_snapshot_shape():
    engine, _ = availability_engine()
    engine.record(200, 0.01)
    engine.record(500, 0.01)
    snapshot = engine.snapshot()
    assert snapshot["burn_threshold"] == 10.0
    assert snapshot["windows_s"] == [60.0, 300.0]
    (objective,) = snapshot["objectives"]
    assert objective["name"] == "avail"
    assert objective["lifetime"] == {
        "good": 1,
        "bad": 1,
        "bad_fraction": 0.5,
    }
    assert objective["windows"]["60"]["events"] == 2
    assert objective["windows"]["60"]["burn_rate"] == pytest.approx(500.0)


def test_engine_rejects_bad_config():
    with pytest.raises(ValueError):
        SloEngine(windows=())
    with pytest.raises(ValueError):
        SloEngine(windows=(0.0, 60.0))
    with pytest.raises(ValueError):
        Objective("x", "availability", 0.999, remedy="frobnicate")
    with pytest.raises(ValueError):
        Objective("x", "latency", 0.99)  # latency needs a threshold


# -- trace sampler ------------------------------------------------------------


def test_tail_rules_take_precedence():
    sampler = TraceSampler(head_rate=0.0)  # head sampling keeps nothing
    assert sampler.decide("t1", 200, 0.01) is None
    assert sampler.decide("t2", 500, 0.01) == REASON_ERROR
    assert sampler.decide("t3", 200, 0.01, errored=True) == REASON_ERROR
    assert sampler.decide("t4", 503, 0.01) == REASON_SHED
    assert sampler.decide("t5", 429, 0.01) == REASON_SHED
    # a shed 503 with an errored span tree is backpressure, not a bug
    assert sampler.decide("t6", 503, 0.01, errored=True) == REASON_SHED
    assert sampler.decide("t7", 200, DEFAULT_SLOW_S * 2) == REASON_SLOW
    stats = sampler.stats()
    assert stats["kept"] == 6
    assert stats["dropped"] == 1
    assert stats["by_reason"] == {
        REASON_ERROR: 2,
        REASON_SHED: 3,
        REASON_SLOW: 1,
    }


def test_head_rate_one_keeps_everything():
    sampler = TraceSampler(head_rate=1.0)
    for index in range(50):
        assert sampler.decide(f"trace-{index}", 200, 0.001) == REASON_HEAD
    assert sampler.stats()["keep_fraction"] == 1.0


def test_head_decision_is_deterministic_and_proportional():
    sampler = TraceSampler(head_rate=0.25)
    ids = [f"trace-{i}" for i in range(4000)]
    kept = [t for t in ids if sampler.head_decision(t)]
    assert kept == [t for t in ids if sampler.head_decision(t)]  # stable
    assert 0.18 <= len(kept) / len(ids) <= 0.32


def test_sampler_rejects_bad_config():
    with pytest.raises(ValueError):
        TraceSampler(head_rate=1.5)
    with pytest.raises(ValueError):
        TraceSampler(head_rate=-0.1)
    with pytest.raises(ValueError):
        TraceSampler(slow_s=0.0)
