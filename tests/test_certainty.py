"""Theorem 2.8: certain/possible prefix — checked against the
enumeration oracle."""

import pytest

from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction
from repro.core.tree import DataTree, node
from repro.core.values import as_value
from repro.incomplete.certainty import certain_prefix, possible_prefix
from repro.incomplete.conditional import ConditionalTreeType
from repro.incomplete.enumerate import enumerate_trees
from repro.incomplete.incomplete_tree import DataNode, IncompleteTree


class TestExample22Prefixes:
    def test_root_alone_certain(self, example_2_2):
        incomplete, _q = example_2_2
        prefix = DataTree.build(node("r", "root", 0))
        assert certain_prefix(prefix, incomplete)
        assert possible_prefix(prefix, incomplete)

    def test_data_node_certain(self, example_2_2):
        incomplete, _q = example_2_2
        prefix = DataTree.build(node("r", "root", 0, [node("n", "a", 0)]))
        assert certain_prefix(prefix, incomplete)

    def test_fresh_node_onto_data_node(self, example_2_2):
        incomplete, _q = example_2_2
        # a fresh a=0 node can only embed onto data node n -> still certain
        prefix = DataTree.build(node("r", "root", 0, [node("q", "a", 0)]))
        assert certain_prefix(prefix, incomplete)

    def test_extra_a_possible_not_certain(self, example_2_2):
        incomplete, _q = example_2_2
        prefix = DataTree.build(node("r", "root", 0, [node("q", "a", 7)]))
        assert possible_prefix(prefix, incomplete)
        assert not certain_prefix(prefix, incomplete)

    def test_violating_value_impossible(self, example_2_2):
        incomplete, _q = example_2_2
        # two fresh a=0 nodes: only one data node carries value 0
        prefix = DataTree.build(
            node("r", "root", 0, [node("q1", "a", 0), node("q2", "a", 0)])
        )
        assert not possible_prefix(prefix, incomplete)

    def test_empty_prefix(self, example_2_2):
        incomplete, _q = example_2_2
        assert possible_prefix(DataTree.empty(), incomplete)
        assert certain_prefix(DataTree.empty(), incomplete)

    def test_anchored_mismatch_impossible(self, example_2_2):
        incomplete, _q = example_2_2
        wrong_value = DataTree.build(node("r", "root", 5))
        assert not possible_prefix(wrong_value, incomplete)
        wrong_label = DataTree.build(node("r", "catalog", 0))
        assert not possible_prefix(wrong_label, incomplete)


class TestEdgeCases:
    def test_empty_rep(self):
        nothing = IncompleteTree.nothing(allows_empty=False)
        prefix = DataTree.build(node("x", "a", 0))
        assert not possible_prefix(prefix, nothing)
        assert not certain_prefix(prefix, nothing)
        assert not certain_prefix(DataTree.empty(), nothing)

    def test_allows_empty_blocks_certainty(self, example_2_2):
        incomplete, _q = example_2_2
        loose = incomplete.with_allows_empty(True)
        prefix = DataTree.build(node("r", "root", 0))
        assert not certain_prefix(prefix, loose)
        assert possible_prefix(prefix, loose)

    def test_certain_needs_forced_value(self):
        # star 'a' children have cond > 0: a=5 prefix is possible but a
        # tree could use a=7 instead -> not certain
        tau = ConditionalTreeType(
            ["t-r"],
            {
                "t-r": Disjunction.single(Atom.of(**{"t-a": "*"})),
                "t-a": Disjunction.leaf(),
            },
            {"t-r": Cond.eq(0), "t-a": Cond.gt(0)},
            {"t-r": "r", "t-a": "a"},
        )
        incomplete = IncompleteTree({"r": DataNode("root", as_value(0))}, tau)
        prefix = DataTree.build(node("r", "root", 0, [node("f", "a", 5)]))
        assert possible_prefix(prefix, incomplete)
        assert not certain_prefix(prefix, incomplete)

    def test_certain_with_pinned_required_child(self):
        tau = ConditionalTreeType(
            ["t-r"],
            {
                "t-r": Disjunction.single(Atom.of(**{"t-a": "*", "t-n": "1"})),
                "t-a": Disjunction.leaf(),
                "t-n": Disjunction.leaf(),
            },
            {"t-r": Cond.eq(0), "t-a": Cond.gt(0), "t-n": Cond.eq(9)},
            {"t-r": "r", "t-a": "a", "t-n": "m"},
        )
        incomplete = IncompleteTree(
            {"r": DataNode("root", as_value(0)), "m": DataNode("a", as_value(9))},
            tau,
        )
        prefix = DataTree.build(node("r", "root", 0, [node("f", "a", 9)]))
        # the fresh a=9 embeds onto the guaranteed data node m
        assert certain_prefix(prefix, incomplete)

    def test_disjunction_breaks_certainty(self):
        # r -> a | b: neither child label is certain
        tau = ConditionalTreeType.simple(
            ["r"],
            {
                "r": Disjunction([Atom.of(a="1"), Atom.of(b="1")]),
                "a": Disjunction.leaf(),
                "b": Disjunction.leaf(),
            },
            {"r": Cond.eq(0), "a": Cond.eq(0), "b": Cond.eq(0)},
        )
        incomplete = IncompleteTree({}, tau)
        child_a = DataTree.build(node("x", "r", 0, [node("y", "a", 0)]))
        assert possible_prefix(child_a, incomplete)
        assert not certain_prefix(child_a, incomplete)
        root_only = DataTree.build(node("x", "r", 0))
        assert certain_prefix(root_only, incomplete)


class TestAgainstOracle:
    """Exhaustive comparison on a small incomplete tree."""

    @pytest.fixture()
    def setting(self, example_2_2):
        incomplete, _q = example_2_2
        trees = enumerate_trees(
            incomplete, max_nodes=5, values_per_cond=1, extra_values=[0, 1, -1]
        )
        return incomplete, trees

    def candidate_prefixes(self):
        b = lambda spec: DataTree.build(spec)  # noqa: E731
        yield b(node("r", "root", 0))
        yield b(node("r", "root", 0, [node("n", "a", 0)]))
        yield b(node("r", "root", 0, [node("n", "a", 0, [node("f", "b", 0)])]))
        yield b(node("r", "root", 0, [node("f1", "a", 1)]))
        yield b(node("r", "root", 0, [node("f1", "a", 1), node("f2", "a", -1)]))
        yield b(node("r", "root", 0, [node("f1", "a", 1, [node("f2", "b", 0)])]))
        yield b(node("r", "root", 0, [node("f1", "b", 0)]))  # impossible label

    def test_possible_matches_oracle(self, setting):
        incomplete, trees = setting
        anchored = list(incomplete.data_node_ids())
        for prefix in self.candidate_prefixes():
            oracle = any(
                prefix.is_prefix_of(t, relative_to=anchored) for t in trees
            )
            got = possible_prefix(prefix, incomplete)
            # oracle is bounded: it may miss witnesses, never invent them
            if oracle:
                assert got, f"oracle found a witness but possible_prefix=False\n{prefix.pretty()}"
            if not got:
                assert not oracle

    def test_certain_matches_oracle(self, setting):
        incomplete, trees = setting
        anchored = list(incomplete.data_node_ids())
        for prefix in self.candidate_prefixes():
            oracle = all(
                prefix.is_prefix_of(t, relative_to=anchored) for t in trees
            )
            got = certain_prefix(prefix, incomplete)
            # certain => every enumerated tree contains it
            if got:
                assert oracle, f"claimed certain but an enumerated tree lacks it\n{prefix.pretty()}"
