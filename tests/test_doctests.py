"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.values


@pytest.mark.parametrize("module", [repro.core.values])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
