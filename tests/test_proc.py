"""The process-backed cluster data plane (PR 10).

Covers the acceptance criteria end to end: certain-answer invariance is
bit-for-bit identical across mono (one engine per key), thread, and
process backends on 1/2/8 shards — including under a seeded fault plan
with a worker kill+respawn; the wire envelope carries the caller's
trace id, deadline, and fault plan across the process hop; a dead or
hung worker is respawned with its engines revived from the journal
exactly-once; and workers push latency-sketch/counter books back so
fleet telemetry merges without polling.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.cluster import (
    BACKENDS,
    Executor,
    ProcWorkerPool,
    ShardedWebhouse,
    WorkerConfig,
    WorkerUnavailable,
)
from repro.core.tree import DataTree
from repro.faults.inject import fault_scope
from repro.faults.plan import FaultPlan
from repro.faults.policies import Deadline, DeadlineExceeded
from repro.mediator.local_query import overlay
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.obs.registry import Metrics
from repro.obs.sinks import NullSink
from repro.obs.spans import current_trace_id, reset_trace_id, set_trace_id
from repro.ops import OpsServer, demo_cluster, drive_request, proc_self_check
from repro.store import SessionStore
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
)


@pytest.fixture(autouse=True)
def clean_state():
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()


def _source(products: int = 8, seed: int = 7) -> InMemorySource:
    return InMemorySource(generate_catalog(products, seed=seed), catalog_type())


def _facts(tree: DataTree):
    return sorted(
        (nid, tree.label(nid), tree.value(nid), tree.parent(nid))
        for nid in tree.node_ids()
    )


_KEYS = [f"tenant-{i}" for i in range(6)]


def _drive(cluster: ShardedWebhouse, source, *, kill_one: bool = False):
    """One deterministic workload; returns comparable per-key + fleet facts.

    A seeded fault plan is armed around one of the asks (it targets the
    worker entry site of shard 0, a no-op under the thread backend);
    with ``kill_one`` the worker owning the first key is SIGKILLed
    after ingestion, so the answers that follow must come from a
    respawned worker's journal-revived engines.
    """
    queries = [query1(), query2(), query3()]
    plan = FaultPlan.parse("cluster.worker.0:error:once")
    for i, key in enumerate(_KEYS):
        with fault_scope(plan if i == 2 else None):
            cluster.ask(key, source, queries[i % 3])
    if kill_one and cluster.backend == "process":
        cluster.pool().kill(cluster.shard_of(_KEYS[0]))
    out = []
    for key in _KEYS:
        sure, more = cluster.answer(key, queries[0])
        out.append((key, _facts(sure), more))
    union, more = cluster.ask_all(queries[1])
    out.append(("fleet", _facts(union), more))
    return out


def _mono_reference(source):
    """The same workload on bare per-key engines — the paper baseline."""
    queries = [query1(), query2(), query3()]
    engines = {}
    for i, key in enumerate(_KEYS):
        engine = engines.setdefault(
            key, Webhouse(CATALOG_ALPHABET, tree_type=catalog_type())
        )
        engine.ask(source, queries[i % 3])
        engine.prepare()
    out = []
    for key in _KEYS:
        sure, more = engines[key].answer_with_caveats(queries[0])
        out.append((key, _facts(sure), more))
    merged = None
    more_any = False
    for key in sorted(engines):
        sure, more = engines[key].answer_with_caveats(queries[1])
        more_any = more_any or more
        if not sure.is_empty():
            merged = sure if merged is None else overlay(merged, sure)
    out.append(
        ("fleet", _facts(merged if merged is not None else DataTree.empty()), more_any)
    )
    return out


# -- invariance: mono vs thread vs process ------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 8])
def test_certain_answers_invariant_across_backends(tmp_path, shards):
    """Bit-for-bit identical answers on mono/thread/process — with a
    seeded fault plan and one worker kill+respawn in the mix."""
    source = _source()
    expected = _mono_reference(source)
    for backend in BACKENDS:
        store = SessionStore(str(tmp_path / f"{backend}-{shards}"))
        cluster = ShardedWebhouse(
            CATALOG_ALPHABET,
            tree_type=catalog_type(),
            shards=shards,
            backend=backend,
            store=store,
        )
        try:
            got = _drive(cluster, source, kill_one=True)
            assert got == expected, f"{backend}/{shards} diverged from mono"
            if backend == "process":
                restarts = sum(
                    row["restarts"] for row in cluster.worker_stats()
                )
                assert restarts >= 1, "the kill never forced a respawn"
        finally:
            cluster.close()


def test_in_memory_invariance_without_store():
    """No store: the backends still agree (nothing is killed here)."""
    source = _source()
    expected = _mono_reference(source)
    for backend in BACKENDS:
        cluster = ShardedWebhouse(
            CATALOG_ALPHABET, tree_type=catalog_type(), shards=2, backend=backend
        )
        try:
            assert _drive(cluster, source) == expected
        finally:
            cluster.close()


# -- exactly-once across respawn ----------------------------------------------


def test_record_deduped_across_worker_respawn(tmp_path):
    """A record retried against a respawned worker lands exactly once."""
    source = _source()
    store = SessionStore(str(tmp_path))
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET,
        tree_type=catalog_type(),
        shards=2,
        backend="process",
        store=store,
    )
    try:
        query = query1()
        answer = source.ask(query)
        cluster.record("alice", query, answer)
        shard = cluster.shard_of("alice")
        cluster.pool().kill(shard)
        # the journal acknowledged the pair before the kill; a client
        # retry of the same pair must not double-record
        cluster.record("alice", query, answer)
        info = cluster.answer_info("alice", query)
        assert info["queries_recorded"] == 1
    finally:
        cluster.close()


def test_journal_fault_absorbed_exactly_once(tmp_path):
    """An injected store fault inside the worker is retried, not doubled."""
    source = _source()
    store = SessionStore(str(tmp_path))
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET,
        tree_type=catalog_type(),
        shards=2,
        backend="process",
        store=store,
    )
    try:
        query = query1()
        answer = source.ask(query)
        plan = FaultPlan.parse("store.journal.append:error:once")
        with fault_scope(plan):
            cluster.record("bob", query, answer)
        info = cluster.answer_info("bob", query)
        assert info["queries_recorded"] == 1
    finally:
        cluster.close()


# -- context propagation across the hop ---------------------------------------


def test_trace_id_crosses_process_boundary():
    """Worker-side spans carry the caller's trace id via the envelope."""
    obs.enable(obs.RingBufferSink())
    source = _source()
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=2, backend="process"
    )
    try:
        token = set_trace_id("trace-proc-pin")
        try:
            cluster.ask("alice", source, query1())
        finally:
            reset_trace_id(token)
        shard = cluster.shard_of("alice")
        value = cluster.pool().request(shard, "spans")
        ask_spans = [
            row for row in value["spans"] if row["name"] == "worker.ask"
        ]
        assert ask_spans, f"no worker.ask span in {value['spans']}"
        assert ask_spans[-1]["trace_id"] == "trace-proc-pin"
        assert ask_spans[-1]["shard"] == shard
    finally:
        cluster.close()


def test_trace_id_crosses_thread_pool_boundary():
    """Executor.submit re-binds the caller's trace id in pool threads."""
    executor = Executor(max_workers=2)
    try:
        token = set_trace_id("trace-thread-pin")
        try:
            seen = executor.scatter([0, 1], lambda i, item: current_trace_id())
        finally:
            reset_trace_id(token)
        assert seen == ["trace-thread-pin", "trace-thread-pin"]
    finally:
        executor.shutdown()


def test_expired_deadline_refused_at_the_pool():
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=1, backend="process"
    )
    try:
        with pytest.raises(DeadlineExceeded):
            cluster.pool().request(
                0, "ping", deadline=Deadline.after(-1.0)
            )
    finally:
        cluster.close()


# -- worker lifecycle ----------------------------------------------------------


def test_hung_worker_times_out_and_respawns():
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET,
        tree_type=catalog_type(),
        shards=1,
        backend="process",
        worker_timeout_s=0.4,
    )
    try:
        pool = cluster.pool()
        with pytest.raises(WorkerUnavailable):
            pool.request(0, "sleep", {"seconds": 30})
        pool.ensure(0)
        assert pool.request(0, "ping")["pid"]
        assert pool.stats()[0]["restarts"] == 1
    finally:
        cluster.close()


def test_pool_standalone_lifecycle():
    pool = ProcWorkerPool(
        [WorkerConfig(shard=0, alphabet=("a", "b"))], request_timeout_s=10.0
    ).start()
    try:
        first = pool.request(0, "ping")["pid"]
        pool.kill(0)
        with pytest.raises(WorkerUnavailable):
            pool.request(0, "ping")
        pool.ensure(0)
        assert pool.request(0, "ping")["pid"] != first
    finally:
        pool.stop()
    # stopped pools refuse politely instead of hanging
    with pytest.raises(WorkerUnavailable):
        pool.request(0, "ping")


def test_backend_validation():
    with pytest.raises(ValueError):
        ShardedWebhouse("ab", backend="fibers")
    with pytest.raises(ValueError):
        ShardedWebhouse("ab", backend="process", factory=lambda: None)
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=1, backend="process"
    )
    try:
        assert cluster.backend == "process"
        with pytest.raises(NotImplementedError):
            cluster.engine("alice")
        with pytest.raises(NotImplementedError):
            cluster.resized(2)
    finally:
        cluster.close()
    thread_cluster = ShardedWebhouse(CATALOG_ALPHABET, shards=2)
    try:
        assert thread_cluster.backend == "thread"
        assert thread_cluster.worker_sketches() == {}
        assert thread_cluster.worker_stats() == []
        assert thread_cluster.pool() is None
    finally:
        thread_cluster.close()


# -- pushed-back books ---------------------------------------------------------


def test_worker_books_merge_into_fleet_views():
    obs.enable(obs.RingBufferSink())
    source = _source()
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=2, backend="process"
    )
    try:
        for key in _KEYS:
            cluster.ask(key, source, query1())
            cluster.answer(key, query1())
        sketches = cluster.worker_sketches()
        assert sketches["ask"].count == len(_KEYS)
        assert sketches["answer"].count == len(_KEYS)
        # worker service time is a component of the router round trip
        merged = cluster.merged_sketches()
        assert merged["ask"].count == len(_KEYS)
        rollup = cluster.stats_all()
        assert rollup["backend"] == "process"
        assert rollup["sessions"] == len(_KEYS)
        assert "worker_latency" in rollup
        assert {row["worker"]["alive"] for row in rollup["per_shard"]} == {True}
    finally:
        cluster.close()


def test_metrics_merge_counts_folds_deltas():
    metrics = Metrics()
    metrics.merge_counts({"refine.steps": 2})
    metrics.merge_counts({"refine.steps": 3, "noop": 0})
    assert metrics.value("refine.steps") == 5
    assert "noop" not in metrics.counters()


# -- the ops plane over the process backend ------------------------------------


def test_ops_server_endpoints_over_process_backend():
    obs.enable(obs.RingBufferSink())
    cluster, source = demo_cluster(shards=2, backend="process", tenants=2)
    server = OpsServer(cluster=cluster, source=source)
    try:
        status, body = drive_request(server, "/ask?q=q1&session=demo")
        assert status == 200
        document = json.loads(body)
        assert document["shard"] == cluster.shard_of("demo")
        assert document["queries_recorded"] >= 1
        status, body = drive_request(server, "/statusz")
        assert status == 200
        assert json.loads(body)["cluster"]["backend"] == "process"
        status, body = drive_request(server, "/ask?q=q2")
        assert status == 200
        assert json.loads(body)["scope"] == "fleet"
        status, body = drive_request(server, "/metrics")
        assert status == 200
        assert "repro_cluster_worker_" in body
    finally:
        server.request_log.close()
        cluster.close()


def test_proc_self_check_passes():
    ok, report = proc_self_check()
    assert ok, report
    assert report[0]["status"] == 200
