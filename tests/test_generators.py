"""Workload generator tests."""

import pytest

from repro.core.treetype import TreeType
from repro.workloads.catalog import catalog_type, generate_catalog
from repro.workloads.generators import random_history, random_ps_query, random_tree


class TestRandomTree:
    def test_satisfies_type(self):
        tt = catalog_type()
        for seed in range(5):
            tree = random_tree(tt, seed=seed)
            assert tt.satisfied_by(tree), tt.violation(tree)

    def test_deterministic(self):
        tt = catalog_type()
        assert random_tree(tt, seed=3) == random_tree(tt, seed=3)

    def test_depth_guard(self):
        tt = TreeType.parse("root: a\na -> a")
        with pytest.raises(ValueError):
            random_tree(tt, max_depth=4)


class TestRandomQuery:
    def test_well_formed(self):
        tt = catalog_type()
        for seed in range(10):
            query = random_ps_query(tt, seed=seed)
            assert query.root.label in tt.roots

    def test_evaluates_against_generated_trees(self):
        tt = catalog_type()
        tree = random_tree(tt, seed=0)
        for seed in range(10):
            query = random_ps_query(tt, seed=seed)
            query.evaluate(tree)  # must not raise

    def test_deterministic(self):
        tt = catalog_type()
        assert random_ps_query(tt, seed=5) == random_ps_query(tt, seed=5)


class TestHistories:
    def test_history_answers_match(self):
        tt = catalog_type()
        doc = generate_catalog(8, seed=1)
        history = random_history(tt, doc, n_queries=5, seed=2)
        assert len(history) == 5
        for query, answer in history:
            assert query.evaluate(doc) == answer


class TestCatalogGenerator:
    def test_type_conformance(self):
        tt = catalog_type()
        for n in (1, 10, 40):
            assert tt.satisfied_by(generate_catalog(n, seed=n))

    def test_size_scales(self):
        small = generate_catalog(5, seed=0)
        large = generate_catalog(50, seed=0)
        assert len(large) > len(small)

    def test_camera_fraction(self):
        doc = generate_catalog(60, seed=0, camera_fraction=1.0)
        subcats = {
            doc.value(n) for n in doc.node_ids() if doc.label(n) == "subcat"
        }
        assert subcats == {"camera"}
