"""ps-query structure and evaluation tests (Section 2 semantics)."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern, subtree
from repro.core.tree import DataTree, node


def doc():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("a1", "a", 5, [node("b1", "b", 1), node("c1", "c", 7)]),
                node("a2", "a", 0, [node("b2", "b", 2)]),
                node("a3", "a", 9),
            ],
        )
    )


class TestStructure:
    def test_sibling_label_clash_rejected(self):
        with pytest.raises(ValueError):
            pattern("root", children=[pattern("a"), pattern("a", Cond.eq(1))])

    def test_bar_must_be_leaf(self):
        with pytest.raises(ValueError):
            from repro.core.query import QueryNode

            QueryNode("a", Cond.true(), True, (pattern("b"),))

    def test_linear_detection(self):
        assert linear_query(["root", "a", "b"]).is_linear()
        q = PSQuery(pattern("root", children=[pattern("a"), pattern("b")]))
        assert not q.is_linear()

    def test_paths_and_subquery(self):
        q = PSQuery(pattern("root", children=[pattern("a", children=[pattern("b")])]))
        assert list(q.paths()) == [(), (0,), (0, 0)]
        assert q.subquery((0,)).root.label == "a"
        assert q.size() == 3 and q.depth() == 3

    def test_linear_query_builder(self):
        q = linear_query(["root", "a", "b"], [None, Cond.gt(0), None], extract_last=True)
        assert q.node_at((0, 0)).extract
        with pytest.raises(ValueError):
            linear_query([])
        with pytest.raises(ValueError):
            linear_query(["a"], [None, None])


class TestEvaluation:
    def test_all_matches_extracted(self):
        # every a with a b child
        q = PSQuery(pattern("root", children=[pattern("a", children=[pattern("b")])]))
        answer = q.evaluate(doc())
        ids = set(answer.node_ids())
        assert ids == {"r", "a1", "b1", "a2", "b2"}

    def test_conditions_filter(self):
        q = PSQuery(
            pattern("root", children=[pattern("a", Cond.gt(0), [pattern("b")])])
        )
        assert set(q.evaluate(doc()).node_ids()) == {"r", "a1", "b1"}

    def test_failed_branch_empties_answer(self):
        # no a has a d child, so NO valuation exists at all
        q = PSQuery(pattern("root", children=[pattern("a", children=[pattern("d")])]))
        assert q.evaluate(doc()).is_empty()

    def test_root_mismatch(self):
        q = PSQuery(pattern("catalog"))
        assert q.evaluate(doc()).is_empty()

    def test_root_condition(self):
        q = PSQuery(pattern("root", Cond.eq(1)))
        assert q.evaluate(doc()).is_empty()
        q2 = PSQuery(pattern("root", Cond.eq(0)))
        assert set(q2.evaluate(doc()).node_ids()) == {"r"}

    def test_empty_input(self):
        assert PSQuery(pattern("root")).evaluate(DataTree.empty()).is_empty()

    def test_bar_extracts_subtree(self):
        q = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        ids = set(q.evaluate(doc()).node_ids())
        assert ids == {"r", "a1", "b1", "c1"}

    def test_answer_is_prefix(self):
        q = PSQuery(pattern("root", children=[pattern("a", Cond.gt(0))]))
        answer = q.evaluate(doc())
        assert answer.is_prefix_of(doc(), relative_to=list(answer.node_ids()))

    def test_multi_branch_combination(self):
        # a>0 with b branch AND c branch: only a1 qualifies
        q = PSQuery(
            pattern(
                "root",
                children=[pattern("a", children=[pattern("b"), pattern("c")])],
            )
        )
        assert set(q.evaluate(doc()).node_ids()) == {"r", "a1", "b1", "c1"}

    def test_witness_mapping(self):
        q = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        answer, witness = q.evaluate_with_witness(doc())
        assert witness["r"] == ()
        assert witness["a1"] == (0,)
        assert witness["b1"] == (0,)  # below-bar nodes map to the bar path

    def test_fixpoint(self):
        # re-evaluating a query on its own answer returns the same answer
        q = PSQuery(pattern("root", children=[pattern("a", children=[pattern("b")])]))
        answer = q.evaluate(doc())
        assert q.evaluate(answer) == answer


class TestCatalogFigures:
    """Experiment E1: the answers in Figure 6 are reproduced exactly."""

    def test_query1_answer(self, catalog_doc, catalog_queries):
        answer = catalog_queries[1].evaluate(catalog_doc)
        products = {
            answer.value(c)
            for p in answer.children(answer.root)
            for c in answer.children(p)
            if answer.label(c) == "name"
        }
        assert products == {"Canon", "Nikon", "Sony"}
        # prices and subcategories are present
        labels = {answer.label(n) for n in answer.node_ids()}
        assert labels == {"catalog", "product", "name", "price", "cat", "subcat"}

    def test_query2_answer(self, catalog_doc, catalog_queries):
        answer = catalog_queries[2].evaluate(catalog_doc)
        products = {
            answer.value(c)
            for p in answer.children(answer.root)
            for c in answer.children(p)
            if answer.label(c) == "name"
        }
        assert products == {"Canon", "Olympus"}
        pictures = {
            answer.value(n)
            for n in answer.node_ids()
            if answer.label(n) == "picture"
        }
        assert pictures == {"c.jpg", "o.jpg"}

    def test_query3_empty_on_demo(self, catalog_doc, catalog_queries):
        # no camera under $100 with a picture in the demo data
        assert catalog_queries[3].evaluate(catalog_doc).is_empty()

    def test_query4_lists_all_cameras(self, catalog_doc, catalog_queries):
        answer = catalog_queries[4].evaluate(catalog_doc)
        names = {
            answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
        }
        assert names == {"Canon", "Nikon", "Olympus", "Leica"}

    def test_query5_expensive_cameras(self, catalog_doc, catalog_queries):
        answer = catalog_queries[5].evaluate(catalog_doc)
        names = {
            answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
        }
        assert names == {"Olympus", "Leica"}
