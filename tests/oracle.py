"""Brute-force semantics oracle, independent of the library's algorithms.

Everything here recomputes the paper's semantics *from first
principles*, deliberately avoiding every code path the perf caches
memoize (``max_bipartite_matching`` / ``feasible_assignment``, the
emptiness fixpoint, Refine, q(T)):

* membership ``tree ∈ rep(T)`` by exhaustive symbol assignment
  (:func:`oracle_member`) — atom satisfaction is plain counting once an
  assignment is fixed, so no flow/matching solver is involved;
* the prefix relation by exhaustive injective embedding
  (:func:`oracle_embeds`) — recursive child-assignment search, no Kuhn;
* ps-query evaluation by explicit valuation enumeration
  (:func:`oracle_evaluate`) — Section 2 semantics verbatim;
* bounded enumeration of rep(T) straight off the grammar
  (:func:`oracle_trees`), every emitted tree double-checked by
  :func:`oracle_member`;
* certain/possible prefixes (Theorem 2.8) and answer sets
  (Theorem 3.14) as quantifications over the enumerated set.

The enumeration is bounded (node budget, star cap, representative
values), so quantified answers are one-sided the way the existing
oracle tests are: a bounded "possible" witness is conclusive, a bounded
"certain" refutation is conclusive, and the differential tests assert
exactly those directions.  All uses should run under
``repro.perf.uncached()`` so ground truth never touches a cache.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.tree import DataTree, NodeId, NodeSpec
from repro.core.values import Value, as_value, values_equal
from repro.incomplete.incomplete_tree import IncompleteTree

#: Safety valve for the exhaustive searches (assignments / valuations).
MAX_ASSIGNMENTS = 200_000


# ---------------------------------------------------------------------------
# prefix embedding (the paper's prefix relation, by exhaustive search)
# ---------------------------------------------------------------------------


def oracle_embeds(
    prefix: DataTree, tree: DataTree, anchored: Iterable[NodeId] = ()
) -> bool:
    """Does ``prefix`` embed into ``tree`` (injective, identity on
    ``anchored``, root to root, parent-preserving, labels and values
    equal)?  Exhaustive recursive search — no matching solver."""
    anchored_set = set(anchored)
    if prefix.is_empty():
        return True
    if tree.is_empty():
        return False

    def node_ok(p: NodeId, t: NodeId) -> bool:
        if p in anchored_set and p != t:
            return False
        if t in anchored_set and p != t:
            return False
        return prefix.label(p) == tree.label(t) and values_equal(
            prefix.value(p), tree.value(t)
        )

    def assign(p: NodeId, t: NodeId) -> bool:
        if not node_ok(p, t):
            return False
        p_kids = prefix.children(p)
        if not p_kids:
            return True
        t_kids = tree.children(t)

        def place(index: int, used: Set[NodeId]) -> bool:
            if index == len(p_kids):
                return True
            for candidate in t_kids:
                if candidate in used:
                    continue
                if assign(p_kids[index], candidate):
                    if place(index + 1, used | {candidate}):
                        return True
            return False

        return place(0, set())

    return assign(prefix.root, tree.root)


# ---------------------------------------------------------------------------
# membership by exhaustive symbol assignment
# ---------------------------------------------------------------------------


def oracle_member(incomplete: IncompleteTree, tree: DataTree) -> bool:
    """``tree ∈ rep(incomplete)`` from first principles.

    Tries every assignment of type symbols to tree nodes; a fixed
    assignment satisfies a multiplicity atom iff per-entry child counts
    lie within the entry's bounds — plain counting, no flow problem.
    """
    if tree.is_empty():
        return incomplete.allows_empty
    tau = incomplete.type
    node_ids = incomplete.data_node_ids()
    nodes = list(tree.node_ids())

    candidates: List[List[str]] = []
    for n in nodes:
        label, value = tree.label(n), tree.value(n)
        options: List[str] = []
        if n in node_ids:
            if label != incomplete.data_label(n) or not values_equal(
                value, incomplete.data_value(n)
            ):
                return False
            for symbol in tau.symbols():
                if tau.sigma(symbol) == n and tau.cond(symbol).accepts(value):
                    options.append(symbol)
        else:
            for symbol in tau.symbols():
                target = tau.sigma(symbol)
                if target in node_ids:
                    continue
                if target == label and tau.cond(symbol).accepts(value):
                    options.append(symbol)
        if not options:
            return False
        candidates.append(options)

    total = 1
    for options in candidates:
        total *= len(options)
        if total > MAX_ASSIGNMENTS:
            raise ValueError(
                f"oracle_member: assignment space exceeds {MAX_ASSIGNMENTS}"
            )

    def atom_satisfied(atom, counts: Dict[str, int]) -> bool:
        entries = dict(atom.items())
        if any(symbol not in entries for symbol in counts):
            return False
        return all(
            mult.allows(counts.get(entry, 0)) for entry, mult in entries.items()
        )

    for choice in iter_product(*candidates):
        assignment = dict(zip(nodes, choice))
        if assignment[tree.root] not in tau.roots:
            continue
        ok = True
        for n in nodes:
            counts: Dict[str, int] = {}
            for child in tree.children(n):
                child_symbol = assignment[child]
                counts[child_symbol] = counts.get(child_symbol, 0) + 1
            if not any(
                atom_satisfied(atom, counts) for atom in tau.mu(assignment[n])
            ):
                ok = False
                break
        if ok:
            return True
    return False


# ---------------------------------------------------------------------------
# ps-query evaluation by explicit valuation enumeration
# ---------------------------------------------------------------------------


def oracle_evaluate(query, tree: DataTree) -> DataTree:
    """``q(T)`` per Section 2: the prefix of every node in the image of
    some valuation, plus full subtrees below matched bar nodes."""
    if tree.is_empty():
        return DataTree.empty()

    def valuations(path: Tuple[int, ...], node_id: NodeId) -> List[Dict]:
        qnode = query.node_at(path)
        if qnode.label != tree.label(node_id) or not qnode.cond.accepts(
            tree.value(node_id)
        ):
            return []
        if not qnode.children:
            return [{path: node_id}]
        per_child: List[List[Dict]] = []
        for i in range(len(qnode.children)):
            options: List[Dict] = []
            for child in tree.children(node_id):
                options.extend(valuations(path + (i,), child))
            if not options:
                return []
            per_child.append(options)
        result: List[Dict] = []
        for combo in iter_product(*per_child):
            mapping = {path: node_id}
            for sub in combo:
                mapping.update(sub)
            result.append(mapping)
            if len(result) > MAX_ASSIGNMENTS:
                raise ValueError("oracle_evaluate: too many valuations")
        return result

    mappings = valuations((), tree.root)
    if not mappings:
        return DataTree.empty()
    keep: Set[NodeId] = set()
    for mapping in mappings:
        for path, node_id in mapping.items():
            keep.add(node_id)
            if query.node_at(path).extract:
                keep.update(tree.descendants(node_id))
    # close upward (valuation images are upward-closed already, but bar
    # descendants are added wholesale; restrict() demands the closure)
    for node_id in list(keep):
        parent = tree.parent(node_id)
        while parent is not None and parent not in keep:
            keep.add(parent)
            parent = tree.parent(parent)
    return tree.restrict(keep)


# ---------------------------------------------------------------------------
# bounded enumeration of rep(T), straight off the grammar
# ---------------------------------------------------------------------------


def oracle_trees(
    incomplete: IncompleteTree,
    max_nodes: int = 5,
    extra_values: Iterable[object] = (),
    per_star_cap: int = 2,
    check_membership: bool = True,
) -> List[DataTree]:
    """All trees of ``rep(incomplete)`` up to ``max_nodes`` nodes over
    representative values, deduplicated up to fresh-id renaming.

    Independent reimplementation of the bounded-enumeration idea: a
    direct recursion over the grammar (µ, cond, σ), with ``+``/``*``
    entries capped at ``per_star_cap`` children.  With
    ``check_membership`` every produced tree is re-verified through
    :func:`oracle_member` — generation and checking must agree.
    """
    tau = incomplete.type
    node_ids = incomplete.data_node_ids()
    pivots = [as_value(v) for v in extra_values]

    options: Dict[str, List[Tuple[Optional[NodeId], str, Value]]] = {}
    for symbol in tau.symbols():
        target = tau.sigma(symbol)
        cond = tau.cond(symbol)
        opts: List[Tuple[Optional[NodeId], str, Value]] = []
        if target in node_ids:
            label = incomplete.data_label(target)
            value = incomplete.data_value(target)
            if cond.accepts(value):
                opts.append((target, label, value))
        else:
            values: List[Value] = []
            for pivot in pivots:
                if cond.accepts(pivot) and not any(
                    values_equal(pivot, v) for v in values
                ):
                    values.append(pivot)
            for sample in cond.samples(1):
                if not any(values_equal(sample, v) for v in values):
                    values.append(sample)
            opts.extend((None, target, value) for value in values)
        options[symbol] = opts

    def size(spec: NodeSpec) -> int:
        return 1 + sum(size(child) for child in spec.children)

    def subtrees(symbol: str, budget: int) -> Iterator[NodeSpec]:
        if budget <= 0 or not options[symbol]:
            return
        for atom in tau.mu(symbol):
            for forest in forests(list(atom.items()), budget - 1):
                for anchor, label, value in options[symbol]:
                    ident = anchor if anchor is not None else "\x00"
                    yield NodeSpec(ident, label, value, forest)

    def forests(entries, budget: int) -> Iterator[Tuple[NodeSpec, ...]]:
        if not entries:
            yield ()
            return
        (symbol, mult), rest = entries[0], entries[1:]
        min_rest = sum(m.min_count for _s, m in rest)
        cap = mult.max_count if mult.max_count is not None else per_star_cap
        cap = min(cap, budget - min_rest)
        for count in range(mult.min_count, cap + 1):
            for group in groups(symbol, count, budget - min_rest):
                used = sum(size(spec) for spec in group)
                for rest_forest in forests(rest, budget - used):
                    yield group + rest_forest

    def groups(symbol: str, count: int, budget: int) -> Iterator[Tuple[NodeSpec, ...]]:
        if count == 0:
            yield ()
            return
        if budget < count:
            return
        for first in subtrees(symbol, budget - (count - 1)):
            for rest in groups(symbol, count - 1, budget - size(first)):
                yield (first,) + rest

    def freshen(spec: NodeSpec) -> Optional[DataTree]:
        counter = [0]
        seen: Set[NodeId] = set()
        ok = [True]

        def walk(current: NodeSpec) -> NodeSpec:
            if current.id == "\x00":
                while True:
                    ident = f"_o{counter[0]}"
                    counter[0] += 1
                    if ident not in node_ids and ident not in seen:
                        break
            else:
                ident = current.id
                if ident in seen:
                    ok[0] = False  # one data node twice: not a tree of rep
            seen.add(ident)
            return NodeSpec(
                ident,
                current.label,
                current.value,
                tuple(walk(c) for c in current.children),
            )

        rebuilt = walk(spec)
        return DataTree.build(rebuilt) if ok[0] else None

    result: List[DataTree] = []
    seen_forms: Set[object] = set()
    if incomplete.allows_empty:
        result.append(DataTree.empty())
        seen_forms.add(oracle_canonical(DataTree.empty(), node_ids))
    for root_symbol in sorted(tau.roots):
        for spec in subtrees(root_symbol, max_nodes):
            tree = freshen(spec)
            if tree is None:
                continue
            form = oracle_canonical(tree, node_ids)
            if form in seen_forms:
                continue
            seen_forms.add(form)
            if check_membership and not oracle_member(incomplete, tree):
                raise AssertionError(
                    "oracle generated a tree its own membership checker "
                    f"rejects:\n{tree.pretty()}"
                )
            result.append(tree)
    return result


def oracle_canonical(tree: DataTree, anchored: Iterable[NodeId] = ()) -> object:
    """Hashable form identifying trees up to renaming of fresh ids."""
    anchored_set = set(anchored)
    if tree.is_empty():
        return ("empty",)

    def walk(node_id: NodeId) -> object:
        ident = node_id if node_id in anchored_set else None
        kids = tuple(sorted((walk(c) for c in tree.children(node_id)), key=repr))
        return (tree.label(node_id), tree.value(node_id), ident, kids)

    return walk(tree.root)


# ---------------------------------------------------------------------------
# Theorem 2.8 / Theorem 3.14 quantifications over the enumerated set
# ---------------------------------------------------------------------------


def oracle_possible_prefix(
    prefix: DataTree, trees: Iterable[DataTree], anchored: Iterable[NodeId]
) -> bool:
    """Bounded possible-prefix: a witness in the enumerated set."""
    anchored_list = list(anchored)
    return any(oracle_embeds(prefix, t, anchored_list) for t in trees)


def oracle_certain_prefix(
    prefix: DataTree, trees: Iterable[DataTree], anchored: Iterable[NodeId]
) -> bool:
    """Bounded certain-prefix: every enumerated tree embeds the prefix.

    (The real notion also requires rep nonempty; callers pass a
    nonempty enumeration.)"""
    anchored_list = list(anchored)
    trees = list(trees)
    return bool(trees) and all(
        oracle_embeds(prefix, t, anchored_list) for t in trees
    )


def oracle_answer_set(
    query, trees: Iterable[DataTree], anchored: Iterable[NodeId] = ()
) -> Set[object]:
    """Canonical forms of ``q(t)`` over the enumerated trees, with the
    oracle's own evaluator."""
    return {oracle_canonical(oracle_evaluate(query, t), anchored) for t in trees}


def oracle_rep_equal(
    a: IncompleteTree,
    b: IncompleteTree,
    max_nodes: int = 4,
    extra_values: Iterable[object] = (1,),
    per_star_cap: int = 2,
) -> bool:
    """Bounded rep-equality: identical enumerations up to the budget.

    Stronger than the library's ``incomplete_equivalent`` (which is
    intentionally weak when ``allows_empty`` trees carry anchored
    nodes): two incomplete trees with equal bounded enumerations and
    agreeing empty-tree behaviour are indistinguishable up to the
    budget.  Sound for refutation — unequal sets prove a genuine
    semantic difference; equality is evidence within the budget.
    """
    if a.allows_empty != b.allows_empty:
        return False
    anchored = a.data_node_ids() | b.data_node_ids()
    forms_a = {
        oracle_canonical(t, anchored)
        for t in oracle_trees(
            a, max_nodes=max_nodes, extra_values=extra_values,
            per_star_cap=per_star_cap,
        )
    }
    forms_b = {
        oracle_canonical(t, anchored)
        for t in oracle_trees(
            b, max_nodes=max_nodes, extra_values=extra_values,
            per_star_cap=per_star_cap,
        )
    }
    return forms_a == forms_b
