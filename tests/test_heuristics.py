"""Section 3.2 heuristics: probing (Prop 3.13) and lossy forgetting."""

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.refine.heuristics import forget_specializations, probing_queries
from repro.refine.refine import refine_sequence
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries


class TestProbingQueries:
    def test_one_query_per_pattern_path(self):
        q = PSQuery(
            pattern("root", children=[pattern("a", Cond.eq(1)), pattern("b")])
        )
        probes = probing_queries([q])
        # paths: root, root/a, root/b
        assert len(probes) == 3
        assert all(p.is_linear() for p in probes)
        assert all(
            p.node_at(path).cond.is_true() for p in probes for path in p.paths()
        )

    def test_size_bound(self):
        """Prop 3.13 (i)-(ii): at most Σ|q_i| probes, none larger than
        its source query."""
        history = pair_queries(4)
        queries = [q for q, _a in history]
        probes = probing_queries(queries)
        assert len(probes) <= sum(q.size() for q in queries)
        assert all(p.size() <= max(q.size() for q in queries) for p in probes)

    def test_parents_before_children(self):
        q = linear_query(["root", "a", "b"])
        probes = probing_queries([q])
        sizes = [p.size() for p in probes]
        assert sizes == sorted(sizes)

    def test_deduplication_across_queries(self):
        history = pair_queries(5)
        probes = probing_queries(q for q, _a in history)
        # all five queries share the same three label paths
        assert len(probes) == 3

    def test_probing_shrinks_blowup(self):
        """Example 3.3: with probe answers folded in, the representation
        stays polynomial (here: far below plain Refine's exponential)."""
        n = 6
        history = pair_queries(n)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        probes = [
            (p, DataTree.empty())
            for p in probing_queries(q for q, _a in history)
        ]
        # probes answered first, then the original queries
        rescued = refine_sequence(BLOWUP_ALPHABET, probes + history)
        assert rescued.size() < plain.size() / 4


class TestForgetting:
    def test_superset_of_original(self):
        history = pair_queries(3)
        exact = refine_sequence(BLOWUP_ALPHABET, history)
        lossy = forget_specializations(exact)
        assert lossy.size() < exact.size()
        # every exactly-represented tree is still represented
        probes = [
            DataTree.build(node("r", "root", 0)),
            DataTree.build(node("r", "root", 0, [node("x", "a", 9)])),
            DataTree.build(
                node("r", "root", 0, [node("x", "a", 9), node("y", "b", 7)])
            ),
        ]
        for tree in probes:
            if exact.contains(tree):
                assert lossy.contains(tree)

    def test_loses_cross_correlations(self):
        history = pair_queries(2)
        exact = refine_sequence(BLOWUP_ALPHABET, history)
        lossy = forget_specializations(exact)
        # a=1 together with b=1 violates query 1... exact knows that
        bad = DataTree.build(
            node("r", "root", 0, [node("x", "a", 1), node("y", "b", 1)])
        )
        assert not exact.contains(bad)
        # the coarse version may or may not keep it; it must keep the
        # per-label ranges though: values are unconstrained individually
        solo = DataTree.build(node("r", "root", 0, [node("x", "a", 1)]))
        assert lossy.contains(solo)

    def test_selective_labels(self):
        history = pair_queries(2)
        exact = refine_sequence(BLOWUP_ALPHABET, history)
        partially = forget_specializations(exact, labels=["a"])
        assert partially.size() <= exact.size()

    def test_preserves_data_nodes(self):
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 3)]))
        exact = refine_sequence(BLOWUP_ALPHABET, [(q, q.evaluate(src))])
        lossy = forget_specializations(exact)
        assert {"r", "x"} <= lossy.data_node_ids()
        assert lossy.contains(src)


class TestProbingFullFlow:
    """Proposition 3.13 against a real source: probes retrieve the data
    values, after which the original queries' refinement stays small
    and the knowledge still answers them exactly."""

    def test_probe_then_refine_on_live_source(self):
        from repro.core.tree import node as n
        from repro.refine.refine import consistent_with

        src = DataTree.build(
            n(
                "r",
                "root",
                0,
                [n("x1", "a", 1), n("x2", "a", 4), n("y1", "b", 2)],
            )
        )
        history = [(q, q.evaluate(src)) for q, _e in pair_queries(4)]
        probes = [
            (p, p.evaluate(src))
            for p in probing_queries(q for q, _a in history)
        ]
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        rescued = refine_sequence(BLOWUP_ALPHABET, probes + history)
        assert rescued.size() < plain.size()
        assert rescued.contains(src)
        # rescued knowledge is at least as precise: everything it admits
        # is consistent with the probe-extended history
        mutated = DataTree.build(
            n("r", "root", 0, [n("x1", "a", 1), n("x2", "a", 4)])
        )
        assert rescued.contains(mutated) == consistent_with(
            mutated, probes + history
        )

    def test_probed_knowledge_pins_all_values(self):
        from repro.core.tree import node as n

        src = DataTree.build(
            n("r", "root", 0, [n("x1", "a", 2), n("y1", "b", 2)])
        )
        history = [(q, q.evaluate(src)) for q, _e in pair_queries(3)]
        probes = [
            (p, p.evaluate(src))
            for p in probing_queries(q for q, _a in history)
        ]
        rescued = refine_sequence(BLOWUP_ALPHABET, probes + history)
        # all a/b values are data now: an extra unseen 'a' is impossible
        extra = src.with_subtree("r", n("ghost", "a", 7))
        assert not rescued.contains(extra)
