"""XML serialization round-trip tests."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import DataTree, NodeSpec, node
from repro.core.xml_io import tree_from_xml, tree_to_xml


class TestRoundTrip:
    def test_empty(self):
        assert tree_to_xml(DataTree.empty()) == "<empty/>"
        assert tree_from_xml("<empty/>").is_empty()

    def test_simple(self):
        tree = DataTree.build(
            node("r", "root", 0, [node("a1", "a", Fraction(1, 3)), node("a2", "a", "elec")])
        )
        assert tree_from_xml(tree_to_xml(tree)) == tree

    def test_string_vs_numeric_string(self):
        # the value "5" (string) round-trips as a string, not Fraction(5)
        tree = DataTree.build(node("r", "root", "5"))
        back = tree_from_xml(tree_to_xml(tree))
        assert back.value("r") == "5"
        assert isinstance(back.value("r"), str)

    def test_missing_id_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            tree_from_xml("<root value='0'/>")

    def test_catalog_demo_roundtrip(self, catalog_doc):
        assert tree_from_xml(tree_to_xml(catalog_doc)) == catalog_doc


# hypothesis: random trees round-trip

labels = st.sampled_from(["a", "b", "c"])
values = st.one_of(
    st.integers(min_value=-5, max_value=5).map(Fraction),
    st.sampled_from(["x", "y"]),
)


def specs(depth):
    ids = st.uuids().map(lambda u: f"n{u.hex[:10]}")
    if depth == 0:
        return st.builds(node, ids, labels, values)
    return st.builds(
        node,
        ids,
        labels,
        values,
        st.lists(specs(depth - 1), max_size=3),
    )


@given(specs(2))
@settings(max_examples=60, deadline=None)
def test_random_roundtrip(spec):
    try:
        tree = DataTree.build(spec)
    except ValueError:
        return  # rare duplicate ids from truncated uuids
    assert tree_from_xml(tree_to_xml(tree)) == tree
