"""Symbol minimization: rep-preserving fusion of specializations."""

import random

from repro.core.conditions import Cond
from repro.core.query import linear_query
from repro.core.tree import DataTree, node
from repro.refine.minimize import merge_equivalent_symbols
from repro.refine.refine import consistent_with, refine_sequence
from repro.workloads.blowup import (
    BLOWUP_ALPHABET,
    linear_nested_queries,
    pair_queries,
)


class TestMerge:
    def test_nested_linear_family_collapses(self):
        history = linear_nested_queries(6)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        merged = merge_equivalent_symbols(plain)
        assert merged.size() < plain.size()

    def test_rep_preserved_randomized(self):
        history = linear_nested_queries(4)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        merged = merge_equivalent_symbols(plain)
        rng = random.Random(0)
        values = [0, 5, 15, 25, 35, 45]
        for trial in range(300):
            kids = []
            for k in range(rng.randint(0, 3)):
                sub = (
                    [node(f"b{trial}_{k}", "b", rng.choice(values))]
                    if rng.random() < 0.5
                    else []
                )
                kids.append(node(f"a{trial}_{k}", "a", rng.choice(values), sub))
            tree = DataTree.build(node(f"r{trial}", "root", 0, kids))
            assert merged.contains(tree) == plain.contains(tree) == consistent_with(
                tree, history
            )

    def test_idempotent(self):
        history = linear_nested_queries(3)
        merged = merge_equivalent_symbols(refine_sequence(BLOWUP_ALPHABET, history))
        again = merge_equivalent_symbols(merged)
        assert again.size() == merged.size()

    def test_data_nodes_never_merged(self):
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        src = DataTree.build(
            node("r", "root", 0, [node("x", "a", 1), node("y", "a", 2)])
        )
        refined = refine_sequence(BLOWUP_ALPHABET, [(q, q.evaluate(src))])
        merged = merge_equivalent_symbols(refined)
        assert {"r", "x", "y"} <= merged.data_node_ids()
        assert merged.contains(src)

    def test_blowup_family_not_fully_collapsible(self):
        # Example 3.2's specializations have genuinely different rules:
        # merging must not collapse the representation to triviality
        history = pair_queries(3)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        merged = merge_equivalent_symbols(plain)
        probe_bad = DataTree.build(
            node("r", "root", 0, [node("x", "a", 2), node("y", "b", 2)])
        )
        probe_good = DataTree.build(
            node("r", "root", 0, [node("x", "a", 2), node("y", "b", 3)])
        )
        assert not merged.contains(probe_bad)
        assert merged.contains(probe_good)
