"""The live ops plane: trace context, flight recorder, HTTP server.

Covers the PR-6 acceptance criteria: concurrent clients against a
served session get per-request trace ids with no cross-thread span
parentage; ``/metrics`` passes the Prometheus validator (including
``repro_cache_*`` series); the flight recorder retains every errored
trace and dumps valid Chrome trace JSON.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
import repro.perf as perf
from repro.__main__ import main as cli_main
from repro.core.parsing import parse_query_spec
from repro.mediator.webhouse import Webhouse
from repro.obs.export import validate_chrome_trace, validate_prometheus_text
from repro.obs.sinks import NullSink
from repro.obs.spans import Span
from repro.ops import (
    FlightRecorder,
    OpsServer,
    RequestLog,
    demo_webhouse,
    hosted_webhouse,
    new_trace_id,
    request_trace,
)
from repro.store import SessionStore
from repro.workloads.catalog import CATALOG_ALPHABET, catalog_type, query1


@pytest.fixture(autouse=True)
def clean_state():
    """Pristine obs/perf state around every test."""
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    perf.disable_caches()
    perf.clear_caches()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    perf.disable_caches()
    perf.clear_caches()


def _wait_until(predicate, timeout: float = 5.0) -> None:
    """Request bookkeeping happens after the response is sent; spin
    briefly until the server side catches up."""
    deadline = time.time() + timeout
    while not predicate() and time.time() < deadline:
        time.sleep(0.01)


def _get(url: str, timeout: float = 10.0):
    """(status, headers, body-bytes), following HTTPError for 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


@pytest.fixture()
def server():
    """A live ops server over the demo catalog webhouse, obs enabled."""
    obs.enable(obs.RingBufferSink())
    perf.enable_caches()
    webhouse, source = demo_webhouse(products=4)
    srv = OpsServer(webhouse, source=source).start()
    yield srv
    srv.stop()


# -- trace context ---------------------------------------------------------------


class TestTraceContext:
    def test_new_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(200)}
        assert len(ids) == 200

    def test_trace_id_binds_and_restores(self):
        assert obs.current_trace_id() is None
        token = obs.set_trace_id("outer")
        assert obs.current_trace_id() == "outer"
        with request_trace("t") as handle:
            assert obs.current_trace_id() == handle.trace_id
            assert handle.trace_id != "outer"
        assert obs.current_trace_id() == "outer"
        obs.reset_trace_id(token)
        assert obs.current_trace_id() is None

    def test_spans_carry_the_trace_id(self):
        obs.enable(obs.RingBufferSink())
        with request_trace("ops.request") as handle:
            with obs.span("inner.work"):
                with obs.span("inner.deep"):
                    pass
        root = handle.root
        assert root is not None
        assert root.attrs["trace_id"] == handle.trace_id
        deep = root.find("inner.deep")
        assert len(deep) == 1
        assert deep[0].attrs["trace_id"] == handle.trace_id

    def test_disabled_obs_still_yields_a_trace_id(self):
        with request_trace("t") as handle:
            assert handle.root is None
            assert handle.trace_id
            handle.annotate(status=200)  # tolerated no-op
        assert not handle.errored

    def test_errored_detection_walks_the_tree(self):
        obs.enable(obs.RingBufferSink())
        with request_trace("t") as handle:
            with pytest.raises(RuntimeError):
                with obs.span("child"):
                    raise RuntimeError("boom")
        assert handle.errored
        assert handle.root.children[0].attrs["error"] == "RuntimeError"

    def test_thread_span_does_not_adopt_foreign_parent(self):
        """The satellite fix: a span opened in another thread must not
        become a child of this thread's open span."""
        obs.enable(obs.RingBufferSink())
        done = threading.Event()

        def worker() -> None:
            with obs.span("worker.span"):
                pass
            done.set()

        with obs.span("main.span") as sp:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert done.wait(1)
            # the worker's span closed while main.span was still open:
            # it must have landed as its own trace root, not as a child
            assert [c.name for c in sp.children] == []
        names = [root.name for root in obs.traces()]
        assert "worker.span" in names and "main.span" in names

    def test_concurrent_traces_do_not_share_ids_or_spans(self):
        obs.enable(obs.RingBufferSink())
        seen = {}
        barrier = threading.Barrier(4)

        def worker(tag: int) -> None:
            barrier.wait()
            with request_trace("ops.request", worker=tag) as handle:
                with obs.span("engine.step", worker=tag):
                    pass
            seen[tag] = handle

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = {h.trace_id for h in seen.values()}
        assert len(ids) == 4
        for tag, handle in seen.items():
            root = handle.root
            assert root.attrs["worker"] == tag
            assert [c.attrs["worker"] for c in root.children] == [tag]
            assert all(
                c.attrs["trace_id"] == handle.trace_id for c in root.children
            )


# -- flight recorder -------------------------------------------------------------


def _span(name: str, start: float = 0.0, **attrs) -> Span:
    s = Span(name, dict(attrs))
    s.start = start
    s.end = start + 0.001
    return s


class TestFlightRecorder:
    def test_completed_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3, errored_capacity=8)
        for i in range(10):
            recorder.record(_span(f"t{i}", start=float(i)))
        assert [r.name for r in recorder.completed()] == ["t7", "t8", "t9"]
        assert recorder.stats()["recorded"] == 10

    def test_errored_survive_completed_churn(self):
        recorder = FlightRecorder(capacity=2, errored_capacity=64)
        for i in range(5):
            recorder.record(_span(f"bad{i}", start=float(i), error="ValueError"))
        for i in range(20):
            recorder.record(_span(f"ok{i}", start=100.0 + i))
        assert len(recorder.completed()) == 2
        assert [r.name for r in recorder.errored()] == [f"bad{i}" for i in range(5)]

    def test_error_classification_scans_descendants(self):
        recorder = FlightRecorder()
        root = _span("root")
        child = _span("child", error="KeyError")
        root.children.append(child)
        recorder.record(root)
        assert [r.name for r in recorder.errored()] == ["root"]

    def test_none_root_is_a_noop(self):
        recorder = FlightRecorder()
        recorder.record(None)
        assert len(recorder) == 0

    def test_chrome_trace_dump_validates(self):
        recorder = FlightRecorder()
        recorder.record(_span("a", start=1.0))
        recorder.record(_span("b", start=2.0, error="X"))
        document = recorder.chrome_trace()
        assert validate_chrome_trace(document) == 2
        tids = {e["tid"] for e in document["traceEvents"]}
        assert len(tids) == 2  # errored traces get their own tid band
        assert document["otherData"]["retained_errored"] == "1"


# -- request log -----------------------------------------------------------------


class TestRequestLog:
    def test_ring_is_bounded_and_ordered(self):
        log = RequestLog(capacity=3)
        for i in range(6):
            log.log("GET", f"/p{i}", 200, 0.001, f"t{i}")
        recent = log.recent()
        assert [r["path"] for r in recent] == ["/p3", "/p4", "/p5"]
        assert log.logged == 6

    def test_jsonl_file_records(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = RequestLog(path=path)
        log.log("GET", "/ask", 200, 0.0042, "abc", knowledge_size=17)
        log.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["path"] == "/ask"
        assert rows[0]["status"] == 200
        assert rows[0]["trace_id"] == "abc"
        assert rows[0]["knowledge_size"] == 17
        assert rows[0]["duration_ms"] == pytest.approx(4.2)


# -- the HTTP server -------------------------------------------------------------


class TestOpsServer:
    def test_healthz_and_trace_header(self, server):
        status, headers, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == b"ok\n"
        assert headers["X-Repro-Trace-Id"]

    def test_statusz_reports_engine_and_growth(self, server):
        status, _, body = _get(server.url + "/statusz")
        assert status == 200
        document = json.loads(body)
        assert document["engine"] == "plain"
        assert isinstance(document["growth_regime"], str) and document["growth_regime"]
        assert document["webhouse"]["queries_recorded"] >= 1
        assert document["observability_enabled"] is True
        assert document["caches"]["enabled"] is True

    def test_metrics_validate_with_cache_series(self, server):
        # drive at least one cached code path through the engine first,
        # then wait for its post-response bookkeeping to land
        _get(server.url + "/ask?q=q1")
        _wait_until(lambda: obs.STATE.metrics.value("ops.http.requests") >= 1)
        status, _, body = _get(server.url + "/metrics")
        assert status == 200
        samples = validate_prometheus_text(body.decode("utf-8"))
        cache_series = [n for n in samples if n.startswith("repro_cache_")]
        assert cache_series, "no repro_cache_* series exposed"
        assert samples["repro_cache_enabled"] == 1.0
        assert "repro_ops_http_requests_total" in samples
        assert "repro_ops_uptime_seconds" in samples

    def test_ask_local_and_fetch(self, server):
        status, headers, body = _get(server.url + "/ask?q=q1")
        assert status == 200
        document = json.loads(body)
        assert document["mode"] == "local"
        assert document["sure_nodes"] >= 1
        assert isinstance(document["may_have_more"], bool)
        recorded = document["queries_recorded"]
        status, _, body = _get(server.url + "/ask?q=q2&mode=fetch")
        assert status == 200
        fetched = json.loads(body)
        assert fetched["queries_recorded"] == recorded + 1

    def test_ask_path_query(self, server):
        status, _, body = _get(
            server.url + "/ask?q=catalog/product/price%5B%3C300%5D"
        )
        assert status == 200
        assert json.loads(body)["query"] == "catalog/product/price[<300]"

    def test_bad_query_is_400_with_trace_id(self, server):
        status, headers, body = _get(server.url + "/ask?q=%5Bnope")
        assert status == 400
        assert headers["X-Repro-Trace-Id"]
        assert "bad query" in json.loads(body)["error"]

    def test_unknown_endpoint_is_404(self, server):
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_profile_endpoint(self, server):
        _get(server.url + "/ask?q=q1")
        _wait_until(lambda: any(r.name == "ops.request" for r in obs.traces()))
        status, _, body = _get(server.url + "/profile")
        assert status == 200
        document = json.loads(body)
        assert document["roots"] >= 1
        assert any(name.startswith("ops.request") for name in document["by_name"])

    def test_flightrecorder_dump_validates(self, server):
        _get(server.url + "/ask?q=q1")
        _get(server.url + "/ask?q=%5Bbad")  # one errored trace
        _wait_until(
            lambda: len(server.recorder.errored()) >= 1
            and len(server.recorder.roots()) >= 2
        )
        status, _, body = _get(server.url + "/debug/flightrecorder")
        assert status == 200
        document = json.loads(body)
        assert validate_chrome_trace(document) >= 2
        assert int(document["otherData"]["retained_errored"]) >= 1

    def test_request_log_endpoint_carries_knowledge_size(self, server):
        _get(server.url + "/ask?q=q1")
        _wait_until(
            lambda: any(r["path"] == "/ask" for r in server.request_log.recent())
        )
        status, _, body = _get(server.url + "/debug/requests")
        assert status == 200
        rows = json.loads(body)["requests"]
        asks = [r for r in rows if r["path"] == "/ask"]
        assert asks and asks[-1]["knowledge_size"] >= 1
        assert asks[-1]["trace_id"]

    def test_every_errored_trace_is_retained(self):
        obs.enable(obs.RingBufferSink())
        webhouse, source = demo_webhouse(products=3)
        recorder = FlightRecorder(capacity=2, errored_capacity=256)
        srv = OpsServer(webhouse, source=source, recorder=recorder).start()
        try:
            for _ in range(12):
                status, _, _ = _get(srv.url + "/ask?q=%5Bbad")
                assert status == 400
            for _ in range(8):
                _get(srv.url + "/healthz")
            _wait_until(lambda: recorder.stats()["recorded"] >= 20)
        finally:
            srv.stop()
        stats = recorder.stats()
        assert stats["retained_errored"] == 12  # none evicted by healthy churn
        assert stats["retained_completed"] == 2  # completed ring stayed bounded

    def test_concurrent_load_unique_traces_no_cross_parentage(self, server):
        """The acceptance load test: >=4 threaded clients, per-request
        trace ids, no span adopted across threads."""
        results = []
        lock = threading.Lock()

        def client(worker: int) -> None:
            rows = []
            for i in range(6):
                endpoint = "/ask?q=q1" if (worker + i) % 2 else "/metrics"
                status, headers, _ = _get(server.url + endpoint)
                rows.append((status, headers["X-Repro-Trace-Id"]))
            with lock:
                results.extend(rows)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 30
        assert all(status == 200 for status, _ in results)
        trace_ids = [tid for _, tid in results]
        assert len(set(trace_ids)) == 30
        _wait_until(lambda: len(server.recorder.roots()) >= 30)
        roots = server.recorder.roots()
        assert len(roots) >= 30
        for root in roots:
            expected = root.attrs.get("trace_id")
            stack = [root]
            while stack:
                node = stack.pop()
                assert node.attrs.get("trace_id") == expected
                stack.extend(node.children)

    def test_server_requires_start_before_address(self):
        webhouse, source = demo_webhouse(products=3)
        srv = OpsServer(webhouse, source=source)
        with pytest.raises(RuntimeError):
            srv.url


# -- durable-session hosting ------------------------------------------------------


class TestHostedSessions:
    def test_source_hint_roundtrip(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = store.create(
            "svc",
            CATALOG_ALPHABET,
            tree_type=catalog_type(),
            extra={"workload": {"name": "catalog", "products": 5, "seed": 7}},
        )
        webhouse = Webhouse(CATALOG_ALPHABET, tree_type=catalog_type())
        webhouse.attach(session)
        assert webhouse.source_hint() == {
            "name": "catalog",
            "products": 5,
            "seed": 7,
        }
        webhouse.detach()
        assert webhouse.source_hint() == {}

    def test_hosted_webhouse_serves_a_named_session(self, tmp_path):
        store = SessionStore(str(tmp_path))
        store.create(
            "svc",
            CATALOG_ALPHABET,
            tree_type=catalog_type(),
            extra={"workload": {"name": "catalog", "products": 4, "seed": 4}},
        ).close()
        webhouse, source = hosted_webhouse(store, "svc")
        try:
            webhouse.ask(source, query1())
            srv = OpsServer(
                webhouse, source=source, store=store, session_name="svc"
            ).start()
            try:
                status, _, body = _get(srv.url + "/ask?q=q1")
                assert status == 200
                assert json.loads(body)["knowledge_size"] >= 1
                status, _, body = _get(srv.url + "/sessions")
                document = json.loads(body)
                assert document["hosted"] == "svc"
                names = [row["name"] for row in document["sessions"]]
                assert "svc" in names
                row = document["sessions"][names.index("svc")]
                assert row["locked"] is True  # we hold the writer lock
                assert row["workload"]["products"] == 4
            finally:
                srv.stop()
        finally:
            webhouse.detach()

    def test_store_peek_needs_no_lock(self, tmp_path):
        store = SessionStore(str(tmp_path))
        store.create("idle", CATALOG_ALPHABET).close()
        row = store.peek("idle")
        assert row["name"] == "idle"
        assert row["locked"] is False
        assert row["snapshots"] == 0
        # peeking never created or stole a lock
        assert store.open("idle").close() is None


# -- prometheus cache mirroring ---------------------------------------------------


class TestPrometheusCacheSeries:
    def test_cache_counters_exported_and_deduplicated(self):
        """Counters come from the perf books; the obs mirror counters
        (cache.*) must not produce duplicate families."""
        obs.enable(obs.RingBufferSink())  # so LRUCache mirrors into obs too
        with perf.cached():
            from repro.refine.refine import refine_sequence
            from repro.workloads.catalog import demo_catalog

            doc = demo_catalog()
            history = [(query1(), query1().evaluate(doc))]
            refine_sequence(CATALOG_ALPHABET, history)
            refine_sequence(CATALOG_ALPHABET, history)  # repeat -> cache hits
        text = obs.prometheus_text()
        samples = validate_prometheus_text(text)  # raises on duplicates
        assert samples["repro_cache_refine_hits_total"] >= 1
        assert "repro_cache_refine_misses_total" in samples
        assert "repro_cache_refine_size" in samples

    def test_include_caches_false_restores_old_shape(self):
        obs.STATE.metrics.inc("some.counter")
        text = obs.prometheus_text(include_caches=False)
        samples = validate_prometheus_text(text)
        assert not any(n.startswith("repro_cache_") for n in samples)
        assert samples["repro_some_counter_total"] == 1.0

    def test_gauges_are_exported(self):
        obs.STATE.metrics.set_gauge("ops.demo_gauge", 12.5)
        samples = validate_prometheus_text(obs.prometheus_text())
        assert samples["repro_ops_demo_gauge"] == 12.5


# -- CLI -------------------------------------------------------------------------


class TestServeCli:
    def test_serve_once_self_checks_every_endpoint(self, capsys):
        code = cli_main(["repro", "serve", "--once", "--products", "4"])
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert code == 0
        assert document["ok"] is True
        probed = {row["endpoint"] for row in document["probes"]}
        assert {"/healthz", "/statusz", "/metrics", "/ask?q=q1"} <= probed
        assert all(row["trace_id"] for row in document["probes"])

    def test_serve_rejects_unknown_flags(self, capsys):
        assert cli_main(["repro", "serve", "--bogus"]) == 2

    def test_serve_missing_session_fails_cleanly(self, tmp_path, capsys):
        code = cli_main(
            ["repro", "serve", "--once", "--session", "ghost", "--root", str(tmp_path)]
        )
        assert code == 1
        assert "ghost" in capsys.readouterr().err


# -- always-on telemetry: SLOs, sampling, quantile series -------------------------


class TestAlwaysOnTelemetry:
    def test_slo_endpoint_shape(self, server):
        _get(server.url + "/ask?q=q1")
        _wait_until(lambda: server.request_log.logged >= 1)
        status, _, body = _get(server.url + "/slo")
        assert status == 200
        document = json.loads(body)
        names = {o["name"] for o in document["slo"]["objectives"]}
        assert {"availability-99.9", "latency-99"} <= names
        assert document["degrade_on_burn"] is False
        assert document["sampler"]["head_rate"] == 1.0
        assert "all" in document["latency"]
        assert document["latency"]["all"]["count"] >= 1

    def test_debug_error_injects_5xx(self, server):
        status, headers, body = _get(server.url + "/debug/error")
        assert status == 500
        assert headers["X-Repro-Trace-Id"]
        assert "induced" in json.loads(body)["error"]
        status, _, _ = _get(server.url + "/debug/error?status=503")
        assert status == 503
        status, _, _ = _get(server.url + "/debug/error?status=404")
        assert status == 400  # only 5xx can be injected
        status, _, _ = _get(server.url + "/debug/error?status=oops")
        assert status == 400

    def test_metrics_quantile_and_exemplar_series(self, server):
        for _ in range(3):
            _get(server.url + "/ask?q=q1")
        _get(server.url + "/debug/error")
        _wait_until(lambda: server.request_log.logged >= 4)
        status, _, body = _get(server.url + "/metrics")
        assert status == 200
        samples = validate_prometheus_text(body.decode("utf-8"))
        # whole-stream quantile summaries from the request-log sketches
        assert samples['repro_http_all_latency_seconds{quantile="0.5"}'] >= 0.0
        assert samples["repro_http_all_latency_seconds_count"] >= 4
        assert samples["repro_http_ask_latency_seconds_count"] >= 3
        # exemplar series link quantiles to concrete trace ids
        exemplars = [
            n for n in samples if n.startswith("repro_http_exemplar_seconds{")
        ]
        assert any('kind="slowest"' in n for n in exemplars)
        assert any('kind="last_error"' in n for n in exemplars)
        assert all("trace_id=" in n for n in exemplars)
        # sampler and SLO books
        assert samples["repro_trace_sampler_kept_total"] >= 1
        assert 'repro_slo_burning{objective="latency-99"}' in samples

    def test_telemetry_survives_obs_disabled(self):
        """The PR-8 posture: sketches, sampler and SLO books run even
        with span collection off."""
        from repro.ops.server import drive_request

        assert not obs.STATE.enabled
        webhouse, source = demo_webhouse(products=3)
        srv = OpsServer(webhouse, source=source)
        for _ in range(3):
            status, _ = drive_request(srv, "/ask?q=q1")
            assert status == 200
        status, body = drive_request(srv, "/slo")
        assert status == 200
        document = json.loads(body)
        availability = next(
            o
            for o in document["slo"]["objectives"]
            if o["name"] == "availability-99.9"
        )
        assert availability["lifetime"]["good"] >= 3
        assert document["latency"]["/ask"]["count"] == 3
        assert srv.sampler.stats()["kept"] >= 3

    def test_flight_recorder_keep_reasons(self, server):
        _get(server.url + "/ask?q=q1")
        _get(server.url + "/ask?q=%5Bbad")  # errored -> always kept
        _wait_until(lambda: server.recorder.stats()["recorded"] >= 2)
        stats = server.recorder.stats()
        assert stats["recorded_by_reason"].get("head", 0) >= 1
        assert stats["recorded_by_reason"].get("error", 0) >= 1
        assert all("keep" in root.attrs for root in server.recorder.roots())

    def test_head_rate_zero_keeps_only_tail_matches(self):
        obs.enable(obs.RingBufferSink())
        webhouse, source = demo_webhouse(products=3)
        srv = OpsServer(webhouse, source=source, head_rate=0.0).start()
        try:
            for _ in range(5):
                _get(srv.url + "/healthz")
            _get(srv.url + "/ask?q=%5Bbad")
            _wait_until(lambda: srv.sampler.stats()["dropped"] >= 5)
        finally:
            srv.stop()
        stats = srv.sampler.stats()
        assert stats["dropped"] >= 5  # healthy fast traffic not recorded
        assert stats["by_reason"].get("error", 0) >= 1
        recorder = srv.recorder.stats()
        assert recorder["recorded"] == recorder["recorded_errored"]

    def test_degrade_on_burn_applies_remedy(self):
        """A burning latency SLO applies its paper remedy to the engine."""
        from repro.obs.slo import KIND_LATENCY, Objective, SloEngine
        from repro.ops.server import drive_request

        webhouse, source = demo_webhouse(products=3)
        engine = SloEngine(
            # every request is slower than a nanosecond: burns immediately
            objectives=[
                Objective("lat", KIND_LATENCY, 0.99, threshold_s=1e-9)
            ],
        )
        srv = OpsServer(
            webhouse, source=source, slo=engine, degrade_on_burn=True
        )
        for _ in range(15):
            drive_request(srv, "/ask?q=q1")
        assert srv.remedies_applied == ["lossy"]
        _, body = drive_request(srv, "/slo")
        assert json.loads(body)["remedies_applied"] == ["lossy"]

    def test_histogram_summary_carries_sketch_quantiles(self):
        obs.enable(obs.RingBufferSink())
        for i in range(1, 101):
            obs.STATE.metrics.observe("demo.series", i / 100.0)
        summary = obs.STATE.metrics.histograms()["demo.series"]
        assert "recent" in summary  # the PR-1 window survives
        quantiles = summary["quantiles"]
        assert quantiles["p50"] == pytest.approx(0.5, rel=0.03)
        assert quantiles["p99"] == pytest.approx(0.99, rel=0.03)
        assert obs.STATE.metrics.quantile("demo.series", 0.5) == pytest.approx(
            0.5, rel=0.03
        )


class TestParseQuerySpec:
    def test_path_with_condition(self):
        query = parse_query_spec("catalog/product/price[<300]")
        assert query.root.label == "catalog"
        leaf = query.root.children[0].children[0]
        assert leaf.label == "price"

    def test_named_map_wins(self):
        query = parse_query_spec("q1", named={"q1": query1})
        assert query == query1()

    def test_bar_must_be_leaf(self):
        with pytest.raises(ValueError):
            parse_query_spec("~a/b")
