"""The cluster wire codec: round-trips, torn frames, envelopes.

Mirrors the PR 9 torn-journal discipline at the wire layer: a frame
truncated at ANY byte offset, a flipped bit anywhere, bad magic, or a
length/CRC disagreement must raise a clean :class:`WireError` — never a
struct/JSON error and never a silent misdecode.  Hypothesis drives the
round-trip properties over arbitrary JSON documents and over real paper
objects (random trees/queries rendered through ``store.codec``), and
pins that equal documents produce **byte-identical** frames — the
determinism the process backend's request/response framing relies on.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    WireError,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    read_frame,
    request_envelope,
    response_envelope,
    write_frame,
)
from repro.core.treetype import TreeType
from repro.store.codec import query_to_json, tree_from_json, tree_to_json
from repro.workloads.generators import random_ps_query, random_tree

SCHEMAS = [
    TreeType.parse("root: r\nr -> a* b?\na -> c*\nb -> c?"),
    TreeType.parse("root: r\nr -> a+\na -> b* c?"),
]

#: JSON documents the canonical encoder accepts (no NaN/Infinity — the
#: codec's canonical_dumps uses allow_nan=False).
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


# -- frame round trips ---------------------------------------------------------


@given(document=_json_values)
@settings(max_examples=100, deadline=None)
def test_roundtrip_arbitrary_json(document):
    frame = encode_frame(document)
    assert decode_frame(frame) == document


@given(document=_json_values)
@settings(max_examples=60, deadline=None)
def test_reencode_is_byte_identical(document):
    """Equal documents frame identically: encode∘decode∘encode is stable."""
    frame = encode_frame(document)
    assert encode_frame(decode_frame(frame)) == frame


@given(
    schema_index=st.integers(min_value=0, max_value=1),
    doc_seed=st.integers(min_value=0, max_value=200),
    q_seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_paper_objects(schema_index, doc_seed, q_seed):
    """Random answers/queries survive the wire byte-identically."""
    tt = SCHEMAS[schema_index]
    tree = random_tree(tt, seed=doc_seed, max_depth=4)
    query = random_ps_query(tt, seed=q_seed, max_depth=3)
    document = {"answer": tree_to_json(tree), "query": query_to_json(query)}
    frame = encode_frame(document)
    decoded = decode_frame(frame)
    assert encode_frame(decoded) == frame
    rebuilt = tree_from_json(decoded["answer"])
    assert tree_to_json(rebuilt) == tree_to_json(tree)


# -- corruption ----------------------------------------------------------------


@given(
    document=_json_values,
    cut=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_truncation_at_any_byte_raises(document, cut):
    """A frame cut at any byte offset fails loudly, like a torn journal."""
    frame = encode_frame(document)
    cut = cut % len(frame)  # every offset strictly inside the frame
    with pytest.raises(WireError):
        decode_frame(frame[:cut])


def test_truncation_exhaustive_small_frame():
    """Every single truncation offset of one real frame, no sampling."""
    frame = encode_frame({"op": "ask", "seq": 3})
    for cut in range(len(frame)):
        with pytest.raises(WireError):
            decode_frame(frame[:cut])


@given(
    document=_json_values,
    position=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=100, deadline=None)
def test_bitflip_anywhere_raises(document, position, flip):
    frame = bytearray(encode_frame(document))
    position %= len(frame)
    frame[position] ^= flip
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_trailing_garbage_raises():
    frame = encode_frame({"a": 1})
    with pytest.raises(WireError):
        decode_frame(frame + b"x")


def test_bad_magic_raises():
    frame = bytearray(encode_frame({"a": 1}))
    frame[:4] = b"NOPE"
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_oversized_declared_length_raises():
    import struct
    import zlib

    payload = b"{}"
    header = struct.pack(">4sII", MAGIC, MAX_PAYLOAD + 1, zlib.crc32(payload))
    with pytest.raises(WireError):
        decode_frame(header + payload)


def test_unserializable_payload_raises():
    with pytest.raises(WireError):
        encode_frame({"bad": object()})


def test_errors_are_wire_errors_never_struct_or_json():
    """The taxonomy promise: corruption is always WireError (a ValueError
    subclass), so callers need exactly one except clause."""
    assert issubclass(WireError, ValueError)
    frame = encode_frame([1, 2, 3])
    for evil in (b"", frame[:5], frame[:-1], frame + b"!", b"\x00" * 40):
        with pytest.raises(WireError):
            decode_frame(evil)


# -- streams -------------------------------------------------------------------


def test_stream_roundtrip_many_frames():
    stream = io.BytesIO()
    documents = [{"seq": i, "payload": "x" * i} for i in range(10)]
    for document in documents:
        write_frame(stream, document)
    stream.seek(0)
    assert [read_frame(stream) for _ in documents] == documents
    assert read_frame(stream) is None  # clean EOF at a frame boundary


def test_stream_torn_mid_payload_raises():
    stream = io.BytesIO()
    write_frame(stream, {"k": "v" * 50})
    torn = io.BytesIO(stream.getvalue()[:-3])
    with pytest.raises(WireError):
        read_frame(torn)


def test_stream_torn_mid_header_raises():
    stream = io.BytesIO()
    write_frame(stream, {"k": 1})
    torn = io.BytesIO(stream.getvalue()[: HEADER_SIZE - 2])
    with pytest.raises(WireError):
        read_frame(torn)


# -- envelopes -----------------------------------------------------------------


def test_request_envelope_roundtrip_carries_context():
    envelope = request_envelope(
        7,
        "ask",
        {"key": "alice"},
        trace_id="t-123",
        deadline_s=1.5,
        fault_plan="store.journal.append:error:once",
    )
    decoded = decode_request(decode_frame(encode_frame(envelope)))
    assert decoded["seq"] == 7
    assert decoded["op"] == "ask"
    assert decoded["trace_id"] == "t-123"
    assert decoded["deadline_s"] == 1.5
    assert decoded["fault_plan"] == "store.journal.append:error:once"


def test_response_envelope_value_xor_error():
    with pytest.raises(WireError):
        response_envelope(1, value={"x": 1}, error={"type": "E", "message": "m"})


def test_response_envelope_roundtrip_with_books():
    envelope = response_envelope(
        3, value={"n": 2}, books={"counters": {"refine.steps": 4}}
    )
    decoded = decode_response(decode_frame(encode_frame(envelope)))
    assert decoded["ok"] is True
    assert decoded["value"] == {"n": 2}
    assert decoded["books"]["counters"]["refine.steps"] == 4


def test_decode_request_rejects_malformed():
    for bad in (
        [],
        {"kind": "resp", "seq": 1},
        {"kind": "req", "seq": "one", "op": "ask", "args": {}},
        {"kind": "req", "seq": 1, "op": "", "args": {}},
        {"kind": "req", "seq": 1, "op": "ask", "args": []},
    ):
        with pytest.raises(WireError):
            decode_request(bad)


def test_decode_response_rejects_malformed():
    for bad in (
        {"kind": "req", "seq": 1},
        {"kind": "resp", "seq": 1, "ok": "yes", "books": {}},
        {"kind": "resp", "seq": 1, "ok": False, "error": None, "books": {}},
        {"kind": "resp", "seq": 1, "ok": True, "value": 1, "books": None},
    ):
        with pytest.raises(WireError):
            decode_response(bad)
