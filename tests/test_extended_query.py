"""Extended pattern queries (Section 4): branching, optional, negated,
joins."""

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.extensions.extended_query import (
    ExtendedQuery,
    VarConstraint,
    enode,
    negated,
    optional,
)


def doc():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("a1", "a", 1, [node("b1", "b", 1)]),
                node("a2", "a", 2, [node("b2", "b", 2), node("c2", "c", 9)]),
                node("a3", "a", 1),
            ],
        )
    )


class TestBranching:
    def test_same_label_siblings(self):
        # one 'a' with value 1 AND one with value 2 must both exist
        q = ExtendedQuery(
            enode("root", children=[enode("a", Cond.eq(1)), enode("a", Cond.eq(2))])
        )
        answer = q.evaluate(doc())
        labels = {answer.label(n) for n in answer.node_ids()}
        assert labels == {"root", "a"}
        values = {answer.value(n) for n in answer.node_ids() if answer.label(n) == "a"}
        assert values == {1, 2}

    def test_branching_failure(self):
        q = ExtendedQuery(
            enode("root", children=[enode("a", Cond.eq(1)), enode("a", Cond.eq(7))])
        )
        assert q.evaluate(doc()).is_empty()

    def test_non_injective_valuations_allowed(self):
        # both branches can map to the same node
        q = ExtendedQuery(
            enode("root", children=[enode("a", Cond.gt(0)), enode("a", Cond.lt(10))])
        )
        assert q.matches(doc())


class TestOptional:
    def test_optional_extends_answer(self):
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", Cond.eq(2)),
                    optional(enode("a", Cond.eq(1), children=[enode("b")])),
                ],
            )
        )
        answer = q.evaluate(doc())
        ids = set(answer.node_ids())
        assert "a2" in ids
        assert "a1" in ids and "b1" in ids  # optional matched and included

    def test_optional_absence_tolerated(self):
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", Cond.eq(2)),
                    optional(enode("a", Cond.eq(777))),
                ],
            )
        )
        answer = q.evaluate(doc())
        assert "a2" in set(answer.node_ids())

    def test_required_version_still_fails(self):
        q = ExtendedQuery(enode("root", children=[enode("a", Cond.eq(777))]))
        assert q.evaluate(doc()).is_empty()


class TestNegation:
    def test_negated_subtree_blocks(self):
        # no 'a' with a c child may exist -> fails on doc (a2 has c2)
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", Cond.eq(1)),
                    negated(enode("a", children=[enode("c")])),
                ],
            )
        )
        assert q.evaluate(doc()).is_empty()

    def test_negation_passes_when_absent(self):
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", Cond.eq(1)),
                    negated(enode("a", Cond.eq(777))),
                ],
            )
        )
        assert q.matches(doc())

    def test_negation_with_binding(self):
        # some a whose value X has no sibling b with the same value X
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", var="X"),
                    negated(enode("b", var="X")),
                ],
            )
        )
        # wait: b's are grandchildren here; adapt: use a flat doc
        flat = DataTree.build(
            node(
                "r",
                "root",
                0,
                [node("x", "a", 1), node("y", "b", 1), node("z", "a", 5)],
            )
        )
        assert q.matches(flat)  # a=5 has no b=5
        flat2 = DataTree.build(
            node("r", "root", 0, [node("x", "a", 1), node("y", "b", 1)])
        )
        assert not q.matches(flat2)


class TestJoins:
    def test_variable_equality_across_branches(self):
        # an a and a b (grand)child sharing a value
        q = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("a", var="X"),
                    enode("a", children=[enode("b", var="X")]),
                ],
            )
        )
        assert q.matches(doc())  # a1 value 1, b1 value 1

    def test_constraint_inequality(self):
        q = ExtendedQuery(
            enode(
                "root",
                children=[enode("a", var="X"), enode("a", var="Y")],
            ),
            [VarConstraint("X", "!=", "Y")],
        )
        assert q.matches(doc())
        single = DataTree.build(node("r", "root", 0, [node("x", "a", 1)]))
        assert not q.matches(single)

    def test_same_var_same_node_reuse(self):
        q = ExtendedQuery(
            enode("root", children=[enode("a", var="X"), enode("a", var="X")])
        )
        assert q.matches(doc())

    def test_unsatisfiable_join(self):
        q = ExtendedQuery(
            enode(
                "root",
                children=[enode("a", Cond.eq(1), var="X"), enode("c", var="X")],
            )
        )
        assert not q.matches(doc())

    def test_empty_input(self):
        q = ExtendedQuery(enode("root"))
        assert q.evaluate(DataTree.empty()).is_empty()
