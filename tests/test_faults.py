"""The fault-injection plane: plans, scopes, injection sites, live ops.

Covers the PR-9 plumbing: spec round-trips and deterministic triggers
(:mod:`repro.faults.plan`), context-scoped arming
(:mod:`repro.faults.inject`), the store-layer injection sites (torn /
corrupt / fsync journal appends, damaged snapshot writes) together with
the recovery they force, and the ops server's ``/debug/faults``
live-plan endpoint.  The end-to-end seeded schedules live in
``tests/test_chaos.py``.
"""

from __future__ import annotations

import json
import os
import random

import pytest

import repro.obs as obs
from repro.faults.inject import (
    FaultInjected,
    active_plan,
    armed,
    check_site,
    fault_scope,
)
from repro.faults.plan import DEFAULT_STALL_MS, FaultError, FaultPlan, FaultRule
from repro.incomplete.certainty import incomplete_equivalent
from repro.mediator.webhouse import Webhouse
from repro.obs.sinks import NullSink
from repro.ops import OpsServer, demo_webhouse
from repro.ops.server import drive_request
from repro.refine.refine import refine_sequence
from repro.store import Journal, SessionStore, StoreError, latest_snapshot, write_snapshot
from repro.store.snapshot import SnapshotError
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
)


@pytest.fixture(autouse=True)
def clean_state():
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()


def full_alphabet():
    return sorted(set(CATALOG_ALPHABET) | set(catalog_type().alphabet))


# -- plan specs ------------------------------------------------------------------


class TestFaultPlanSpec:
    def test_rule_spec_round_trip(self):
        specs = [
            "store.journal.append:error",
            "store.journal.append:torn:p=0.25:frac=0.75",
            "store.snapshot.write:corrupt:nth=3",
            "ops.request:status:once:status=503",
            "cluster.task.0:stall:ms=150",
            "cluster.task.*:latency:p=0.5:ms=5",
        ]
        for spec in specs:
            rule = FaultRule.parse(spec)
            assert rule.spec() == spec
            assert FaultRule.parse(rule.spec()) == rule

    def test_plan_spec_round_trip(self):
        spec = "seed=42;store.journal.append:torn:p=0.3;ops.request:status:nth=2"
        plan = FaultPlan.parse(spec)
        assert plan.spec() == spec
        assert plan.seed == 42 and len(plan) == 2
        again = FaultPlan.parse(plan.spec())
        assert again.spec() == plan.spec()

    def test_bad_specs_raise(self):
        for bad in (
            "",
            ";;",
            "siteonly",
            "site:notaneffect",
            "site:error:p=2.0",
            "site:error:nth=0",
            "site:latency:ms=-1",
            "site:status:status=42",
            "site:torn:frac=1.5",
            "site:error:bogus=1",
            "seed=x;site:error",
        ):
            with pytest.raises(FaultError):
                FaultPlan.parse(bad)

    def test_nth_trigger_fires_exactly_once(self):
        plan = FaultPlan.parse("s:torn:nth=3")
        fired = [plan.decide("s") for _ in range(6)]
        assert [f is not None for f in fired] == [False, False, True, False, False, False]
        assert plan.fires() == 1

    def test_once_trigger(self):
        plan = FaultPlan.parse("s:torn:once")
        assert plan.decide("s") is not None
        assert all(plan.decide("s") is None for _ in range(5))

    def test_probability_trigger_is_seed_deterministic(self):
        plan = FaultPlan.parse("seed=7;s:torn:p=0.4")
        first = [plan.decide("s") is not None for _ in range(50)]
        plan.reset()
        second = [plan.decide("s") is not None for _ in range(50)]
        assert first == second and any(first) and not all(first)
        # a different seed draws a different stream
        other = FaultPlan.parse("seed=8;s:torn:p=0.4")
        assert [other.decide("s") is not None for _ in range(50)] != first

    def test_wildcard_site_matching(self):
        plan = FaultPlan.parse("cluster.task.*:error")
        assert plan.decide("store.journal.append") is None
        with pytest.raises(FaultInjected):
            with fault_scope(plan):
                check_site("cluster.task.3")

    def test_stats_count_checks_and_fires(self):
        plan = FaultPlan.parse("s:torn:nth=2;s:fsync")
        plan.decide("s")  # rule 1 misses (nth=2), rule 2 fires
        plan.decide("s")  # rule 1 fires first; rule 2 still counts the check
        stats = plan.stats()
        assert [s["checks"] for s in stats] == [2, 2]
        assert [s["fires"] for s in stats] == [1, 1]
        assert plan.fires() == 2


# -- scoping and effects ---------------------------------------------------------


class TestFaultScope:
    def test_disarmed_is_inert(self):
        assert not armed()
        assert active_plan() is None
        assert check_site("anything") is None

    def test_scope_arms_and_restores(self):
        plan = FaultPlan.parse("s:error")
        with fault_scope(plan):
            assert armed() and active_plan() is plan
        assert not armed() and active_plan() is None

    def test_none_scope_is_a_noop(self):
        with fault_scope(None):
            assert not armed()

    def test_nested_scopes_innermost_wins(self):
        outer = FaultPlan.parse("a:error")
        inner = FaultPlan.parse("b:error")
        with fault_scope(outer):
            with fault_scope(inner):
                assert active_plan() is inner
                assert check_site("a") is None  # outer plan is shadowed
            assert active_plan() is outer
            assert armed()

    def test_error_effect_raises(self):
        with fault_scope(FaultPlan.parse("s:error")):
            with pytest.raises(FaultInjected) as err:
                check_site("s")
        assert err.value.site == "s" and err.value.effect == "error"

    def test_latency_and_stall_sleep(self):
        slept = []
        with fault_scope(FaultPlan.parse("s:latency:ms=12;t:stall")):
            assert check_site("s", sleep=slept.append) is None
            assert check_site("t", sleep=slept.append) is None
        assert slept == [0.012, DEFAULT_STALL_MS / 1000.0]

    def test_data_effects_are_returned(self):
        with fault_scope(FaultPlan.parse("s:torn:frac=0.25")):
            fault = check_site("s")
        assert fault is not None
        assert fault.effect == "torn" and fault.fraction == 0.25


# -- journal injection sites -----------------------------------------------------


class TestJournalInjection:
    def _journal_with_one(self, tmp_path) -> str:
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1})
        return path

    def test_error_fires_before_the_write(self, tmp_path):
        path = self._journal_with_one(tmp_path)
        journal = Journal(path)
        size = os.path.getsize(path)
        with fault_scope(FaultPlan.parse("store.journal.append:error")):
            with pytest.raises(FaultInjected):
                journal.append({"n": 2})
        assert os.path.getsize(path) == size  # nothing touched: safe to retry
        journal.append({"n": 2})
        journal.close()
        assert [e["n"] for e in Journal(path).events()] == [1, 2]

    @pytest.mark.parametrize("frac", [0.1, 0.5, 0.9])
    def test_torn_append_loses_only_the_tail(self, tmp_path, frac):
        path = self._journal_with_one(tmp_path)
        journal = Journal(path)
        with fault_scope(FaultPlan.parse(f"store.journal.append:torn:frac={frac}")):
            with pytest.raises(FaultInjected):
                journal.append({"n": 2})
        # the handle is closed (crash semantics) ...
        from repro.store.journal import JournalError

        with pytest.raises(JournalError):
            journal.append({"n": 3})
        # ... and recovery keeps exactly the acknowledged prefix
        recovered = Journal(path)
        assert [e["n"] for e in recovered.events()] == [1]
        assert recovered.append({"n": 3}) == 2
        recovered.close()

    def test_corrupt_append_is_dropped_on_recovery(self, tmp_path):
        path = self._journal_with_one(tmp_path)
        journal = Journal(path)
        with fault_scope(FaultPlan.parse("store.journal.append:corrupt")):
            with pytest.raises(FaultInjected):
                journal.append({"n": 2})
        assert [e["n"] for e in Journal(path).events()] == [1]

    def test_fsync_crash_persists_the_unacknowledged_record(self, tmp_path):
        path = self._journal_with_one(tmp_path)
        journal = Journal(path)
        with fault_scope(FaultPlan.parse("store.journal.append:fsync")):
            with pytest.raises(FaultInjected):
                journal.append({"n": 2})
        # the record reached disk even though the append never returned
        assert [e["n"] for e in Journal(path).events()] == [1, 2]


# -- snapshot injection sites ----------------------------------------------------


class TestSnapshotInjection:
    def _state_and_history(self):
        history = [(query1(), query1().evaluate(demo_catalog()))]
        return refine_sequence(full_alphabet(), history), history

    @pytest.mark.parametrize("effect", ["torn", "corrupt"])
    def test_damaged_write_raises_and_leaves_nothing(self, tmp_path, effect):
        state, history = self._state_and_history()
        with fault_scope(FaultPlan.parse(f"store.snapshot.write:{effect}")):
            with pytest.raises(SnapshotError):
                write_snapshot(str(tmp_path), 5, state, history)
        assert os.listdir(str(tmp_path)) == []  # no snapshot, no temp litter
        assert latest_snapshot(str(tmp_path)) is None

    def test_recheckpoint_cannot_clobber_a_good_snapshot(self, tmp_path):
        """The regression the chaos suite found: a re-checkpoint at an
        already-snapshotted seq lands on the *same filename*; promoting
        unverified bytes would destroy the only copy of records the
        journal has compacted away."""
        state, history = self._state_and_history()
        write_snapshot(str(tmp_path), 5, state, history)
        good = latest_snapshot(str(tmp_path))
        assert good is not None
        with fault_scope(FaultPlan.parse("store.snapshot.write:torn:frac=0.8")):
            with pytest.raises(SnapshotError):
                write_snapshot(str(tmp_path), 5, state, history)
        survived = latest_snapshot(str(tmp_path))
        assert survived is not None and survived[0] == 5
        assert incomplete_equivalent(survived[1], good[1])

    def test_session_converts_snapshot_failure_to_store_error(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = store.create("s", full_alphabet(), tree_type=catalog_type())
        wh = Webhouse(full_alphabet(), tree_type=catalog_type())
        wh.attach(session)
        try:
            wh.record(query1(), query1().evaluate(demo_catalog()))
            with fault_scope(FaultPlan.parse("store.snapshot.write:corrupt")):
                with pytest.raises(StoreError):
                    wh.checkpoint()
            wh.checkpoint()  # disarmed: succeeds, nothing was lost
        finally:
            wh.detach()


# -- session-level recovery ------------------------------------------------------


class TestSessionRecovery:
    def test_torn_record_recovers_to_acknowledged_prefix(self, tmp_path):
        """One focused slice of the chaos invariant: a torn append loses
        at most the in-flight pair, and the resumed knowledge is
        equivalent to a fault-free replay of the recovered history."""
        alphabet = full_alphabet()
        store = SessionStore(str(tmp_path))
        session = store.create("s", alphabet, tree_type=catalog_type())
        wh = Webhouse(alphabet, tree_type=catalog_type())
        wh.attach(session)
        first = (query1(), query1().evaluate(demo_catalog()))
        second = (query2(), query2().evaluate(demo_catalog()))
        wh.record(*first)
        with fault_scope(FaultPlan.parse("store.journal.append:torn:frac=0.3")):
            with pytest.raises((FaultInjected, StoreError)):
                wh.record(*second)
        # abandon the handle (simulated crash; the same-pid stale lock
        # is broken on resume) and recover from disk
        resumed = Webhouse.resume(store, "s")
        try:
            assert list(resumed.history) == [first]
            reference = refine_sequence(
                alphabet, resumed.history, tree_type=catalog_type()
            )
            assert incomplete_equivalent(resumed.knowledge, reference)
            resumed.record(*second)  # the retry lands cleanly
            assert list(resumed.history) == [first, second]
        finally:
            resumed.detach()


# -- ops server ------------------------------------------------------------------


class TestOpsFaults:
    def _server(self, **kwargs) -> OpsServer:
        webhouse, source = demo_webhouse(products=3)
        return OpsServer(webhouse, source=source, **kwargs)

    def test_debug_faults_reports_disarmed(self):
        srv = self._server()
        status, body = drive_request(srv, "/debug/faults")
        assert status == 200
        document = json.loads(body)
        assert document == {"armed": False, "plan": None, "rules": [], "fires": 0}

    def test_install_observe_reset_disarm(self):
        srv = self._server()
        spec = "ops.request:status:nth=2:status=503"
        status, body = drive_request(srv, f"/debug/faults?plan={spec}")
        assert status == 200 and json.loads(body)["plan"] == spec
        # next dispatched request is check #1 (misses), the one after
        # that is check #2 and eats the injected 503
        status, _ = drive_request(srv, "/ask?q=q1")
        assert status == 200
        status, body = drive_request(srv, "/ask?q=q1")
        assert status == 503 and "injected fault" in body
        status, body = drive_request(srv, "/debug/faults")
        assert json.loads(body)["fires"] == 1
        status, body = drive_request(srv, "/debug/faults?reset=1")
        assert json.loads(body)["fires"] == 0
        status, body = drive_request(srv, "/debug/faults?disarm=1")
        assert json.loads(body) == {"armed": False, "plan": None, "rules": [], "fires": 0}
        status, _ = drive_request(srv, "/ask?q=q1")
        assert status == 200

    def test_bad_plan_is_a_400(self):
        srv = self._server()
        status, body = drive_request(srv, "/debug/faults?plan=nonsense")
        assert status == 400 and "bad fault plan" in body
        assert srv.fault_plan is None

    def test_injected_errors_feed_the_slo_books(self):
        """An injected 5xx is a real failed request as far as the
        always-on telemetry is concerned: availability burns."""
        plan = FaultPlan.parse("ops.request:status:status=500:p=1")
        srv = self._server(fault_plan=plan)
        for _ in range(4):
            status, _ = drive_request(srv, "/ask?q=q1")
            assert status == 500
        srv.fault_plan = None  # disarm so /slo itself answers
        status, body = drive_request(srv, "/slo")
        assert status == 200
        availability = next(
            o
            for o in json.loads(body)["slo"]["objectives"]
            if o["name"].startswith("availability")
        )
        assert availability["lifetime"]["bad"] >= 4

    def test_latency_injection_shows_in_request_latency(self):
        plan = FaultPlan.parse("ops.request:latency:ms=30:nth=1")
        srv = self._server(fault_plan=plan)
        status, _ = drive_request(srv, "/ask?q=q1")
        assert status == 200  # latency delays, it does not fail
        status, body = drive_request(srv, "/slo")
        latency = json.loads(body)["latency"]["/ask"]
        assert latency["count"] >= 1 and latency["max"] >= 0.03
