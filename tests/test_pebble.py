"""k-pebble automata/transducers (Section 4, Theorems 4.2/4.3)."""

import pytest

from repro.extensions.binary_encoding import Bin, bin_node, nil
from repro.extensions.pebble import (
    DOWN_LEFT,
    DOWN_RIGHT,
    LIFT,
    PLACE,
    UP_LEFT,
    UP_RIGHT,
    Move,
    Out0,
    Out2,
    PebbleAutomaton,
    PebbleTransducer,
    product,
)


def reach_automaton(target_label: str) -> PebbleAutomaton:
    """Nondeterministic search automaton accepting trees containing
    ``target_label``.  Finding the label places a second pebble to move
    into the accepting state (any applicable move would do)."""
    transitions = {}
    for label in ("a", "b", "#"):
        moves = []
        if label == target_label:
            moves.append(Move(PLACE, "yes"))
        if label != "#":
            moves.append(Move(DOWN_LEFT, "scan"))
            moves.append(Move(DOWN_RIGHT, "scan"))
        transitions[("scan", label, frozenset())] = tuple(moves)
    return PebbleAutomaton(2, "scan", ["yes"], transitions)


def tree_ab() -> Bin:
    return Bin("a", Bin("b", nil(), nil()), Bin("a", nil(), nil()))


def tree_a_only() -> Bin:
    return Bin("a", Bin("a", nil(), nil()), nil())


class TestAutomaton:
    def test_label_search_accepts(self):
        automaton = reach_automaton("b")
        assert automaton.accepts(tree_ab())

    def test_label_search_rejects(self):
        automaton = reach_automaton("b")
        assert not automaton.accepts(tree_a_only())

    def test_navigation_directions(self):
        # accept iff root.left.right is labeled 'b'
        transitions = {
            ("start", "a", frozenset()): (Move(DOWN_LEFT, "atL"),),
            ("atL", "a", frozenset()): (Move(DOWN_RIGHT, "atLR"),),
            ("atLR", "b", frozenset()): (Move(UP_RIGHT, "yes"),),
        }
        automaton = PebbleAutomaton(1, "start", ["yes"], transitions)
        good = Bin("a", Bin("a", nil(), Bin("b", nil(), nil())), nil())
        bad = Bin("a", Bin("a", Bin("b", nil(), nil()), nil()), nil())
        assert automaton.accepts(good)
        assert not automaton.accepts(bad)

    def test_up_direction_checks_side(self):
        transitions = {
            ("start", "a", frozenset()): (Move(DOWN_LEFT, "down"),),
            # up-right from a left child must fail; up-left succeeds
            ("down", "b", frozenset()): (Move(UP_RIGHT, "yes"),),
        }
        automaton = PebbleAutomaton(1, "start", ["yes"], transitions)
        tree = Bin("a", Bin("b", nil(), nil()), nil())
        assert not automaton.accepts(tree)
        transitions[("down", "b", frozenset())] = (Move(UP_LEFT, "yes"),)
        automaton2 = PebbleAutomaton(1, "start", ["yes"], transitions)
        assert automaton2.accepts(tree)

    def test_pebble_stack_discipline(self):
        # place a second pebble, see it under the head, lift it again
        transitions = {
            ("start", "a", frozenset()): (Move(PLACE, "placed"),),
            ("placed", "a", frozenset([1])): (Move(LIFT, "lifted"),),
            ("lifted", "a", frozenset()): (Move(PLACE, "yes"),),
        }
        automaton = PebbleAutomaton(2, "start", ["yes"], transitions)
        assert automaton.accepts(Bin("a", nil(), nil()))

    def test_place_beyond_k_fails(self):
        transitions = {
            ("start", "a", frozenset()): (Move(PLACE, "yes"),),
        }
        automaton = PebbleAutomaton(1, "start", ["yes"], transitions)
        assert not automaton.accepts(Bin("a", nil(), nil()))

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            PebbleAutomaton(0, "s", [], {})


class TestProduct:
    def test_intersection_semantics(self):
        has_b = reach_automaton("b")
        has_a = reach_automaton("a")
        both = product(has_a, has_b)
        assert both.accepts(tree_ab())
        assert not both.accepts(tree_a_only())

    def test_bounded_search(self):
        has_b = reach_automaton("b")
        witness = has_b.find_accepted(["a", "b"], max_nodes=2)
        assert witness is not None
        assert has_b.accepts(witness)
        assert "b" in witness.labels()

    def test_bounded_search_no_witness(self):
        # accepting state unreachable: empty within any bound
        automaton = PebbleAutomaton(1, "start", ["yes"], {})
        assert automaton.find_accepted(["a"], max_nodes=3) is None

    def test_product_bounded_search(self):
        both = product(reach_automaton("a"), reach_automaton("b"))
        witness = both.find_accepted(["a", "b"], max_nodes=3)
        assert witness is not None
        assert {"a", "b"} <= witness.labels()


class TestTransducer:
    def test_relabeling_transducer(self):
        # copy the tree, renaming a->x, b->y
        rename = {"a": "x", "b": "y"}
        transitions = {}
        for label in ("a", "b"):
            transitions[("copy", label, frozenset())] = Out2(
                rename[label], "left", "right"
            )
            transitions[("left", label, frozenset())] = Move(DOWN_LEFT, "copy")
            transitions[("right", label, frozenset())] = Move(DOWN_RIGHT, "copy")
        transitions[("copy", "#", frozenset())] = Out0("#")
        # left/right branches that land on nil need to emit too
        for state in ("left", "right"):
            transitions[(state, "#", frozenset())] = Out0("#")
        transducer = PebbleTransducer(1, "copy", transitions)
        result = transducer.run(tree_ab())
        assert result is not None
        assert result.label == "x"
        assert result.left.label == "y"

    def test_failing_run(self):
        transducer = PebbleTransducer(1, "copy", {})
        assert transducer.run(tree_ab()) is None

    def test_constant_output(self):
        transitions = {("s", "a", frozenset()): Out0("done")}
        transducer = PebbleTransducer(1, "s", transitions)
        out = transducer.run(Bin("a", nil(), nil()))
        assert out is not None and out.label == "done"


class TestHistoryMaintenance:
    """Theorem 4.2: the inputs consistent with a transducer query/answer
    history form a maintained, intersectable acceptor."""

    def _copy_transducer(self):
        transitions = {}
        for label in ("a", "b"):
            transitions[("copy", label, frozenset())] = Out2(label, "left", "right")
            transitions[("left", label, frozenset())] = Move(DOWN_LEFT, "copy")
            transitions[("right", label, frozenset())] = Move(DOWN_RIGHT, "copy")
        for state in ("copy", "left", "right"):
            transitions[(state, "#", frozenset())] = Out0("#")
        return PebbleTransducer(1, "copy", transitions)

    def _any_tree_automaton(self):
        transitions = {}
        for label in ("a", "b", "#"):
            transitions[("start", label, frozenset())] = (Move(PLACE, "ok"),)
        return PebbleAutomaton(2, "start", ["ok"], transitions)

    def test_inverse_image_membership(self):
        from repro.extensions.pebble import InverseImageAcceptor

        identity = self._copy_transducer()
        answer = tree_ab()
        acceptor = InverseImageAcceptor(identity, answer)
        assert acceptor.accepts(tree_ab())
        assert not acceptor.accepts(tree_a_only())

    def test_history_acceptor_incremental(self):
        from repro.extensions.pebble import history_acceptor

        identity = self._copy_transducer()
        history = [(identity, tree_ab())]
        maintained = history_acceptor(self._any_tree_automaton(), history)
        assert maintained.accepts(tree_ab())
        assert not maintained.accepts(tree_a_only())
        # adding a contradictory pair empties the language
        history2 = history + [(identity, tree_a_only())]
        maintained2 = history_acceptor(self._any_tree_automaton(), history2)
        assert not maintained2.accepts(tree_ab())
        assert not maintained2.accepts(tree_a_only())

    def test_representation_linear_in_history(self):
        from repro.extensions.pebble import history_acceptor

        identity = self._copy_transducer()
        history = [(identity, tree_ab())] * 5
        maintained = history_acceptor(self._any_tree_automaton(), history)
        assert len(maintained.components) == 6
