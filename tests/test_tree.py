"""Data tree tests: structure, prefix relation, merging."""

import pytest

from repro.core.tree import DataTree, IdFactory, node


def t_small():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [node("a1", "a", 1, [node("b1", "b", 2)]), node("a2", "a", 3)],
        )
    )


class TestConstruction:
    def test_empty(self):
        empty = DataTree.empty()
        assert empty.is_empty()
        assert len(empty) == 0
        with pytest.raises(ValueError):
            _ = empty.root

    def test_build_and_accessors(self):
        tree = t_small()
        assert tree.root == "r"
        assert tree.label("a1") == "a"
        assert tree.value("a2") == 3
        assert tree.parent("b1") == "a1"
        assert tree.parent("r") is None
        assert tree.children("r") == ("a1", "a2")
        assert len(tree) == 4
        assert tree.depth() == 3

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            DataTree.build(node("r", "root", 0, [node("r", "a", 1)]))

    def test_preorder(self):
        assert list(t_small().node_ids()) == ["r", "a1", "b1", "a2"]

    def test_path_to(self):
        assert t_small().path_to("b1") == ("r", "a1", "b1")

    def test_labels(self):
        assert t_small().labels() == {"root", "a", "b"}


class TestDerivedTrees:
    def test_subtree(self):
        sub = t_small().subtree("a1")
        assert sub.root == "a1"
        assert len(sub) == 2
        assert sub.parent("a1") is None

    def test_restrict_to_prefix(self):
        tree = t_small()
        restricted = tree.restrict(["r", "a2"])
        assert len(restricted) == 2
        assert restricted.children("r") == ("a2",)

    def test_restrict_requires_upward_closure(self):
        with pytest.raises(ValueError):
            t_small().restrict(["r", "b1"])

    def test_restrict_without_root_rejected(self):
        with pytest.raises(ValueError):
            t_small().restrict(["a1", "b1"])

    def test_with_subtree(self):
        grown = t_small().with_subtree("a2", node("c1", "c", 9))
        assert grown.parent("c1") == "a2"
        assert len(grown) == 5
        # original untouched (immutability)
        assert len(t_small()) == 4

    def test_with_subtree_id_clash(self):
        with pytest.raises(ValueError):
            t_small().with_subtree("a2", node("a1", "c", 9))


class TestMerge:
    def test_merge_prefixes(self):
        left = DataTree.build(node("r", "root", 0, [node("a1", "a", 1)]))
        right = DataTree.build(node("r", "root", 0, [node("a2", "a", 3)]))
        merged = left.merged_with(right)
        assert set(merged.children("r")) == {"a1", "a2"}

    def test_merge_shared_nodes(self):
        left = DataTree.build(node("r", "root", 0, [node("a1", "a", 1)]))
        right = DataTree.build(
            node("r", "root", 0, [node("a1", "a", 1, [node("b1", "b", 2)])])
        )
        merged = left.merged_with(right)
        assert merged.children("a1") == ("b1",)

    def test_merge_conflict_rejected(self):
        left = DataTree.build(node("r", "root", 0, [node("a1", "a", 1)]))
        right = DataTree.build(node("r", "root", 0, [node("a1", "a", 2)]))
        with pytest.raises(ValueError):
            left.merged_with(right)

    def test_merge_with_empty(self):
        tree = t_small()
        assert DataTree.empty().merged_with(tree) == tree
        assert tree.merged_with(DataTree.empty()) == tree


class TestPrefixRelation:
    def test_empty_is_prefix_of_everything(self):
        assert DataTree.empty().is_prefix_of(t_small())

    def test_nothing_nonempty_prefixes_empty(self):
        assert not t_small().is_prefix_of(DataTree.empty())

    def test_identity(self):
        assert t_small().is_prefix_of(t_small())

    def test_sub_prefix_with_fresh_ids(self):
        # same shape, different ids: embeds when not anchored
        prefix = DataTree.build(node("q", "root", 0, [node("x", "a", 3)]))
        assert prefix.is_prefix_of(t_small())

    def test_anchored_ids_must_coincide(self):
        prefix = DataTree.build(node("r", "root", 0, [node("a9", "a", 3)]))
        assert prefix.is_prefix_of(t_small(), relative_to=["r"])
        # anchor a9: no node a9 in the target
        assert not prefix.is_prefix_of(t_small(), relative_to=["r", "a9"])

    def test_values_matter(self):
        prefix = DataTree.build(node("q", "root", 0, [node("x", "a", 99)]))
        assert not prefix.is_prefix_of(t_small())

    def test_injectivity(self):
        # two a=1 children cannot both map onto the single a1
        prefix = DataTree.build(
            node("q", "root", 0, [node("x", "a", 1), node("y", "a", 1)])
        )
        assert not prefix.is_prefix_of(t_small())

    def test_branching_matching(self):
        target = DataTree.build(
            node(
                "r",
                "root",
                0,
                [
                    node("a1", "a", 1, [node("b1", "b", 1)]),
                    node("a2", "a", 1, [node("b2", "b", 2)]),
                ],
            )
        )
        # needs a1 for the b=1 branch and a2 for the b=2 branch
        prefix = DataTree.build(
            node(
                "q",
                "root",
                0,
                [
                    node("x", "a", 1, [node("xb", "b", 2)]),
                    node("y", "a", 1, [node("yb", "b", 1)]),
                ],
            )
        )
        assert prefix.is_prefix_of(target)

    def test_isomorphic(self):
        one = DataTree.build(node("r", "root", 0, [node("a", "a", 1)]))
        two = DataTree.build(node("s", "root", 0, [node("b", "a", 1)]))
        assert one.isomorphic_to(two)
        assert not one.isomorphic_to(t_small())


class TestIdFactory:
    def test_fresh_avoids_taken(self):
        factory = IdFactory(taken=["n0", "n2"])
        assert factory.fresh() == "n1"
        assert factory.fresh() == "n3"

    def test_reserve(self):
        factory = IdFactory()
        factory.reserve("n0")
        assert factory.fresh() == "n1"
