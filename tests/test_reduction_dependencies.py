"""Experiment E13 — Theorem 4.5: q_φ(T) = ∅ ⟺ T ⊨ φ for FDs and INDs."""

import random

import pytest

from repro.reductions.dependencies import (
    FD,
    IND,
    encode_relation,
    fd_query,
    ind_query,
    query_for,
    relation_tree_type,
    satisfies,
)


class TestEncoding:
    def test_relation_tree_satisfies_type(self):
        relation = [(1, 2), (3, 4)]
        tree = encode_relation(relation, 2)
        assert relation_tree_type(2).satisfied_by(tree)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_relation([(1, 2, 3)], 2)

    def test_ind_arity_check(self):
        with pytest.raises(ValueError):
            IND((1, 2), (1,))


class TestFD:
    def test_violation_detected(self):
        # A1 -> A2 violated: (1,2) and (1,3)
        relation = [(1, 2), (1, 3)]
        tree = encode_relation(relation, 2)
        q = fd_query(FD((1,), 2))
        assert q.matches(tree)
        assert not satisfies(relation, FD((1,), 2))

    def test_satisfaction(self):
        relation = [(1, 2), (3, 2), (1, 2)]
        tree = encode_relation(relation, 2)
        q = fd_query(FD((1,), 2))
        assert not q.matches(tree)
        assert satisfies(relation, FD((1,), 2))

    def test_composite_lhs(self):
        fd = FD((1, 2), 3)
        good = [(1, 1, 5), (1, 2, 6), (2, 1, 7)]
        bad = good + [(1, 1, 9)]
        assert not fd_query(fd).matches(encode_relation(good, 3))
        assert fd_query(fd).matches(encode_relation(bad, 3))


class TestIND:
    def test_violation_detected(self):
        # R[A1] ⊆ R[A2] fails: value 9 in A1 never appears in A2
        relation = [(9, 1), (1, 1)]
        tree = encode_relation(relation, 2)
        q = ind_query(IND((1,), (2,)))
        assert q.matches(tree)
        assert not satisfies(relation, IND((1,), (2,)))

    def test_satisfaction(self):
        relation = [(1, 1), (1, 2), (2, 1)]
        tree = encode_relation(relation, 2)
        q = ind_query(IND((1,), (2,)))
        assert not q.matches(tree)
        assert satisfies(relation, IND((1,), (2,)))

    def test_multi_column(self):
        ind = IND((1, 2), (2, 3))
        good = [(1, 1, 1), (2, 2, 2)]
        assert satisfies(good, ind)
        assert not ind_query(ind).matches(encode_relation(good, 3))
        bad = [(1, 2, 0)]
        assert not satisfies(bad, ind)
        assert ind_query(ind).matches(encode_relation(bad, 3))


class TestRandomizedEquivalence:
    """The reduction invariant on random relations: emptiness of q_φ is
    exactly satisfaction of φ."""

    @pytest.mark.parametrize("seed", range(4))
    def test_fd(self, seed):
        rng = random.Random(seed)
        fd = FD((1,), 2)
        q = query_for(fd)
        for _ in range(20):
            relation = [
                (rng.randint(0, 2), rng.randint(0, 2))
                for _row in range(rng.randint(0, 4))
            ]
            tree = encode_relation(relation, 2)
            assert q.matches(tree) == (not satisfies(relation, fd)), relation

    @pytest.mark.parametrize("seed", range(4))
    def test_ind(self, seed):
        rng = random.Random(100 + seed)
        ind = IND((1,), (2,))
        q = query_for(ind)
        for _ in range(20):
            relation = [
                (rng.randint(0, 2), rng.randint(0, 2))
                for _row in range(rng.randint(0, 4))
            ]
            tree = encode_relation(relation, 2)
            assert q.matches(tree) == (not satisfies(relation, ind)), relation

    def test_query_for_rejects_unknown(self):
        with pytest.raises(TypeError):
            query_for("not a dependency")
        with pytest.raises(TypeError):
            satisfies([], "nope")
