"""Construction queries (Section 4): Skolem heads over pattern bodies."""

import pytest

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.extensions.construct import ConstructionQuery, head
from repro.extensions.extended_query import ExtendedQuery, enode


def doc():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("c1", "c", 0, [node("x1", "x", 1), node("y1", "y", 10)]),
                node("c2", "c", 0, [node("x2", "x", 2)]),
                node("c3", "c", 0, [node("y3", "y", 10)]),
            ],
        )
    )


class TestPaperCountingExample:
    """The body binds X to x-values and Y to y-values; the head emits one
    a per X and one b per Y — the language whose answers have equal
    counts cannot be captured by incomplete trees."""

    def build_query(self):
        body = ExtendedQuery(
            enode(
                "root",
                children=[
                    enode("c", children=[enode("x", var="X")]),
                    enode("c", children=[enode("y", var="Y")]),
                ],
            )
        )
        return ConstructionQuery(
            body,
            head(
                "root",
                "root",
                children=[
                    head("a", "f", args=["X"], value_var="X"),
                    head("b", "g", args=["Y"], value_var="Y"),
                ],
            ),
        )

    def test_bindings_enumerated(self):
        q = self.build_query()
        bindings = q.bindings(doc())
        xs = {b["X"] for b in bindings}
        ys = {b["Y"] for b in bindings}
        assert xs == {1, 2}
        assert ys == {10}

    def test_skolem_identification(self):
        q = self.build_query()
        answer = q.evaluate(doc())
        a_nodes = [n for n in answer.node_ids() if answer.label(n) == "a"]
        b_nodes = [n for n in answer.node_ids() if answer.label(n) == "b"]
        # one a per distinct X (2), one b per distinct Y (1)
        assert len(a_nodes) == 2
        assert len(b_nodes) == 1
        values = {answer.value(n) for n in a_nodes}
        assert values == {1, 2}

    def test_empty_body_empty_answer(self):
        q = self.build_query()
        empty_doc = DataTree.build(node("r", "root", 0))
        assert q.evaluate(empty_doc).is_empty()


class TestHeadMechanics:
    def test_nested_head(self):
        body = ExtendedQuery(
            enode("root", children=[enode("c", children=[enode("x", var="X")])])
        )
        q = ConstructionQuery(
            body,
            head(
                "out",
                "out",
                children=[
                    head(
                        "group",
                        "g",
                        args=["X"],
                        children=[head("value", "v", args=["X"], value_var="X")],
                    )
                ],
            ),
        )
        answer = q.evaluate(doc())
        groups = [n for n in answer.node_ids() if answer.label(n) == "group"]
        assert len(groups) == 2
        for g in groups:
            assert len(answer.children(g)) == 1

    def test_value_default_zero(self):
        body = ExtendedQuery(enode("root", var="R"))
        q = ConstructionQuery(body, head("out", "out"))
        answer = q.evaluate(doc())
        assert answer.value(answer.root) == 0

    def test_non_constant_root_rejected(self):
        body = ExtendedQuery(
            enode("root", children=[enode("c", children=[enode("x", var="X")])])
        )
        q = ConstructionQuery(body, head("out", "out", args=["X"]))
        with pytest.raises(ValueError):
            q.evaluate(doc())
