"""Differential suite: brute-force oracle vs the library, cached vs not.

Two layers:

* fast smoke tests (unmarked) — curated instances, run on every
  ``pytest`` invocation;
* the full randomized sweep (``@pytest.mark.oracle``, deselected by the
  default ``-m "not oracle"`` addopts) — scaled by the
  ``REPRO_ORACLE_INSTANCES`` environment variable (CI runs 200).

All checks are *one-sided* where the oracle's enumeration is bounded:
the oracle may miss witnesses beyond its budget but never invents them,
so an oracle witness forces the library's "possible" and a library
"certain" forces every enumerated tree (see tests/test_certainty.py for
the original statement of this methodology).  Cache-on vs cache-off runs
must agree *exactly* (up to ``incomplete_equivalent``) — no bounds.
"""

from __future__ import annotations

import os
import random

import pytest

import repro.perf as perf
from tests.oracle import (
    oracle_answer_set,
    oracle_canonical,
    oracle_certain_prefix,
    oracle_embeds,
    oracle_evaluate,
    oracle_member,
    oracle_possible_prefix,
    oracle_rep_equal,
    oracle_trees,
)
from repro.core.conditions import Cond
from repro.core.matching import feasible_assignment, max_bipartite_matching
from repro.core.query import PSQuery, pattern, subtree
from repro.core.treetype import TreeType
from repro.incomplete.certainty import (
    certain_prefix,
    incomplete_equivalent,
    possible_prefix,
)
from repro.incomplete.enumerate import enumerate_trees
from repro.answering.query_incomplete import query_incomplete
from repro.refine.minimize import merge_equivalent_symbols
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.generators import random_history, random_ps_query, random_tree

#: Full-sweep size; CI exports REPRO_ORACLE_INSTANCES=200.
FULL_INSTANCES = int(os.environ.get("REPRO_ORACLE_INSTANCES", "40"))
#: Smoke-sweep size (runs in the default, oracle-deselected profile).
SMOKE_INSTANCES = 6

#: Small source types for randomized instances (kept tiny: the oracle
#: enumerates rep(T) exhaustively).
SOURCE_TYPES = [
    TreeType.parse(
        """
        root: r
        r -> a* b?
        a -> c*
        """
    ),
    TreeType.parse(
        """
        root: r
        r -> a+ d?
        a -> b? c*
        """
    ),
    TreeType.parse(
        """
        root: catalog
        catalog -> product*
        product -> name price?
        """
    ),
]


def _instance(seed: int):
    """A random (tree type, document, history, incomplete tree) tuple.

    Built entirely uncached so the resulting incomplete tree is the
    ground-truth baseline for cached comparisons.
    """
    rng = random.Random(seed)
    tt = SOURCE_TYPES[seed % len(SOURCE_TYPES)]
    doc = random_tree(tt, seed=rng, max_depth=4, max_children_per_entry=2,
                      values=(0, 1, 5))
    history = random_history(
        tt, doc, n_queries=2, seed=rng, max_depth=3, values=(0, 1, 5)
    )
    with perf.uncached():
        inc = refine_sequence(sorted(tt.alphabet), history, tree_type=tt)
    return tt, doc, history, inc


def _prefix_candidates(tree):
    """A few upward-closed restrictions of ``tree`` to use as prefixes."""
    if tree.is_empty():
        return []
    root = tree.root
    candidates = [tree.restrict([root]), tree]
    kids = tree.children(root)
    if kids:
        candidates.append(tree.restrict([root, kids[0]]))
    return candidates


def _assert_equiv(a, b, context) -> None:
    """Cached and uncached results must represent the same tree set.

    ``incomplete_equivalent`` is the library's (deliberately weak)
    check; where it cannot certify — ``allows_empty`` trees carrying
    anchored nodes — fall back to comparing bounded oracle
    enumerations, which is reflexive and refutation-sound.
    """
    with perf.uncached():
        if incomplete_equivalent(a, b):
            return
        assert oracle_rep_equal(a, b), context


def _bounded_oracle_trees(incomplete, **kwargs):
    kwargs.setdefault("max_nodes", 5)
    kwargs.setdefault("extra_values", (1,))
    with perf.uncached():
        return oracle_trees(incomplete, **kwargs)


# ---------------------------------------------------------------------------
# smoke layer: curated instances, always on
# ---------------------------------------------------------------------------


class TestOracleAgainstLibrary:
    def test_membership_agrees_both_ways(self, example_2_2):
        incomplete, _ = example_2_2
        trees = _bounded_oracle_trees(incomplete)
        assert trees, "oracle found no member trees for Example 2.2"
        with perf.uncached():
            for t in trees:
                assert incomplete.contains(t), t.pretty()
            # and the library's own enumeration must pass the oracle
            for t in enumerate_trees(incomplete, max_nodes=5, max_trees=200):
                assert oracle_member(incomplete, t), t.pretty()

    def test_possible_prefix_never_contradicts_oracle(self, example_2_2):
        incomplete, _ = example_2_2
        anchored = incomplete.data_node_ids()
        trees = _bounded_oracle_trees(incomplete)
        with perf.uncached():
            for t in trees[:12]:
                for prefix in _prefix_candidates(t):
                    if oracle_possible_prefix(prefix, trees, anchored):
                        assert possible_prefix(prefix, incomplete), prefix.pretty()

    def test_certain_prefix_implies_all_enumerated(self, example_2_2):
        incomplete, _ = example_2_2
        anchored = incomplete.data_node_ids()
        trees = _bounded_oracle_trees(incomplete)
        with perf.uncached():
            dt = incomplete.data_tree()
            for prefix in _prefix_candidates(dt):
                if certain_prefix(prefix, incomplete):
                    assert oracle_certain_prefix(prefix, trees, anchored), (
                        prefix.pretty()
                    )

    def test_query_evaluation_agrees(self, example_2_2):
        incomplete, query = example_2_2
        anchored = incomplete.data_node_ids()
        trees = _bounded_oracle_trees(incomplete)
        bar_query = PSQuery(
            pattern("root", Cond.true(), [subtree("a", Cond.ne(0))])
        )
        for q in (query, bar_query):
            for t in trees:
                ours = oracle_evaluate(q, t)
                theirs = q.evaluate(t)
                assert oracle_canonical(ours, anchored) == oracle_canonical(
                    theirs, anchored
                ), (q, t.pretty(), ours.pretty(), theirs.pretty())

    def test_query_incomplete_is_strong_representation(self, example_2_2):
        """q(rep(T)) ⊆ rep(q(T)) checked tree by tree with the oracle's
        own membership test (the sound direction under bounded
        enumeration)."""
        incomplete, query = example_2_2
        trees = _bounded_oracle_trees(incomplete)
        with perf.uncached():
            answered = query_incomplete(incomplete, query)
            saw_empty = False
            for t in trees:
                answer = oracle_evaluate(query, t)
                if answer.is_empty():
                    saw_empty = True
                assert oracle_member(answered, answer), (
                    t.pretty(),
                    answer.pretty(),
                )
            if saw_empty:
                assert answered.allows_empty


# ---------------------------------------------------------------------------
# randomized differential layer
# ---------------------------------------------------------------------------


def _check_instance(seed: int) -> None:
    tt, doc, history, inc = _instance(seed)
    context = f"seed={seed} type={sorted(tt.roots)}"

    with perf.uncached():
        assert oracle_member(inc, doc), f"{context}: source doc not in rep"
        assert not inc.is_empty(), context
        trees = oracle_trees(inc, max_nodes=4, extra_values=(1,),
                             per_star_cap=1)[:40]
        anchored = inc.data_node_ids()
        for t in trees:
            assert inc.contains(t), f"{context}\n{t.pretty()}"
            # every member is a possible prefix of itself
            assert possible_prefix(t, inc), f"{context}\n{t.pretty()}"
        dt = inc.data_tree()
        if trees and not dt.is_empty() and certain_prefix(dt, inc):
            assert oracle_certain_prefix(dt, trees, anchored), (
                f"{context}\n{dt.pretty()}"
            )
        # answers of enumerated members lie in rep(q(T))
        probe = history[0][0]
        answered = query_incomplete(inc, probe)
        for t in trees[:15]:
            answer = oracle_evaluate(probe, t)
            if answer.is_empty():
                assert answered.allows_empty, f"{context}\n{t.pretty()}"
            else:
                assert oracle_member(answered, answer), (
                    f"{context}\n{t.pretty()}\n{answer.pretty()}"
                )

    # cached run of the whole pipeline must be equivalent to uncached
    perf.clear_caches()
    with perf.cached():
        inc_cached = refine_sequence(sorted(tt.alphabet), history, tree_type=tt)
        answered_cached = query_incomplete(inc_cached, probe)
        again = refine_sequence(sorted(tt.alphabet), history, tree_type=tt)
    _assert_equiv(inc, inc_cached, context)
    _assert_equiv(answered, answered_cached, context)
    _assert_equiv(inc, again, f"{context} (warm rerun)")
    perf.clear_caches()


@pytest.mark.parametrize("seed", range(SMOKE_INSTANCES))
def test_differential_smoke(seed):
    _check_instance(seed)


@pytest.mark.oracle
@pytest.mark.parametrize("seed", range(SMOKE_INSTANCES, FULL_INSTANCES))
def test_differential_full(seed):
    _check_instance(seed)


# ---------------------------------------------------------------------------
# cache-on vs cache-off equivalence per memoized entry point
# ---------------------------------------------------------------------------


class TestCacheEquivalence:
    def _both(self, fn):
        """Run ``fn`` uncached then twice cached (cold + warm)."""
        perf.clear_caches()
        with perf.uncached():
            plain = fn()
        with perf.cached():
            cold = fn()
            warm = fn()
        perf.clear_caches()
        return plain, cold, warm

    @pytest.mark.parametrize("seed", range(4))
    def test_refine_sequence(self, seed):
        tt, doc, history, _ = _instance(seed)
        plain, cold, warm = self._both(
            lambda: refine_sequence(sorted(tt.alphabet), history, tree_type=tt)
        )
        _assert_equiv(plain, cold, seed)
        _assert_equiv(plain, warm, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_query_incomplete(self, seed):
        tt, doc, history, inc = _instance(seed)
        query = random_ps_query(tt, seed=seed + 100, max_depth=3)
        plain, cold, warm = self._both(lambda: query_incomplete(inc, query))
        _assert_equiv(plain, cold, seed)
        _assert_equiv(plain, warm, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_intersect_with_tree_type(self, seed):
        tt, doc, history, inc = _instance(seed)
        plain, cold, warm = self._both(lambda: intersect_with_tree_type(inc, tt))
        _assert_equiv(plain, cold, seed)
        _assert_equiv(plain, warm, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_merge_equivalent_symbols(self, seed):
        tt, doc, history, inc = _instance(seed)
        plain, cold, warm = self._both(lambda: merge_equivalent_symbols(inc))
        _assert_equiv(plain, cold, seed)
        _assert_equiv(plain, warm, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_emptiness_and_normalization(self, seed):
        tt, doc, history, inc = _instance(seed)
        tau = inc.type
        plain, cold, warm = self._both(
            lambda: (
                tau.is_empty(),
                tau.productive_symbols(),
                tau.normalized(),
            )
        )
        assert plain[0] == cold[0] == warm[0], seed
        assert plain[1] == cold[1] == warm[1], seed
        assert plain[2] == cold[2] == warm[2], seed

    @pytest.mark.parametrize("seed", range(6))
    def test_matching_primitives(self, seed):
        rng = random.Random(seed)
        left = [f"l{i}" for i in range(rng.randint(1, 5))]
        right = [f"r{i}" for i in range(rng.randint(1, 5))]
        adjacency = {
            l: frozenset(r for r in right if rng.random() < 0.6) for l in left
        }
        slots = {r: (0, rng.randint(1, 2)) for r in right}
        plain, cold, warm = self._both(
            lambda: (
                max_bipartite_matching(left, adjacency),
                feasible_assignment(left, slots, adjacency),
            )
        )
        assert plain == cold == warm, seed

    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_sees_no_cache_effect(self, seed):
        """The oracle's enumerated rep(T) is identical whether the
        library underneath runs cached or not (the oracle itself never
        calls memoized code, but instance *construction* does)."""
        tt, doc, history, inc = _instance(seed)
        perf.clear_caches()
        with perf.cached():
            inc_cached = refine_sequence(
                sorted(tt.alphabet), history, tree_type=tt
            )
        perf.clear_caches()
        anchored = inc.data_node_ids()
        forms = {
            oracle_canonical(t, anchored)
            for t in oracle_trees(inc, max_nodes=4, per_star_cap=1)
        }
        forms_cached = {
            oracle_canonical(t, anchored)
            for t in oracle_trees(inc_cached, max_nodes=4, per_star_cap=1)
        }
        assert forms == forms_cached, seed
