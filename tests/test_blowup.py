"""Experiment E6 growth shapes and E15's branching blowup (small sizes;
the benchmarks sweep further)."""

import pytest

from repro.extensions.branching import (
    blowup_incomplete_tree,
    blowup_query,
    count_possible_answers,
)
from repro.refine.conjunctive import refine_plus_sequence
from repro.refine.linear import refine_linear_sequence
from repro.refine.refine import refine_sequence
from repro.workloads.blowup import (
    BLOWUP_ALPHABET,
    linear_nested_queries,
    pair_queries,
    probe_queries_for_pairs,
)


class TestGrowthShapes:
    def test_who_wins(self):
        """At n=6 the ordering is: plain >> conjunctive ≈ linear-min."""
        n = 6
        plain = refine_sequence(BLOWUP_ALPHABET, pair_queries(n)).size()
        conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(n)).size()
        assert plain > 2 * conj

    def test_crossover_exists(self):
        """For small histories plain Refine is *smaller* (the paper's
        trade-off): conjunctive trees pay a constant per-layer cost."""
        plain_1 = refine_sequence(BLOWUP_ALPHABET, pair_queries(1)).size()
        conj_1 = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(1)).size()
        assert plain_1 < conj_1

    def test_probing_rescue(self):
        n = 5
        plain = refine_sequence(BLOWUP_ALPHABET, pair_queries(n)).size()
        rescued = refine_sequence(
            BLOWUP_ALPHABET, probe_queries_for_pairs(n) + pair_queries(n)
        ).size()
        assert rescued < plain


class TestBranchingBlowup:
    def test_incomplete_tree_valid(self):
        incomplete = blowup_incomplete_tree(3)
        assert incomplete.validate() == []
        assert not incomplete.is_empty()

    def test_query_shape(self):
        q = blowup_query(3)
        assert len(q.root.children) == 3

    @pytest.mark.parametrize("n,expected_min", [(1, 2), (2, 6)])
    def test_answer_counts_grow(self, n, expected_min):
        """The number of distinct possible answers grows super-poly
        (n! assignments are all distinguishable)."""
        count = count_possible_answers(n)
        assert count >= expected_min
