"""Matching / bounded-assignment tests, with a brute-force oracle."""

from itertools import product as iter_product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    Dinic,
    feasible_assignment,
    has_perfect_matching,
    max_bipartite_matching,
)


class TestDinic:
    def test_simple_path(self):
        d = Dinic()
        d.add_edge("s", "a", 3)
        d.add_edge("a", "t", 2)
        assert d.max_flow("s", "t") == 2

    def test_parallel_paths(self):
        d = Dinic()
        d.add_edge("s", "a", 1)
        d.add_edge("s", "b", 1)
        d.add_edge("a", "t", 1)
        d.add_edge("b", "t", 1)
        assert d.max_flow("s", "t") == 2

    def test_missing_nodes(self):
        assert Dinic().max_flow("x", "y") == 0


class TestBipartiteMatching:
    def test_perfect(self):
        adj = {1: ["a", "b"], 2: ["a"]}
        match = max_bipartite_matching([1, 2], adj)
        assert len(match) == 2
        assert match[2] == "a" and match[1] == "b"

    def test_augmenting_path_needed(self):
        adj = {1: ["a"], 2: ["a", "b"], 3: ["b", "c"]}
        assert has_perfect_matching([1, 2, 3], adj)

    def test_imperfect(self):
        adj = {1: ["a"], 2: ["a"]}
        assert not has_perfect_matching([1, 2], adj)

    def test_empty_left(self):
        assert has_perfect_matching([], {})


def brute_force_assignment(items, slots, allowed):
    """Try all assignments (oracle)."""
    names = list(slots)
    if not items:
        return all(low == 0 for low, _h in slots.values())
    for combo in iter_product(*[list(allowed.get(i, [])) or [None] for i in items]):
        if None in combo:
            continue
        counts = {name: 0 for name in names}
        for slot in combo:
            counts[slot] += 1
        ok = all(
            counts[name] >= slots[name][0]
            and (slots[name][1] is None or counts[name] <= slots[name][1])
            for name in names
        )
        if ok:
            return True
    return False


class TestFeasibleAssignment:
    def test_exact_counts(self):
        slots = {"x": (1, 1), "y": (1, 1)}
        allowed = {1: ["x", "y"], 2: ["x", "y"]}
        result = feasible_assignment([1, 2], slots, allowed)
        assert result is not None
        assert sorted(result.values()) == ["x", "y"]

    def test_lower_bound_unmet(self):
        slots = {"x": (2, None)}
        allowed = {1: ["x"]}
        assert feasible_assignment([1], slots, allowed) is None

    def test_upper_bound_exceeded(self):
        slots = {"x": (0, 1)}
        allowed = {1: ["x"], 2: ["x"]}
        assert feasible_assignment([1, 2], slots, allowed) is None

    def test_item_without_slot(self):
        assert feasible_assignment([1], {"x": (0, None)}, {1: []}) is None

    def test_unbounded_star_slot(self):
        slots = {"x": (0, None)}
        allowed = {i: ["x"] for i in range(5)}
        result = feasible_assignment(list(range(5)), slots, allowed)
        assert result is not None and len(result) == 5

    def test_assignment_respects_allowed(self):
        slots = {"x": (1, 1), "y": (0, None)}
        allowed = {1: ["y"], 2: ["x", "y"]}
        result = feasible_assignment([1, 2], slots, allowed)
        assert result is not None
        assert result[1] == "y" and result[2] == "x"


slot_bounds = st.sampled_from([(0, None), (1, 1), (0, 1), (1, None)])


@given(
    n_items=st.integers(min_value=0, max_value=4),
    n_slots=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=300, deadline=None)
def test_feasible_assignment_matches_brute_force(n_items, n_slots, data):
    slot_names = [f"s{i}" for i in range(n_slots)]
    slots = {name: data.draw(slot_bounds, label=name) for name in slot_names}
    items = list(range(n_items))
    allowed = {
        i: data.draw(
            st.lists(st.sampled_from(slot_names), unique=True, min_size=0),
            label=f"allowed{i}",
        )
        for i in items
    }
    got = feasible_assignment(items, slots, allowed)
    want = brute_force_assignment(items, slots, allowed)
    assert (got is not None) == want
    if got is not None:
        counts = {name: 0 for name in slot_names}
        for item, slot in got.items():
            assert slot in allowed[item]
            counts[slot] += 1
        for name, (low, high) in slots.items():
            assert counts[name] >= low
            assert high is None or counts[name] <= high
