"""Experiment E14 — Theorem 4.7: the CFG-intersection reduction's
invariants on concrete grammars."""

import pytest

from repro.reductions.cfg import (
    Grammar,
    consistency_queries,
    difference_query,
    encode_pair,
    pair_tree_type,
)


def grammar_anbn(prefix: str) -> Grammar:
    """S -> a S b | a b, in CNF with helper nonterminals."""
    S, A, B, X = f"{prefix}S", f"{prefix}A", f"{prefix}B", f"{prefix}X"
    return Grammar(
        S,
        {
            S: [(A, B), (A, X)],
            X: [(S, B)],
            A: [("a",)],
            B: [("b",)],
        },
    )


def grammar_astar(prefix: str) -> Grammar:
    """S -> a | a S  (language a+), in CNF."""
    S, A = f"{prefix}S", f"{prefix}A"
    return Grammar(S, {S: [("a",), (A, S)], A: [("a",)]})


class TestGrammar:
    def test_derives(self):
        g = grammar_anbn("L")
        assert g.derives("ab")
        assert g.derives("aabb")
        assert not g.derives("aab")
        assert not g.derives("")

    def test_words(self):
        g = grammar_astar("L")
        assert g.words(3) == {"a", "aa", "aaa"}

    def test_position_split(self):
        g = grammar_astar("L").position_split()
        # no nonterminal occurs both first and second
        firsts, seconds = set(), set()
        for bodies in g.productions.values():
            for body in bodies:
                if len(body) == 2:
                    firsts.add(body[0])
                    seconds.add(body[1])
        assert not (firsts & seconds)
        # language preserved
        assert g.derives("aa") and not g.derives("")

    def test_extreme_paths(self):
        g = grammar_anbn("L").position_split()
        left = g.leftmost_path()
        right = g.rightmost_path()
        # for 'ab': derivation S -> A B; leftmost path: A< then a
        assert left.matches(["LA<", "a"])
        assert right.matches(["LB>", "b"])
        # deeper: aabb uses X
        assert right.matches(["LX>", "LB>", "b"])


class TestEncoding:
    def test_pair_tree_well_typed(self):
        g1 = grammar_astar("L").position_split()
        g2 = grammar_astar("R").position_split()
        tree = encode_pair(g1, "aa", g2, "aa")
        tt = pair_tree_type(g1, g2)
        assert tt.satisfied_by(tree)

    def test_successor_values(self):
        g1 = grammar_astar("L").position_split()
        g2 = grammar_astar("R").position_split()
        tree = encode_pair(g1, "aa", g2, "aa")
        # leaves have val1/val2 children with consecutive values
        val1s = sorted(
            tree.value(n) for n in tree.node_ids() if tree.label(n) == "val1"
        )
        assert val1s == [1, 1, 2, 2]  # both sides share indexes 1, 2

    def test_underivable_word_rejected(self):
        g1 = grammar_anbn("L").position_split()
        g2 = grammar_astar("R").position_split()
        with pytest.raises(ValueError):
            encode_pair(g1, "aab", g2, "aaa")


class TestReductionInvariants:
    def setup_pair(self, w1, w2):
        g1 = grammar_anbn("L").position_split()
        g2 = Grammar(
            "RS",
            {
                "RS": [("a",), ("b",), ("RA", "RS2")],
                "RS2": [("a",), ("b",), ("RA2", "RS3")],
                "RS3": [("a",), ("b",)],
                "RA": [("a",), ("b",)],
                "RA2": [("a",), ("b",)],
            },
        ).position_split()  # all words of length 1..3 over {a,b}
        return g1, g2

    def test_consistency_queries_empty_on_valid_encoding(self):
        g1, g2 = self.setup_pair("ab", "ab")
        tree = encode_pair(g1, "ab", g2, "ab")
        for i, query in enumerate(consistency_queries(g1, g2)):
            assert query.is_empty_on(tree), f"consistency query {i} fired"

    def test_difference_query_detects_unequal_words(self):
        g1, g2 = self.setup_pair("ab", "aa")
        equal_tree = encode_pair(g1, "ab", g2, "ab")
        assert difference_query().is_empty_on(equal_tree)
        diff_tree = encode_pair(g1, "ab", g2, "aa")
        assert not difference_query().is_empty_on(diff_tree)

    def test_mismatched_indexing_caught(self):
        """Encoding the words with different lengths violates the
        equal-rightmost-value consistency query."""
        g1, g2 = self.setup_pair("aabb", "ab")
        tree = encode_pair(g1, "aabb", g2, "ab")
        fired = [
            not q.is_empty_on(tree) for q in consistency_queries(g1, g2)
        ]
        assert any(fired)
