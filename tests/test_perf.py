"""Unit tests for ``repro.perf``: LRU memo tables, the intern pool, the
global switch, and the batched ``Webhouse.record_many`` fast path."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
import repro.perf as perf
from repro.core.conditions import Cond
from repro.mediator.webhouse import Webhouse
from repro.perf.memo import MISS, LRUCache
from repro.perf.state import STATE, TABLE_CAPACITIES
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache("t", capacity=4)
        assert cache.get("k") is MISS
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_caches_none_distinctly_from_miss(self):
        cache = LRUCache("t", capacity=4)
        cache.put("k", None)
        assert cache.get("k") is None

    def test_eviction_is_lru(self):
        cache = LRUCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": now "b" is least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_get_or_put_returns_first_instance(self):
        cache = LRUCache("t", capacity=4)
        first = ("x",)
        second = ("x",)  # equal, not identical
        assert cache.get_or_put("k", first) is first
        assert cache.get_or_put("k", second) is first

    def test_stats_and_reset(self):
        cache = LRUCache("t", capacity=2)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 2
        assert cache.hit_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.hits == cache.misses == 0
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache("t", capacity=0)


class TestGlobalSwitch:
    def test_default_off(self):
        assert not perf.caches_enabled()

    def test_context_managers_restore(self):
        with perf.cached():
            assert perf.caches_enabled()
            with perf.uncached():
                assert not perf.caches_enabled()
            assert perf.caches_enabled()
        assert not perf.caches_enabled()

    def test_all_configured_tables_exist(self):
        for name in TABLE_CAPACITIES:
            assert STATE.caches[name].capacity == TABLE_CAPACITIES[name]

    def test_cache_stats_shape(self):
        perf.clear_caches()
        stats = perf.cache_stats()
        assert set(stats) == {"enabled", "tables", "intern"}
        assert set(stats["tables"]) == set(TABLE_CAPACITIES)
        assert set(stats["intern"]) == {"cond", "atom", "disjunction", "type"}
        json.dumps(stats)  # exporter-ready

    def test_clear_caches_empties_tables(self):
        with perf.cached():
            STATE.caches["matching"].put("probe", 1)
        perf.clear_caches()
        assert len(STATE.caches["matching"]) == 0

    def test_hit_counters_reach_obs(self):
        """With observability on, lookups mirror into obs counters."""
        perf.clear_caches()
        with obs.capture(), perf.cached():
            STATE.caches["matching"].get("nope")
            STATE.caches["matching"].put("probe", 1)
            STATE.caches["matching"].get("probe")
            counters = obs.snapshot()["metrics"]["counters"]
        perf.clear_caches()
        assert counters.get("cache.matching.misses", 0) >= 1
        assert counters.get("cache.matching.hits", 0) >= 1


class TestWebhouseRecordMany:
    def _history(self):
        doc = demo_catalog()
        q1, q2 = query1(), query2()
        return [(q1, q1.evaluate(doc)), (q2, q2.evaluate(doc))]

    def test_equivalent_to_sequential_record(self):
        from repro.incomplete.certainty import incomplete_equivalent

        history = self._history()
        one = Webhouse(CATALOG_ALPHABET)
        for query, answer in history:
            one.record(query, answer)
        many = Webhouse(CATALOG_ALPHABET)
        many.record_many(history)
        assert incomplete_equivalent(one.knowledge, many.knowledge)
        assert one.history == many.history

    def test_duplicates_merged_before_refine(self):
        history = self._history()
        wh = Webhouse(CATALOG_ALPHABET)
        wh.record_many(history + [history[0]])  # one duplicate pair
        # history keeps the raw input stream, duplicates included
        assert len(wh.history) == 3
        counters = wh.metrics.counters()
        assert counters["webhouse.records"] == 3
        assert counters["webhouse.batches"] == 1

    def test_empty_batch_is_a_noop(self):
        wh = Webhouse(CATALOG_ALPHABET)
        wh.record_many([])
        assert wh.history == ()

    def test_batch_then_answer_locally(self):
        wh = Webhouse(CATALOG_ALPHABET)
        wh.record_many(self._history())
        assert wh.can_answer(query1())
        assert not wh.answer_locally(query1()).is_empty()

    def test_batch_under_caching_matches_uncached(self):
        from repro.incomplete.certainty import incomplete_equivalent

        history = self._history()
        perf.clear_caches()
        with perf.uncached():
            plain = Webhouse(CATALOG_ALPHABET)
            plain.record_many(history)
        with perf.cached():
            cached = Webhouse(CATALOG_ALPHABET)
            cached.record_many(history)
        perf.clear_caches()
        assert incomplete_equivalent(plain.knowledge, cached.knowledge)


class TestCliCachesFlag:
    def test_stats_caches_payload(self, capsys):
        from repro.__main__ import main

        assert main(["repro", "stats", "--caches", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        caches = doc["caches"]
        assert caches["enabled"] is True
        assert "matching" in caches["tables"]
        total = sum(
            t["hits"] + t["misses"] for t in caches["tables"].values()
        )
        assert total > 0

    def test_stats_without_flag_has_no_cache_section(self, capsys):
        from repro.__main__ import main

        assert main(["repro", "stats", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "caches" not in doc
