"""Theorem 3.14: q(T) is a strong representation system — both
inclusions verified against the enumeration oracle."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern, subtree
from repro.core.tree import DataTree, node
from repro.incomplete.enumerate import answer_set, canonical_form, enumerate_trees
from repro.answering.query_incomplete import query_incomplete, type_possible_certain
from repro.incomplete.incomplete_tree import IncompleteTree
from repro.refine.refine import refine_sequence

ALPHABET = ["root", "a", "b"]


def assert_strong_representation(incomplete, query, src_budget, ans_budget, values):
    """rep(q(T)) == q(rep(T)), up to the enumeration budgets."""
    answers_type = query_incomplete(incomplete, query)
    anchored = list(incomplete.data_node_ids())
    sources = enumerate_trees(
        incomplete, max_nodes=src_budget, values_per_cond=1, extra_values=values,
        max_trees=None,
    )
    assert sources, "oracle found no sources; broken setup"
    real_answers = set()
    for tree in sources:
        answer = query.evaluate(tree)
        real_answers.add(canonical_form(answer, anchored))
        assert answers_type.contains(answer), (
            f"actual answer not represented:\n{answer.pretty()}"
        )
    members = enumerate_trees(
        answers_type, max_nodes=ans_budget, values_per_cond=1, extra_values=values
    )
    for member in members:
        assert canonical_form(member, anchored) in real_answers, (
            f"represented answer never produced:\n{member.pretty()}"
        )
    return answers_type


class TestExample22:
    def test_strong_representation(self, example_2_2):
        incomplete, query = example_2_2
        answers = assert_strong_representation(
            incomplete, query, src_budget=7, ans_budget=5, values=[0, 1]
        )
        assert answers.allows_empty  # n may have no b children

    def test_paper_membership_claims(self, example_2_2):
        incomplete, query = example_2_2
        answers = query_incomplete(incomplete, query)
        # answers containing both r and n
        both = DataTree.build(
            node("r", "root", 0, [node("n", "a", 0, [node("f", "b", 0)])])
        )
        assert answers.contains(both)
        # r alone cannot be an answer (r only in answer if some a matched,
        # and matched nodes bring their b child)
        r_alone = DataTree.build(node("r", "root", 0))
        assert not answers.contains(r_alone)
        # the empty tree is an answer
        assert answers.contains(DataTree.empty())


class TestAfterRefine:
    def test_query_over_refined_knowledge(self):
        src = DataTree.build(
            node(
                "r",
                "root",
                0,
                [node("x", "a", 5, [node("y", "b", 1)]), node("z", "a", 0)],
            )
        )
        q_learn = linear_query(["root", "a"], [None, Cond.gt(0)])
        knowledge = refine_sequence(ALPHABET, [(q_learn, q_learn.evaluate(src))])
        q_ask = PSQuery(
            pattern("root", children=[pattern("a", None, [pattern("b")])])
        )
        assert_strong_representation(
            knowledge, q_ask, src_budget=5, ans_budget=4, values=[0, 1, 5]
        )

    def test_bar_query_over_incomplete(self, example_2_2):
        incomplete, _q = example_2_2
        q_bar = PSQuery(pattern("root", children=[subtree("a", Cond.ne(0))]))
        assert_strong_representation(
            incomplete, q_bar, src_budget=6, ans_budget=4, values=[0, 1]
        )

    def test_linear_query_over_incomplete(self, example_2_2):
        incomplete, _q = example_2_2
        q_lin = linear_query(["root", "a", "b"], [None, Cond.eq(0), None])
        assert_strong_representation(
            incomplete, q_lin, src_budget=6, ans_budget=4, values=[0, 1]
        )


class TestEdgeCases:
    def test_empty_rep(self):
        nothing = IncompleteTree.nothing(allows_empty=False)
        q = PSQuery(pattern("root"))
        assert query_incomplete(nothing, q).is_empty()

    def test_label_never_matching(self, example_2_2):
        incomplete, _q = example_2_2
        q = PSQuery(pattern("zzz"))
        answers = query_incomplete(incomplete, q)
        assert answers.allows_empty
        assert answers.contains(DataTree.empty())
        assert not answers.contains(DataTree.single("f", "zzz"))

    def test_certain_match_disallows_empty(self):
        # knowledge where the query surely matches: root data node known
        q = linear_query(["root"])
        src = DataTree.build(node("r", "root", 0))
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(src))])
        answers = query_incomplete(knowledge, q)
        assert not answers.allows_empty
        assert answers.contains(src)


class TestPossCert:
    def test_type_level_sets(self, example_2_2):
        incomplete, query = example_2_2
        poss, cert = type_possible_certain(incomplete, query)
        root_path, a_path, b_path = (), (0,), (0, 0)
        # at the root: r possibly matches (needs an a child with b child)
        assert "r" in poss[root_path]
        assert "r" not in cert[root_path]  # n/a children may lack b's
        # both a-symbols possibly match the a-pattern
        assert {"a", "n"} <= set(poss[a_path])
        assert "b" in cert[b_path]
