"""Theorem 3.17 / Corollary 3.18: certain and possible answer facts."""

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.answering.facts import (
    certain_answer_prefix,
    certainly_nonempty,
    possible_answer_prefix,
    possibly_nonempty,
)
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import CATALOG_ALPHABET

ALPHABET = ["root", "a", "b"]


def knowledge():
    q = linear_query(["root", "a"], [None, Cond.gt(0)])
    src = DataTree.build(
        node("r", "root", 0, [node("x", "a", 5), node("z", "a", -1)])
    )
    return refine_sequence(ALPHABET, [(q, q.evaluate(src))])


class TestNonEmptiness:
    def test_recorded_match_is_certain(self):
        k = knowledge()
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        assert certainly_nonempty(k, q)
        assert possibly_nonempty(k, q)

    def test_unknown_is_possible_not_certain(self):
        k = knowledge()
        q = linear_query(["root", "b"])
        assert possibly_nonempty(k, q)
        assert not certainly_nonempty(k, q)

    def test_excluded_is_impossible(self):
        k = knowledge()
        # all a > 0 are known to be exactly {x=5}; a > 1000 can't exist
        q = linear_query(["root", "a"], [None, Cond.gt(1000)])
        assert not possibly_nonempty(k, q)
        assert not certainly_nonempty(k, q)

    def test_example_3_4_more_cameras(self, catalog_tt, catalog_doc, catalog_queries):
        history = [
            (catalog_queries[1], catalog_queries[1].evaluate(catalog_doc)),
            (catalog_queries[2], catalog_queries[2].evaluate(catalog_doc)),
        ]
        k = intersect_with_tree_type(
            refine_sequence(CATALOG_ALPHABET, history), catalog_tt
        )
        # expensive cameras may exist (Olympus is one; Leica hidden)
        assert possibly_nonempty(k, catalog_queries[5])
        # and in fact certainly: Olympus is a known camera with price>=200 forced
        assert certainly_nonempty(k, catalog_queries[5])


class TestAnswerPrefixes:
    def test_known_match_is_certain_prefix(self):
        k = knowledge()
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        prefix = DataTree.build(node("r", "root", 0, [node("x", "a", 5)]))
        assert certain_answer_prefix(prefix, k, q)
        assert possible_answer_prefix(prefix, k, q)

    def test_excluded_node_impossible_in_answer(self):
        k = knowledge()
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        # z has value -1; it can never appear in the q-answer
        prefix = DataTree.build(node("r", "root", 0, [node("z", "a", -1)]))
        assert not possible_answer_prefix(prefix, k, q)

    def test_possible_but_uncertain_prefix(self):
        k = knowledge()
        q = linear_query(["root", "b"])
        prefix = DataTree.build(node("r", "root", 0, [node("f", "b", 2)]))
        assert possible_answer_prefix(prefix, k, q)
        assert not certain_answer_prefix(prefix, k, q)


class TestAgainstOracle:
    """Answer-fact predicates validated by enumerating rep(T) and
    evaluating the query on every member."""

    def setting(self):
        from repro.incomplete.enumerate import enumerate_trees

        k = knowledge()
        trees = enumerate_trees(
            k, max_nodes=6, values_per_cond=1, extra_values=[0, 5, -1, 2]
        )
        assert trees
        return k, trees

    def test_possibly_nonempty_oracle(self):
        k, trees = self.setting()
        for q in [
            linear_query(["root", "a"], [None, Cond.gt(0)]),
            linear_query(["root", "b"]),
            linear_query(["root", "a"], [None, Cond.gt(1000)]),
        ]:
            oracle = any(not q.evaluate(t).is_empty() for t in trees)
            got = possibly_nonempty(k, q)
            if oracle:
                assert got  # a bounded witness exists => must be possible
            if not got:
                assert not oracle

    def test_certainly_nonempty_oracle(self):
        k, trees = self.setting()
        for q in [
            linear_query(["root", "a"], [None, Cond.gt(0)]),
            linear_query(["root", "b"]),
        ]:
            got = certainly_nonempty(k, q)
            if got:
                assert all(not q.evaluate(t).is_empty() for t in trees)

    def test_answer_prefix_oracle(self):
        from repro.core.tree import node as n

        k, trees = self.setting()
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        prefix = DataTree.build(n("r", "root", 0, [n("x", "a", 5)]))
        got_cert = certain_answer_prefix(prefix, k, q)
        got_poss = possible_answer_prefix(prefix, k, q)
        anchored = list(k.data_node_ids())
        answers = [q.evaluate(t) for t in trees]
        oracle_poss = any(
            prefix.is_prefix_of(a, relative_to=anchored) for a in answers
        )
        oracle_cert = all(
            prefix.is_prefix_of(a, relative_to=anchored) for a in answers
        )
        if oracle_poss:
            assert got_poss
        if got_cert:
            assert oracle_cert
