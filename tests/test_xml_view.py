"""XML serialization of incomplete trees: exact round trips."""

import pytest

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.incomplete.xml_view import (
    cond_from_element,
    cond_to_element,
    incomplete_from_xml,
    incomplete_to_xml,
)
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
)


class TestCondRoundTrip:
    @pytest.mark.parametrize(
        "cond",
        [
            Cond.true(),
            Cond.false(),
            Cond.eq(5),
            Cond.eq("elec"),
            Cond.lt(200) & Cond.ne(100),
            ~(Cond.eq(0) | Cond.eq(1)),
            Cond.ne("camera") & Cond.gt(-3),
            Cond.ge(1) | Cond.eq("x") | Cond.eq("y"),
        ],
    )
    def test_roundtrip(self, cond):
        back = cond_from_element(cond_to_element(cond))
        assert back.equivalent(cond)


class TestIncompleteTreeRoundTrip:
    def test_example_2_2(self, example_2_2):
        incomplete, _q = example_2_2
        back = incomplete_from_xml(incomplete_to_xml(incomplete))
        assert back.data_nodes() == incomplete.data_nodes()
        assert back.allows_empty == incomplete.allows_empty
        assert back.type.roots == incomplete.type.roots
        # semantic agreement on witnesses
        witnesses = [
            DataTree.build(node("r", "root", 0, [node("n", "a", 0)])),
            DataTree.build(
                node("r", "root", 0, [node("n", "a", 0), node("x", "a", 3)])
            ),
            DataTree.build(
                node("r", "root", 0, [node("n", "a", 0), node("x", "a", 0)])
            ),
            DataTree.empty(),
        ]
        for tree in witnesses:
            assert back.contains(tree) == incomplete.contains(tree)

    def test_refined_catalog_roundtrip(self):
        doc = demo_catalog()
        knowledge = intersect_with_tree_type(
            refine_sequence(
                CATALOG_ALPHABET, [(query1(), query1().evaluate(doc))]
            ),
            catalog_type(),
        )
        text = incomplete_to_xml(knowledge)
        back = incomplete_from_xml(text)
        assert back.contains(doc)
        assert back.data_node_ids() == knowledge.data_node_ids()
        assert back.size() == knowledge.size()

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            incomplete_from_xml("<something/>")

    def test_document_is_browsable(self, example_2_2):
        incomplete, _q = example_2_2
        text = incomplete_to_xml(incomplete)
        assert "<data>" in text and "<type" in text
        assert 'kind="node"' in text and 'kind="label"' in text
