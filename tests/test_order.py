"""The Section 4 order example, executable."""

import pytest

from repro.extensions.order import (
    AmbiguousInterleaving,
    OrderedElement,
    any_of_star,
    interleavings_consistent_with,
    merge_by_rank,
    merge_ordered_answers,
    words_type,
)


def elements(label, count, with_rank=None):
    return [
        OrderedElement(
            label,
            f"{label}{i}",
            rank=None if with_rank is None else with_rank[i],
        )
        for i in range(count)
    ]


class TestPaperExample:
    def test_a_star_b_star_is_answerable(self):
        """Input type a*b*: q3 = concatenation of the two answers."""
        a_list = elements("a", 2)
        b_list = elements("b", 3)
        merged = merge_ordered_answers(words_type("a", "b"), [a_list, b_list])
        assert [e.node_id for e in merged] == ["a0", "a1", "b0", "b1", "b2"]

    def test_a_plus_b_star_is_ambiguous(self):
        """Input type (a+b)*: interleaving unknown, q3 not answerable."""
        a_list = elements("a", 1)
        b_list = elements("b", 1)
        with pytest.raises(AmbiguousInterleaving):
            merge_ordered_answers(any_of_star("a", "b"), [a_list, b_list])

    def test_rank_wrapper_fixes_it(self):
        """The paper's remedy: sources exposing element ranks."""
        a_list = elements("a", 2, with_rank=[0, 3])
        b_list = elements("b", 2, with_rank=[1, 2])
        merged = merge_by_rank([a_list, b_list])
        assert [e.node_id for e in merged] == ["a0", "b0", "b1", "a1"]


class TestMachinery:
    def test_inconsistent_answers_detected(self):
        # type says all a's come before b's; but there are no a's allowed
        expr = words_type("b")  # b* only
        with pytest.raises(ValueError):
            merge_ordered_answers(expr, [elements("a", 1), elements("b", 1)])

    def test_single_label_trivially_unique(self):
        merged = merge_ordered_answers(any_of_star("a", "b"), [elements("a", 3)])
        assert len(merged) == 3

    def test_empty_answers(self):
        merged = merge_ordered_answers(words_type("a", "b"), [[], []])
        assert merged == ()

    def test_interleaving_enumeration_capped(self):
        found = interleavings_consistent_with(
            any_of_star("a", "b"),
            [elements("a", 3), elements("b", 3)],
            limit=2,
        )
        assert len(found) == 2  # many exist; enumeration stops at the cap

    def test_unique_forced_by_structure(self):
        # (ab)*: strict alternation forces the interleaving even though
        # labels mix
        from repro.extensions.paths import seq, sym

        expr = seq(sym("a"), sym("b")).star()
        merged = merge_ordered_answers(
            expr, [elements("a", 2), elements("b", 2)]
        )
        assert [e.label for e in merged] == ["a", "b", "a", "b"]

    def test_missing_rank_rejected(self):
        with pytest.raises(ValueError):
            merge_by_rank([elements("a", 1)])

    def test_duplicate_rank_rejected(self):
        with pytest.raises(ValueError):
            merge_by_rank(
                [elements("a", 1, with_rank=[0]), elements("b", 1, with_rank=[0])]
            )
