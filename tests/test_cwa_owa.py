"""The CWA/OWA combination the paper's related-work section highlights.

"Incomplete trees reconcile the two approaches ... They allow to
describe with flexible precision the missing information, by stating
that some facts are not in the document (CWA) but also that some data
still ignored may exist (OWA)."

These tests make the two modalities concrete:

* OWA: after an ordinary query, unseen siblings may exist (``all*``
  rules keep the world open);
* CWA: a *bar* query extracts whole subtrees, closing them — nothing
  below a bar-matched node beyond what was returned can exist;
* mixed: empty answers close specific regions (no product under $200)
  while leaving others open.
"""

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern, subtree
from repro.core.tree import DataTree, node
from repro.incomplete.certainty import possible_prefix
from repro.refine.refine import refine_sequence

ALPHABET = ["root", "a", "b"]


def source():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [node("x", "a", 5, [node("y", "b", 1)]), node("z", "a", 9)],
        )
    )


class TestOpenWorld:
    def test_unseen_siblings_possible(self):
        """A plain query leaves room for more data (OWA)."""
        q = linear_query(["root", "a"], [None, Cond.eq(5)])
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(source()))])
        ghost = DataTree.build(node("r", "root", 0, [node("g", "a", 7)]))
        assert possible_prefix(ghost, knowledge)

    def test_unseen_children_possible(self):
        q = linear_query(["root", "a"], [None, Cond.eq(5)])
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(source()))])
        # nothing was said about x's children: a b-child may exist
        deeper = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("g", "b", 3)])])
        )
        assert possible_prefix(deeper, knowledge)


class TestClosedWorld:
    def test_bar_closes_the_subtree(self):
        """A bar query extracts everything below the match: the region
        becomes closed-world."""
        q = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        knowledge = refine_sequence(ALPHABET, [(q, q.evaluate(source()))])
        # a second b-child under x would have been extracted
        extra = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("g", "b", 3)])])
        )
        assert not possible_prefix(extra, knowledge)
        # the extracted child, of course, remains
        known = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        assert possible_prefix(known, knowledge)

    def test_empty_answer_closes_a_region(self):
        """An empty answer is a negative fact: no a = 5 exists (CWA on
        the region), while other values stay open (OWA)."""
        q = linear_query(["root", "a"], [None, Cond.eq(5)])
        knowledge = refine_sequence(ALPHABET, [(q, DataTree.empty())])
        closed = DataTree.build(node("r", "root", 0, [node("g", "a", 5)]))
        open_ = DataTree.build(node("r", "root", 0, [node("g", "a", 6)]))
        assert not possible_prefix(closed, knowledge)
        assert possible_prefix(open_, knowledge)


class TestMixedModality:
    def test_both_at_once(self):
        """One knowledge state can be closed here and open there."""
        q_bar = PSQuery(pattern("root", children=[subtree("a", Cond.eq(5))]))
        q_neg = linear_query(["root", "b"])
        history = [
            (q_bar, q_bar.evaluate(source())),
            (q_neg, DataTree.empty()),  # no b children of the root at all
        ]
        knowledge = refine_sequence(ALPHABET, history)
        # CWA: no root-level b
        assert not possible_prefix(
            DataTree.build(node("r", "root", 0, [node("g", "b", 1)])), knowledge
        )
        # CWA: nothing new below x
        assert not possible_prefix(
            DataTree.build(
                node("r", "root", 0, [node("x", "a", 5, [node("g", "b", 2)])])
            ),
            knowledge,
        )
        # OWA: more a's (with value != 5) may exist
        assert possible_prefix(
            DataTree.build(node("r", "root", 0, [node("g", "a", 6)])), knowledge
        )
