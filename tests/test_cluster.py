"""The cluster layer: routing, locks, admission, scatter-gather, HTTP.

Covers the PR-7 acceptance criteria: the consistent-hash router is
deterministic across processes and moves few keys on resize; concurrent
clients hammering distinct sessions across shards get unique trace ids
and fully isolated knowledge; and the certain answers are invariant
under the shard count — the same fact sequence yields identical
answers on 1, 2, and 8 shards (Theorems 3.5 / 2.8: each session's
knowledge is a pure function of its own history, and grouping sessions
into shards changes no history).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.cluster import (
    AdmissionController,
    Executor,
    Router,
    RWLock,
    ShardedWebhouse,
    ShardOverloaded,
    stable_hash,
)
from repro.core.tree import DataTree
from repro.mediator.source import InMemorySource
from repro.obs.sinks import NullSink
from repro.ops import OpsServer, demo_cluster
from repro.ops.server import _CLUSTER_PROBES, self_check
from repro.store import SessionStore
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
)


@pytest.fixture(autouse=True)
def clean_state():
    """Pristine obs state around every test."""
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()


def _catalog_source(products: int = 8, seed: int = 7) -> InMemorySource:
    return InMemorySource(generate_catalog(products, seed=seed), catalog_type())


def _cluster(shards: int, **kwargs) -> ShardedWebhouse:
    return ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=catalog_type(), shards=shards, **kwargs
    )


def _tree_facts(tree: DataTree):
    """A comparable rendering of a data tree: (id, label, value, parent)."""
    return sorted(
        (nid, tree.label(nid), tree.value(nid), tree.parent(nid))
        for nid in tree.node_ids()
    )


# -- router ----------------------------------------------------------------------


class TestRouter:
    def test_routing_is_deterministic_across_instances(self):
        first, second = Router(8), Router(8)
        keys = [f"tenant-{i}" for i in range(200)]
        assert [first.route(k) for k in keys] == [second.route(k) for k in keys]

    def test_hash_is_process_independent(self):
        # pinned: BLAKE2b, not hash(); a PYTHONHASHSEED change or a new
        # process must not re-route journaled sessions
        assert stable_hash("repro:demo") == 3288973811430667500

    def test_distribution_is_balanced(self):
        router = Router(4)
        counts = router.distribution(f"key-{i}" for i in range(4000))
        assert set(counts) == {0, 1, 2, 3}
        for shard, count in counts.items():
            assert 500 <= count <= 1600, f"shard {shard} holds {count}/4000"

    def test_resize_moves_few_keys(self):
        keys = [f"tenant-{i}" for i in range(1000)]
        old = Router(4)
        new = old.resized(5)
        moved = old.moved_keys(new, keys)
        # ideal is 1/5 = 200; allow slack for virtual-node granularity
        assert len(moved) < 400
        for key in set(keys) - set(moved):
            assert old.route(key) == new.route(key)

    def test_resize_down_and_bounds(self):
        router = Router(3)
        assert router.resized(1).route("anything") == 0
        with pytest.raises(ValueError):
            Router(0)
        with pytest.raises(ValueError):
            Router(2, replicas=0)


# -- rwlock ----------------------------------------------------------------------


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert lock.readers == 0

    def test_writer_excludes_readers(self):
        lock = RWLock()
        observed = []
        lock.acquire_write()
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), observed.append(lock.write_held), lock.release_read())
        )
        reader.start()
        time.sleep(0.05)
        assert observed == []  # reader blocked behind the writer
        lock.release_write()
        reader.join(timeout=5.0)
        assert observed == [False]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer = threading.Thread(target=lambda: (lock.acquire_write(), lock.release_write()))
        writer.start()
        time.sleep(0.05)
        late = []
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), late.append(True), lock.release_read())
        )
        reader.start()
        time.sleep(0.05)
        # writer-preferring: the late reader queues behind the waiting writer
        assert late == []
        lock.release_read()
        writer.join(timeout=5.0)
        reader.join(timeout=5.0)
        assert late == [True]


# -- admission -------------------------------------------------------------------


class TestAdmission:
    def test_shed_at_limit(self):
        control = AdmissionController(2, max_in_flight=1, policy="shed")
        with control.admit(0):
            with pytest.raises(ShardOverloaded) as excinfo:
                with control.admit(0):
                    pass
            assert excinfo.value.shard == 0
            with control.admit(1):  # sibling shard unaffected
                assert control.in_flight(1) == 1
        assert control.in_flight(0) == 0
        stats = control.stats()
        assert stats[0]["shed"] == 1 and stats[0]["admitted"] == 1
        assert stats[1]["shed"] == 0

    def test_wait_policy_times_out(self):
        control = AdmissionController(
            1, max_in_flight=1, policy="wait", wait_timeout_s=0.05
        )
        with control.admit(0):
            started = time.monotonic()
            with pytest.raises(ShardOverloaded):
                with control.admit(0):
                    pass
            assert time.monotonic() - started >= 0.04

    def test_wait_policy_gets_freed_slot(self):
        control = AdmissionController(
            1, max_in_flight=1, policy="wait", wait_timeout_s=5.0
        )
        acquired = []

        def holder():
            with control.admit(0):
                time.sleep(0.1)

        def waiter():
            with control.admit(0):
                acquired.append(True)

        hold = threading.Thread(target=holder)
        hold.start()
        time.sleep(0.02)
        wait = threading.Thread(target=waiter)
        wait.start()
        hold.join(timeout=5.0)
        wait.join(timeout=5.0)
        assert acquired == [True]
        assert control.stats()[0]["shed"] == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(1, policy="drop")


# -- executor --------------------------------------------------------------------


class TestExecutor:
    def test_gather_preserves_item_order(self):
        ex = Executor(max_workers=4)
        try:
            delays = [0.05, 0.0, 0.02, 0.0]

            def work(index, delay):
                time.sleep(delay)
                return index

            assert ex.scatter(delays, work) == [0, 1, 2, 3]
        finally:
            ex.shutdown()

    def test_first_exception_in_item_order_wins(self):
        ex = Executor(max_workers=4)
        try:

            def work(index, item):
                if index in (1, 2):
                    raise RuntimeError(f"boom-{index}")
                return item

            with pytest.raises(RuntimeError, match="boom-1"):
                ex.scatter(["a", "b", "c", "d"], work)
        finally:
            ex.shutdown()

    def test_tasks_bind_shard_to_obs_context(self):
        ex = Executor(max_workers=2)
        try:
            with obs.capture():
                ex.scatter([None, None, None], lambda i, _: i)
                shards = sorted(
                    sp.attrs["shard"]
                    for root in obs.traces()
                    for sp in root.find("cluster.task")
                )
            assert shards == [0, 1, 2]
        finally:
            ex.shutdown()


# -- sharded webhouse ------------------------------------------------------------


class TestShardedWebhouse:
    def test_routing_and_isolation(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            cluster.ask("alice", source, query1())
            # bob never ingested anything: his knowledge is empty even
            # though alice's session may share bob's shard
            sure, more = cluster.answer("bob", query1())
            assert sure.is_empty() and more
            sure, more = cluster.answer("alice", query1())
            assert not more
            assert _tree_facts(sure) == _tree_facts(query1().evaluate(source.document()))
        finally:
            cluster.close()

    def test_unknown_key_does_not_create_engine(self):
        cluster = _cluster(2)
        try:
            cluster.answer("probe", query1())
            assert len(cluster) == 0 and cluster.sessions() == []
        finally:
            cluster.close()

    def test_invalid_keys_rejected(self):
        cluster = _cluster(2)
        try:
            for bad in ("", "a/b", ".hidden", ".."):
                with pytest.raises(ValueError):
                    cluster.record(bad, query1(), DataTree.empty())
        finally:
            cluster.close()

    def test_ask_all_unions_certain_answers(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            cluster.ask("alice", source, query1())
            cluster.ask("bob", source, query3())
            sure, more = cluster.ask_all(query1())
            assert _tree_facts(sure) == _tree_facts(query1().evaluate(source.document()))
            assert more  # bob's knowledge alone cannot answer query1
        finally:
            cluster.close()

    def test_ask_all_empty_fleet(self):
        cluster = _cluster(3)
        try:
            sure, more = cluster.ask_all(query1())
            assert sure.is_empty() and more
        finally:
            cluster.close()

    def test_stats_all_rolls_up_shards(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            for key in ("alice", "bob", "carol"):
                cluster.ask(key, source, query1())
            rollup = cluster.stats_all()
            assert rollup["shards"] == 4
            assert rollup["sessions"] == 3
            assert rollup["queries_recorded"] == 3
            per_shard = rollup["per_shard"]
            assert [s["shard"] for s in per_shard] == [0, 1, 2, 3]
            assert sum(s["sessions"] for s in per_shard) == 3
            gathered = sorted(k for s in per_shard for k in s["session_keys"])
            assert gathered == ["alice", "bob", "carol"]
            assert all("admitted" in s["admission"] for s in per_shard)
        finally:
            cluster.close()

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_shard_count_invariance(self, shards):
        """The tentpole invariant: same facts, same certain answers,
        regardless of how sessions are grouped into shards."""
        source = _catalog_source(products=6)
        reference = _cluster(1)
        cluster = _cluster(shards)
        try:
            for target in (reference, cluster):
                for i in range(6):
                    key = f"tenant-{i}"
                    target.ask(key, source, query1() if i % 2 else query2())
            for query in (query1(), query2(), query3()):
                expected = reference.ask_all(query)
                actual = cluster.ask_all(query)
                assert _tree_facts(actual[0]) == _tree_facts(expected[0])
                assert actual[1] == expected[1]
            for i in range(6):
                key = f"tenant-{i}"
                exp_sure, exp_more = reference.answer(key, query1())
                act_sure, act_more = cluster.answer(key, query1())
                assert _tree_facts(act_sure) == _tree_facts(exp_sure)
                assert act_more == exp_more
        finally:
            reference.close()
            cluster.close()

    def test_resize_preserves_answers_and_moves_few(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            keys = [f"tenant-{i}" for i in range(20)]
            for key in keys:
                cluster.ask(key, source, query1())
            before = cluster.ask_all(query1())
            resized, moved = cluster.resized(5)
            assert len(resized) == 20
            assert len(moved) < 20  # consistent hashing: most keys stay put
            after = resized.ask_all(query1())
            assert _tree_facts(after[0]) == _tree_facts(before[0])
            for key in keys:
                assert resized.router.route(key) == resized.shard_of(key)
        finally:
            cluster.close()

    def test_spans_carry_shard_attribute(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            with obs.capture():
                cluster.ask("alice", source, query1())
                shard = cluster.shard_of("alice")
                roots = obs.traces()
            cluster_spans = [sp for r in roots for sp in r.find("cluster.ask")]
            assert cluster_spans and all(
                sp.attrs["shard"] == shard for sp in cluster_spans
            )
            # engine spans opened *inside* the cluster op inherit the
            # context-bound shard, so profiles attribute Refine to shards
            engine_spans = [sp for r in roots for sp in r.find("webhouse.record")]
            assert engine_spans and all(
                sp.attrs["shard"] == shard for sp in engine_spans
            )
        finally:
            cluster.close()

    def test_concurrent_hammer_isolated_sessions(self):
        """M threads ingesting into distinct sessions: no leakage, and
        every session ends with exactly its own history."""
        source = _catalog_source()
        cluster = _cluster(4)
        errors = []

        def client(i):
            key = f"tenant-{i}"
            try:
                cluster.ask(key, source, query1())
                cluster.ask(key, source, query2())
                sure, more = cluster.answer(key, query1())
                assert not more
                assert _tree_facts(sure) == _tree_facts(
                    query1().evaluate(source.document())
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((key, exc))

        try:
            threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert errors == []
            assert len(cluster) == 12
            rollup = cluster.stats_all()
            assert rollup["queries_recorded"] == 24
            for i in range(12):
                engine = cluster.engine(f"tenant-{i}")
                assert len(engine.history) == 2
        finally:
            cluster.close()

    def test_admission_backpressure_on_keyed_ops(self):
        cluster = _cluster(
            2, admission=AdmissionController(2, max_in_flight=1, policy="shed")
        )
        try:
            shard = cluster.shard_of("alice")
            with cluster.admission.admit(shard):
                with pytest.raises(ShardOverloaded):
                    cluster.answer("alice", query1())
            # slot released: the same call succeeds now
            sure, more = cluster.answer("alice", query1())
            assert sure.is_empty() and more
        finally:
            cluster.close()


# -- durability ------------------------------------------------------------------


class TestDurableCluster:
    def test_store_shard_namespaces(self, tmp_path):
        store = SessionStore(str(tmp_path))
        sub0, sub1 = store.shard(0), store.shard(1)
        assert sub0.root != sub1.root
        assert sub0.root.startswith(store.root)
        session = sub0.create("alice", CATALOG_ALPHABET, tree_type=catalog_type())
        session.close()
        assert sub0.list_sessions() == ["alice"]
        assert sub1.list_sessions() == []

    def test_cluster_resumes_sessions_into_same_shards(self, tmp_path):
        source = _catalog_source()
        store = SessionStore(str(tmp_path))
        cluster = _cluster(3, store=store)
        keys = [f"tenant-{i}" for i in range(5)]
        try:
            for key in keys:
                cluster.ask(key, source, query1())
            placement = {key: cluster.shard_of(key) for key in keys}
            before = {key: cluster.answer(key, query1()) for key in keys}
        finally:
            cluster.close()

        resumed = _cluster(3, store=SessionStore(str(tmp_path)))
        try:
            assert resumed.sessions() == sorted(keys)
            for key in keys:
                assert resumed.shard_of(key) == placement[key]
                sure, more = resumed.answer(key, query1())
                assert _tree_facts(sure) == _tree_facts(before[key][0])
                assert more == before[key][1]
        finally:
            resumed.close()


# -- HTTP cluster plane ----------------------------------------------------------


def _get(url: str, timeout: float = 10.0):
    """(status, headers, body-bytes), following HTTPError for 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


@pytest.fixture()
def cluster_server():
    """A live ops server fronting a 4-shard demo pool, obs enabled."""
    obs.enable(obs.RingBufferSink())
    cluster, source = demo_cluster(shards=4, products=4)
    srv = OpsServer(cluster=cluster, source=source).start()
    yield srv
    srv.stop()
    cluster.close()


class TestClusterHTTP:
    def test_routed_ask_and_fleet_union(self, cluster_server):
        base = cluster_server.url
        status, _, body = _get(f"{base}/ask?q=q1&session=demo")
        assert status == 200
        routed = json.loads(body)
        assert routed["session"] == "demo"
        assert routed["shard"] == cluster_server.cluster.shard_of("demo")
        assert routed["may_have_more"] is False

        status, _, body = _get(f"{base}/ask?q=q1")
        assert status == 200
        fleet = json.loads(body)
        assert fleet["scope"] == "fleet"
        assert fleet["sure_nodes"] == routed["sure_nodes"]

    def test_fetch_needs_session(self, cluster_server):
        status, _, body = _get(f"{cluster_server.url}/ask?q=q1&mode=fetch")
        assert status == 400
        assert "session" in json.loads(body)["error"]

    def test_fetch_creates_routed_session(self, cluster_server):
        base = cluster_server.url
        status, _, body = _get(f"{base}/ask?q=q2&session=newbie&mode=fetch")
        assert status == 200
        assert json.loads(body)["session"] == "newbie"
        assert "newbie" in cluster_server.cluster.sessions()

    def test_statusz_carries_shard_rollup(self, cluster_server):
        status, _, body = _get(f"{cluster_server.url}/statusz")
        assert status == 200
        document = json.loads(body)
        assert document["shards"] == 4
        rollup = document["cluster"]
        assert len(rollup["per_shard"]) == 4
        assert rollup["sessions"] >= 1

    def test_metrics_export_shard_series(self, cluster_server):
        from repro.obs.export import validate_prometheus_text

        status, _, body = _get(f"{cluster_server.url}/metrics")
        assert status == 200
        samples = validate_prometheus_text(body.decode())
        shard_series = [n for n in samples if n.startswith("repro_shard_")]
        assert any(n.endswith("_sessions") for n in shard_series)
        assert any(n.endswith("_knowledge_size") for n in shard_series)
        assert "repro_cluster_shards" in samples

    def test_overloaded_shard_returns_503(self, cluster_server):
        cluster = cluster_server.cluster
        shard = cluster.shard_of("demo")
        limit = cluster.admission.max_in_flight
        with _hold_slots(cluster, shard, limit):
            status, headers, body = _get(
                f"{cluster_server.url}/ask?q=q1&session=demo"
            )
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "in-flight limit" in json.loads(body)["error"]

    def test_hammer_unique_traces_and_isolation(self, cluster_server):
        """8 concurrent clients, distinct sessions, fetch+local mix:
        unique trace ids, per-session books stay per-session."""
        base = cluster_server.url
        results = []
        errors = []

        def client(i):
            key = f"hammer-{i}"
            try:
                status, headers, _ = _get(f"{base}/ask?q=q1&session={key}&mode=fetch")
                assert status == 200
                first = headers["X-Repro-Trace-Id"]
                status, headers, body = _get(f"{base}/ask?q=q1&session={key}")
                assert status == 200
                document = json.loads(body)
                assert document["queries_recorded"] == 1
                assert document["may_have_more"] is False
                results.append((first, headers["X-Repro-Trace-Id"]))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((key, exc))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        trace_ids = [tid for pair in results for tid in pair]
        assert len(set(trace_ids)) == len(trace_ids) == 16

    def test_self_check_cluster_probes(self, cluster_server):
        ok, report = self_check(cluster_server.url, probes=_CLUSTER_PROBES)
        assert ok, [row for row in report if not row["ok"]]
        assert any("session=demo" in row["endpoint"] for row in report)


class TestFleetLatencySketches:
    def test_per_shard_ops_feed_sketches(self):
        source = _catalog_source()
        cluster = _cluster(4)
        try:
            for key in ("alice", "bob", "carol"):
                cluster.ask(key, source, query1())
                cluster.answer(key, query1())
            merged = cluster.merged_sketches()
            assert merged["ask"].count == 3
            assert merged["answer"].count == 3
            assert merged["record"].count == 0
            # only shards that served traffic observed anything
            per_shard = sum(
                shard.sketches["ask"].count for shard in cluster._shards
            )
            assert per_shard == 3
        finally:
            cluster.close()

    def test_stats_all_carries_latency_rollup(self):
        source = _catalog_source()
        cluster = _cluster(2)
        try:
            cluster.ask("alice", source, query1())
            rollup = cluster.stats_all()
            assert "ask" in rollup["latency"]
            assert rollup["latency"]["ask"]["count"] == 1
            assert rollup["latency"]["ask"]["p99"] > 0.0
            assert "record" not in rollup["latency"]  # empty sketches omitted
        finally:
            cluster.close()

    def test_merged_quantiles_match_pooled_probe_durations(self):
        """The PR-8 acceptance invariant: fleet quantiles from the
        sketch merge agree (within the sketch's relative-error bound)
        with a brute-force pooled percentile over the exact durations
        the shards observed, captured via ``latency_probe``."""
        import math

        observed = []
        source = _catalog_source()
        cluster = _cluster(
            4, latency_probe=lambda shard, op, s: observed.append((op, s))
        )
        try:
            for i in range(40):
                cluster.answer(f"tenant-{i % 8}", query1())
            merged = cluster.merged_sketches()["answer"]
            durations = sorted(s for op, s in observed if op == "answer")
            assert merged.count == len(durations) == 40
            for q in (0.5, 0.9, 0.99):
                rank = max(0, math.ceil(q * len(durations)) - 1)
                truth = durations[rank]
                estimate = merged.quantile(q)
                assert abs(estimate - truth) <= merged.relative_accuracy * truth
        finally:
            cluster.close()

    def test_shed_operations_do_not_pollute_latency(self):
        cluster = _cluster(
            1, admission=AdmissionController(1, max_in_flight=1, policy="shed")
        )
        try:
            with _hold_slots(cluster, 0, 1):
                with pytest.raises(ShardOverloaded):
                    cluster.answer("alice", query1())
            assert cluster.merged_sketches()["answer"].count == 0
            assert cluster.stats_all()["per_shard"][0]["admission"]["shed"] >= 1
        finally:
            cluster.close()

    def test_cluster_metrics_export_fleet_quantiles(self):
        obs.enable(obs.RingBufferSink())
        from repro.obs.export import validate_prometheus_text

        cluster, source = demo_cluster(shards=4, products=4)
        srv = OpsServer(cluster=cluster, source=source).start()
        try:
            for key in ("demo", "tenant-a", "tenant-b"):
                status, _, _ = _get(
                    srv.url + f"/ask?q=q1&session={key}&mode=fetch"
                )
                assert status == 200
            status, _, body = _get(srv.url + "/metrics")
            assert status == 200
            samples = validate_prometheus_text(body.decode("utf-8"))
            assert samples["repro_cluster_ask_seconds_count"] >= 3
            assert 'repro_cluster_ask_seconds{quantile="0.99"}' in samples
            assert samples["repro_cluster_ask_p99"] > 0.0
            # /slo carries the same books as JSON
            status, _, body = _get(srv.url + "/slo")
            document = json.loads(body)
            assert document["cluster_latency"]["ask"]["count"] >= 3
        finally:
            srv.stop()
            cluster.close()


class _hold_slots:
    """Context manager saturating one shard's admission budget."""

    def __init__(self, cluster, shard: int, limit: int):
        self._cluster = cluster
        self._shard = shard
        self._limit = limit
        self._stack = []

    def __enter__(self):
        for _ in range(self._limit):
            cm = self._cluster.admission.admit(self._shard)
            cm.__enter__()
            self._stack.append(cm)
        return self

    def __exit__(self, *exc):
        while self._stack:
            self._stack.pop().__exit__(None, None, None)
        return False


# -- resilience ------------------------------------------------------------------


class TestClusterResilience:
    """The PR-9 degraded-fan-out and retry/breaker contracts."""

    def _populated(self, shards: int = 4, tenants: int = 8, **kwargs):
        source = _catalog_source()
        cluster = _cluster(shards, **kwargs)
        for i in range(tenants):
            cluster.ask(f"tenant-{i}", source, query1() if i % 2 else query2())
        return cluster, source

    def test_ask_all_degrades_to_a_sound_partial_answer(self):
        """Certain-answer soundness under a failed shard (Thm 2.8/3.14):
        the degraded union is a subset of the healthy fleet's — missing
        answers are allowed (the caveat flag owns them), invented ones
        are not."""
        from repro.faults.inject import fault_scope
        from repro.faults.plan import FaultPlan

        cluster, _ = self._populated()
        try:
            healthy = cluster.ask_all_info(query1())
            assert not healthy["degraded"] and not healthy["failed_shards"]
            victim = cluster.shard_of("tenant-0")
            plan = FaultPlan.parse(f"cluster.task.{victim}:error:p=1")
            with fault_scope(plan):
                degraded = cluster.ask_all_info(query1())
            assert degraded["degraded"] and degraded["may_have_more"]
            assert list(degraded["failed_shards"]) == [victim]
            assert "FaultInjected" in degraded["failed_shards"][victim]
            assert degraded["sessions_answered"] < healthy["sessions_answered"]
            healthy_facts = set(_tree_facts(healthy["sure"]))
            degraded_facts = set(_tree_facts(degraded["sure"]))
            assert degraded_facts <= healthy_facts
            # and the tuple API agrees
            with fault_scope(plan):
                sure, more = cluster.ask_all(query1())
            assert more and set(_tree_facts(sure)) <= healthy_facts
        finally:
            cluster.close()

    def test_repeated_shard_failures_open_the_breaker(self):
        from repro.cluster import ResiliencePolicy
        from repro.faults.inject import fault_scope
        from repro.faults.plan import FaultPlan
        from repro.faults.policies import CircuitOpen

        cluster, source = self._populated(
            resilience=ResiliencePolicy(breaker_failures=2, breaker_cooldown_s=60.0)
        )
        try:
            victim = cluster.shard_of("tenant-0")
            plan = FaultPlan.parse(f"cluster.task.{victim}:error:p=1")
            with fault_scope(plan):
                for _ in range(2):
                    info = cluster.ask_all_info(query1())
                    assert victim in info["failed_shards"]
            assert cluster.breaker(victim).state == "open"
            # disarmed: the open breaker now pre-filters the shard ...
            info = cluster.ask_all_info(query1())
            assert info["degraded"]
            assert "CircuitOpen" in info["failed_shards"][victim]
            # ... and keyed writes to it refuse fast
            with pytest.raises(CircuitOpen):
                cluster.ask("tenant-0", source, query1())
            stats = cluster.stats_all()
            assert stats["per_shard"][victim]["breaker"]["state"] == "open"
            assert stats["per_shard"][victim]["breaker"]["opens"] == 1
        finally:
            cluster.close()

    def test_retry_revives_the_engine_and_absorbs_a_torn_write(self, tmp_path):
        """A transient store fault inside record must not surface: the
        wedged engine is revived from its journal and the retry lands —
        exactly once, even when the crashed attempt already persisted
        the pair (fsync-crash + dedupe)."""
        from repro.faults.inject import fault_scope
        from repro.faults.plan import FaultPlan

        source = _catalog_source()
        cluster = _cluster(2, store=SessionStore(str(tmp_path)))
        try:
            cluster.ask("alice", source, query1())
            torn_pair = (query2(), query2().evaluate(source.document()))
            fsync_pair = (query3(), query3().evaluate(source.document()))
            for effect, pair in (("torn", torn_pair), ("fsync", fsync_pair)):
                plan = FaultPlan.parse(f"store.journal.append:{effect}:nth=1")
                with fault_scope(plan):
                    cluster.record("alice", *pair)
            engine = cluster.engine("alice")
            # one ask + two records; the fsync-crashed pair was already
            # durable when the retry ran, so dedupe kept it exactly once
            assert len(engine.history) == 3
            assert list(engine.history) == [
                engine.history[0],
                torn_pair,
                fsync_pair,
            ]
        finally:
            cluster.close()

        resumed = _cluster(2, store=SessionStore(str(tmp_path)))
        try:
            assert len(resumed.engine("alice").history) == 3
        finally:
            resumed.close()

    def test_stalled_shard_hits_the_gather_deadline(self):
        from repro.cluster import ResiliencePolicy
        from repro.faults.inject import fault_scope
        from repro.faults.plan import FaultPlan

        cluster, _ = self._populated(
            shards=3,
            tenants=6,
            resilience=ResiliencePolicy(ask_all_deadline_s=0.2),
        )
        try:
            victim = cluster.shard_of("tenant-0")
            plan = FaultPlan.parse(f"cluster.task.{victim}:stall:ms=800")
            started = time.perf_counter()
            with fault_scope(plan):
                info = cluster.ask_all_info(query1())
            elapsed = time.perf_counter() - started
            assert info["degraded"]
            assert "DeadlineExceeded" in info["failed_shards"][victim]
            assert elapsed < 0.8  # the fan-out did not wait out the stall
        finally:
            cluster.close()

    def test_in_memory_record_failure_keeps_the_engine(self):
        """Without a store there is no journal to revive from; a failed
        in-memory record leaves existing knowledge untouched."""
        from repro.faults.inject import FaultInjected, fault_scope
        from repro.faults.plan import FaultPlan

        source = _catalog_source()
        cluster = _cluster(2)
        try:
            cluster.ask("alice", source, query1())
            before = cluster.answer("alice", query1())
            plan = FaultPlan.parse("cluster.task.*:error:p=1")
            victim = cluster.shard_of("alice")
            with fault_scope(FaultPlan.parse(f"cluster.task.{victim}:error")):
                info = cluster.ask_all_info(query1())
            assert info["degraded"]
            after = cluster.answer("alice", query1())
            assert _tree_facts(after[0]) == _tree_facts(before[0])
        finally:
            cluster.close()
