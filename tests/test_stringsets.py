"""Finite/cofinite string-set algebra tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stringsets import StringSet


class TestBasics:
    def test_empty_and_all(self):
        assert StringSet.empty().is_empty()
        assert StringSet.all().is_all()
        assert not StringSet.all().is_empty()

    def test_singleton(self):
        s = StringSet.singleton("a")
        assert s.contains("a")
        assert not s.contains("b")
        assert s.is_singleton() == "a"

    def test_excluding(self):
        s = StringSet.excluding(["a", "b"])
        assert not s.contains("a")
        assert s.contains("zzz")
        assert s.is_cofinite

    def test_sample_finite(self):
        assert StringSet({"x", "y"}).sample() in {"x", "y"}

    def test_sample_cofinite_avoids_exclusions(self):
        s = StringSet.excluding(["_str0", "_str1"])
        assert s.contains(s.sample())

    def test_sample_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            StringSet.empty().sample()

    def test_samples_distinct(self):
        samples = list(StringSet.all().samples(4))
        assert len(samples) == len(set(samples)) == 4


words = st.text(alphabet="abc", min_size=0, max_size=3)


def sets():
    return st.builds(
        StringSet,
        st.frozensets(words, max_size=4),
        st.booleans(),
    )


@given(sets(), sets(), words)
@settings(max_examples=200, deadline=None)
def test_union_semantics(a, b, probe):
    assert a.union(b).contains(probe) == (a.contains(probe) or b.contains(probe))


@given(sets(), sets(), words)
@settings(max_examples=200, deadline=None)
def test_intersect_semantics(a, b, probe):
    assert a.intersect(b).contains(probe) == (a.contains(probe) and b.contains(probe))


@given(sets(), words)
@settings(max_examples=200, deadline=None)
def test_complement_semantics(a, probe):
    assert a.complement().contains(probe) == (not a.contains(probe))


@given(sets(), sets())
@settings(max_examples=200, deadline=None)
def test_implies_is_subset(a, b):
    implied = a.implies(b)
    assert implied == a.difference(b).is_empty()
    if not a.is_empty() and implied:
        assert b.contains(a.sample())
