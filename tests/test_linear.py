"""Lemma 3.12: linear ps-queries keep the representation small."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.refine.linear import is_linear, refine_linear_sequence
from repro.refine.refine import consistent_with, refine_sequence
from repro.workloads.blowup import (
    BLOWUP_ALPHABET,
    linear_adversarial_queries,
    linear_nested_queries,
)


class TestLinearDetection:
    def test_path_query_is_linear(self):
        assert is_linear(linear_query(["root", "a", "b"]))

    def test_branching_is_not(self):
        q = PSQuery(pattern("root", children=[pattern("a"), pattern("b")]))
        assert not is_linear(q)

    def test_nonlinear_rejected(self):
        q = PSQuery(pattern("root", children=[pattern("a"), pattern("b")]))
        with pytest.raises(ValueError):
            refine_linear_sequence(BLOWUP_ALPHABET, [(q, DataTree.empty())])


class TestLinearSizes:
    def test_nested_conditions_constant_size(self):
        sizes = [
            refine_linear_sequence(
                BLOWUP_ALPHABET, linear_nested_queries(n)
            ).size()
            for n in range(1, 8)
        ]
        assert max(sizes) == min(sizes), sizes

    def test_beats_plain_refine(self):
        n = 7
        history = linear_nested_queries(n)
        linear_size = refine_linear_sequence(BLOWUP_ALPHABET, history).size()
        plain_size = refine_sequence(BLOWUP_ALPHABET, history).size()
        assert linear_size < plain_size

    def test_adversarial_family_grows(self):
        """The reproduction finding discussed in EXPERIMENTS.md: when
        per-level conditions are independent, downstream behaviours
        genuinely differ and minimization cannot stay constant."""
        sizes = [
            refine_linear_sequence(
                BLOWUP_ALPHABET, linear_adversarial_queries(n)
            ).size()
            for n in range(1, 5)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]


class TestLinearCorrectness:
    def test_agrees_with_plain(self):
        import random

        history = linear_nested_queries(4)
        fast = refine_linear_sequence(BLOWUP_ALPHABET, history)
        slow = refine_sequence(BLOWUP_ALPHABET, history)
        rng = random.Random(1)
        values = [0, 5, 15, 25, 35, 45]
        for trial in range(300):
            kids = []
            for k in range(rng.randint(0, 3)):
                sub = (
                    [node(f"b{trial}_{k}", "b", rng.choice(values))]
                    if rng.random() < 0.6
                    else []
                )
                kids.append(node(f"a{trial}_{k}", "a", rng.choice(values), sub))
            tree = DataTree.build(node(f"r{trial}", "root", 0, kids))
            assert fast.contains(tree) == slow.contains(tree) == consistent_with(
                tree, history
            )

    def test_nonempty_answers(self):
        src = DataTree.build(
            node(
                "r",
                "root",
                0,
                [node("x", "a", 5, [node("y", "b", 0)]), node("z", "a", 50)],
            )
        )
        history = [
            (q, q.evaluate(src)) for q, _e in linear_nested_queries(3)
        ]
        fast = refine_linear_sequence(BLOWUP_ALPHABET, history)
        assert fast.contains(src)
        assert not fast.contains(
            DataTree.build(node("r", "root", 0, [node("z", "a", 50)]))
        )
