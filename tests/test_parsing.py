"""Condition and ps-query text syntax tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Cond
from repro.core.parsing import (
    CondSyntaxError,
    QuerySyntaxError,
    parse_cond,
    parse_query,
)
from repro.core.query import PSQuery, pattern, subtree


class TestParseCond:
    @pytest.mark.parametrize(
        "text,probe,expected",
        [
            ("< 200", 150, True),
            ("< 200", 250, False),
            ('= "elec"', "elec", True),
            ('= "elec"', "tv", False),
            ("!= 0 & != 1", 2, True),
            ("!= 0 & != 1", 1, False),
            ("(>= 10 & < 20) | = 99", 15, True),
            ("(>= 10 & < 20) | = 99", 99, True),
            ("(>= 10 & < 20) | = 99", 25, False),
            ("true", "anything", True),
            ("! = 5", 5, False),
            ("! = 5", 6, True),
            ("= 1/3", Fraction(1, 3), True),
        ],
    )
    def test_semantics(self, text, probe, expected):
        assert parse_cond(text).accepts(probe) == expected

    def test_false(self):
        assert not parse_cond("false").satisfiable()

    def test_precedence_and_binds_tighter(self):
        # a | b & c == a | (b & c)
        cond = parse_cond("= 1 | >= 10 & <= 20")
        assert cond.accepts(1)
        assert cond.accepts(15)
        assert not cond.accepts(5)

    def test_escaped_quote(self):
        cond = parse_cond('= "a\\"b"')
        assert cond.accepts('a"b')

    @pytest.mark.parametrize(
        "bad", ["<", "= ", "(< 5", "< 5)", "5 <", "& = 1", "= 'single'"]
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(CondSyntaxError):
            parse_cond(bad)

    def test_equivalence_with_builders(self):
        assert parse_cond("< 200 & != 100").equivalent(Cond.lt(200) & Cond.ne(100))
        assert parse_cond('!( = "a" | = "b")').equivalent(
            ~(Cond.eq("a") | Cond.eq("b"))
        )


class TestParseQuery:
    def test_query1_figure_2(self):
        text = """
        catalog
          product
            name
            price [< 200]
            cat [= "elec"]
              subcat
        """
        parsed = parse_query(text)
        from repro.workloads.catalog import query1

        assert parsed == query1()

    def test_bar_labels(self):
        parsed = parse_query("catalog\n  ~product [= 0]")
        expected = PSQuery(pattern("catalog", children=[subtree("product", Cond.eq(0))]))
        assert parsed == expected

    def test_comments_ignored(self):
        parsed = parse_query("a  # the root\n  b  # child\n")
        assert parsed.size() == 2

    def test_single_node(self):
        assert parse_query("root").size() == 1

    def test_evaluation_of_parsed_query(self, catalog_doc):
        text = """
        catalog
          product
            name
            cat [= "elec"]
              subcat [= "camera"]
        """
        parsed = parse_query(text)
        from repro.workloads.catalog import query4

        assert parsed.evaluate(catalog_doc) == query4().evaluate(catalog_doc)

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # empty
            "a\nb",  # two roots
            "a\n  b\n      c",  # depth jump (unit 2, then 6)
            "a\n  b [< ]",  # bad condition
            "a\n\tb",  # tabs
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises((QuerySyntaxError, CondSyntaxError)):
            parse_query(bad)

    def test_sibling_label_clash_propagates(self):
        with pytest.raises(ValueError):
            parse_query("r\n  a\n  a [< 1]")


numbers = st.integers(min_value=-50, max_value=50)


@given(
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=numbers,
    probe=numbers,
)
@settings(max_examples=150, deadline=None)
def test_atom_roundtrip_property(op, value, probe):
    cond = parse_cond(f"{op} {value}")
    assert cond.equivalent(Cond.atom(op, value))
    assert cond.accepts(probe) == Cond.atom(op, value).accepts(probe)
