"""Tree type (simplified DTD) tests: DSL parsing and satisfaction."""

import pytest

from repro.core.multiplicity import Atom, Mult
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType


class TestParsing:
    def test_catalog_example(self):
        tt = TreeType.parse(
            """
            root: catalog
            catalog -> product+
            product -> name price cat picture*
            cat     -> subcat
            """
        )
        assert tt.roots == {"catalog"}
        assert tt.atom("catalog").mult("product") is Mult.PLUS
        assert tt.atom("product").mult("name") is Mult.ONE
        assert tt.atom("product").mult("picture") is Mult.STAR
        assert tt.atom("subcat").is_leaf()

    def test_trailing_digit_is_part_of_name(self):
        # regression: lit1 is an element name, not "lit" with mult 1
        tt = TreeType.parse("root: clause\nclause -> lit1 lit2 lit3")
        assert tt.atom("clause").mult("lit1") is Mult.ONE
        assert "lit1" in tt.alphabet

    def test_comments_and_blank_lines(self):
        tt = TreeType.parse("# comment\nroot: r\n\nr -> a?  # trailing\n")
        assert tt.atom("r").mult("a") is Mult.OPT

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError):
            TreeType.parse("a -> b")

    def test_duplicate_rule_rejected(self):
        with pytest.raises(ValueError):
            TreeType.parse("root: a\na -> b\na -> c")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            TreeType.parse("root: a\nnot a rule")

    def test_extra_labels(self):
        tt = TreeType.parse("root: a\na -> b", extra_labels=["ghost"])
        assert "ghost" in tt.alphabet

    def test_roundtrip_through_text(self):
        tt = TreeType.parse("root: a\na -> b+ c?\nb -> c*")
        assert TreeType.parse(tt.to_text()) == tt


class TestValidation:
    def test_unknown_root(self):
        with pytest.raises(ValueError):
            TreeType(["a"], ["b"], {"a": Atom.leaf()})

    def test_rule_mentions_unknown_label(self):
        with pytest.raises(ValueError):
            TreeType(["a"], ["a"], {"a": Atom.of(zzz="*")})


class TestSatisfaction:
    TT = TreeType.parse("root: r\nr -> a+ b?\na -> c*")

    def test_satisfying_tree(self):
        tree = DataTree.build(
            node("r1", "r", 0, [node("a1", "a", 0, [node("c1", "c", 0)])])
        )
        assert self.TT.satisfied_by(tree)

    def test_empty_tree_never_satisfies(self):
        assert not self.TT.satisfied_by(DataTree.empty())
        assert "no root" in self.TT.violation(DataTree.empty())

    def test_wrong_root(self):
        tree = DataTree.single("x", "a")
        assert "root label" in self.TT.violation(tree)

    def test_missing_required_child(self):
        tree = DataTree.single("r1", "r")
        assert "a1" in self.TT.violation(tree) or "0 children" in self.TT.violation(tree)

    def test_too_many_optional_children(self):
        tree = DataTree.build(
            node(
                "r1",
                "r",
                0,
                [node("a1", "a", 0), node("b1", "b", 0), node("b2", "b", 0)],
            )
        )
        assert self.TT.violation(tree) is not None

    def test_forbidden_child_label(self):
        tree = DataTree.build(node("r1", "r", 0, [node("a1", "a", 0), node("x", "c", 0)]))
        violation = self.TT.violation(tree)
        assert violation is not None and "'c'" in violation

    def test_alien_label(self):
        tree = DataTree.build(node("r1", "r", 0, [node("a1", "a", 0), node("z", "zzz", 0)]))
        assert self.TT.violation(tree) is not None

    def test_catalog_demo_satisfies(self):
        from repro.workloads.catalog import catalog_type, demo_catalog

        assert catalog_type().satisfied_by(demo_catalog())
