"""Conjunctive incomplete trees: Theorem 3.8, Corollary 3.9, Theorem 3.10."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import linear_query
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType
from repro.refine.conjunctive import (
    ConjunctiveIncompleteTree,
    refine_plus_sequence,
)
from repro.refine.refine import consistent_with, refine_sequence
from repro.workloads.blowup import BLOWUP_ALPHABET, pair_queries


class TestRefinePlus:
    def test_size_linear_in_history(self):
        """Corollary 3.9 on the Example 3.2 family."""
        sizes = []
        for n in range(1, 7):
            conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(n))
            sizes.append(conj.size())
        increments = [b - a for a, b in zip(sizes, sizes[1:])]
        assert len(set(increments)) == 1, f"growth not linear: {sizes}"

    def test_plain_refine_exponential_same_family(self):
        """Example 3.2: the plain representation doubles per step."""
        sizes = [
            refine_sequence(BLOWUP_ALPHABET, pair_queries(n)).size()
            for n in range(1, 7)
        ]
        increments = [b - a for a, b in zip(sizes, sizes[1:])]
        ratios = [b / a for a, b in zip(increments, increments[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios), sizes

    def test_membership_agrees_with_plain(self):
        history = pair_queries(3)
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history)
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        candidates = [
            DataTree.build(node("r", "root", 0)),
            DataTree.build(node("r", "root", 0, [node("x", "a", 1)])),
            DataTree.build(
                node("r", "root", 0, [node("x", "a", 1), node("y", "b", 2)])
            ),
            DataTree.build(
                node("r", "root", 0, [node("x", "a", 1), node("y", "b", 1)])
            ),
            DataTree.build(
                node("r", "root", 0, [node("x", "a", 9), node("y", "b", 9)])
            ),
            DataTree.empty(),
        ]
        for tree in candidates:
            assert conj.contains(tree) == plain.contains(tree)
            assert conj.contains(tree) == consistent_with(tree, history)

    def test_materialization_agrees(self):
        history = pair_queries(2)
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history)
        materialized = conj.to_incomplete_tree()
        plain = refine_sequence(BLOWUP_ALPHABET, history)
        samples = [
            DataTree.build(node("r", "root", 0, [node("x", "a", v)]))
            for v in (1, 2, 3)
        ]
        for tree in samples:
            assert materialized.contains(tree) == plain.contains(tree)

    def test_incompatible_answer_empties(self):
        q = linear_query(["root", "a"])
        a1 = DataTree.build(node("r", "root", 0, [node("x", "a", 1)]))
        a2 = DataTree.build(node("r", "root", 0, [node("x", "a", 2)]))
        conj = ConjunctiveIncompleteTree.universal(BLOWUP_ALPHABET)
        conj = conj.refine_plus(q, a1, BLOWUP_ALPHABET)
        conj = conj.refine_plus(q, a2, BLOWUP_ALPHABET)
        assert conj.is_empty()


class TestEmptiness:
    def test_consistent_history_nonempty(self):
        conj = refine_plus_sequence(BLOWUP_ALPHABET, pair_queries(3))
        assert not conj.is_empty()

    def test_with_type_constraints(self):
        # type requires exactly one a=5 and the history forbids a=5
        tt = TreeType.parse("root: root\nroot -> a")
        q = linear_query(["root", "a"], [None, Cond.ne(5)])
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 5)]))
        # history says: the a != 5 query returned nothing => all a's are 5...
        conj = refine_plus_sequence(
            BLOWUP_ALPHABET, [(q, DataTree.empty())], tree_type=tt
        )
        assert not conj.is_empty()  # a tree with one a = 5 child exists
        assert conj.contains(src)
        q_all = linear_query(["root", "a"])
        conj2 = conj.refine_plus(q_all, DataTree.empty(), BLOWUP_ALPHABET)
        # now no a at all is allowed, but the type demands one: empty
        assert conj2.is_empty()

    def test_type_checked_in_membership(self):
        tt = TreeType.parse("root: root\nroot -> a")
        conj = refine_plus_sequence(BLOWUP_ALPHABET, [], tree_type=tt)
        assert conj.contains(
            DataTree.build(node("r", "root", 0, [node("x", "a", 0)]))
        )
        assert not conj.contains(DataTree.build(node("r", "root", 0)))
        assert not conj.contains(DataTree.empty())

    def test_requires_layer(self):
        with pytest.raises(ValueError):
            ConjunctiveIncompleteTree([])
