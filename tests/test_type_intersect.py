"""Theorem 3.5: intersecting an incomplete tree with the source type."""

import random

from repro.core.conditions import Cond
from repro.core.multiplicity import Mult
from repro.core.query import linear_query
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType
from repro.incomplete.enumerate import enumerate_trees
from repro.refine.inverse import universal_incomplete
from repro.refine.refine import refine_sequence
from repro.refine.type_intersect import (
    intersect_with_tree_type,
    structural_weakening,
)

ALPHABET = ["root", "a", "b"]


class TestIntersectWithTreeType:
    def test_universal_becomes_type(self):
        tt = TreeType.parse("root: root\nroot -> a+ b?\na -> b*")
        typed = intersect_with_tree_type(universal_incomplete(ALPHABET), tt)
        assert not typed.allows_empty
        for tree in enumerate_trees(typed, max_nodes=4):
            assert tt.satisfied_by(tree), tree.pretty()
        # and conversely on hand-built satisfying trees
        good = DataTree.build(node("1", "root", 0, [node("2", "a", 0)]))
        assert typed.contains(good)
        bad = DataTree.build(node("1", "root", 0, [node("2", "b", 0)]))
        assert not typed.contains(bad)

    def test_exactness_after_refine(self):
        tt = TreeType.parse("root: root\nroot -> a* b?\na -> b*")
        src = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        history = [(q, q.evaluate(src))]
        refined = refine_sequence(ALPHABET, history)
        typed = intersect_with_tree_type(refined, tt)
        assert typed.contains(src)
        for tree in enumerate_trees(typed, max_nodes=5, extra_values=[0, 1, 5]):
            assert tt.satisfied_by(tree)
            assert q.evaluate(tree) == history[0][1]

    def test_required_label_forces_presence(self):
        # root must have exactly one b; refine learns nothing about b
        tt = TreeType.parse("root: root\nroot -> a* b")
        typed = intersect_with_tree_type(universal_incomplete(ALPHABET), tt)
        no_b = DataTree.build(node("1", "root", 0))
        with_b = DataTree.build(node("1", "root", 0, [node("2", "b", 0)]))
        two_b = DataTree.build(
            node("1", "root", 0, [node("2", "b", 0), node("3", "b", 1)])
        )
        assert not typed.contains(no_b)
        assert typed.contains(with_b)
        assert not typed.contains(two_b)

    def test_multiplicity_pushed_onto_exclusive_specializations(self):
        # after a query creating viol/fail splits on 'a', a type rule
        # root -> a forces exactly one 'a' overall: the disjunct expansion
        src = DataTree.build(node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])]))
        q = linear_query(["root", "a", "b"], [None, Cond.gt(0), None])
        refined = refine_sequence(ALPHABET, [(q, q.evaluate(src))])
        tt = TreeType.parse("root: root\nroot -> a\na -> b*")
        typed = intersect_with_tree_type(refined, tt)
        assert typed.contains(src)
        # a second 'a' child is now impossible
        extra = src.with_subtree("r", node("v", "a", -1))
        assert not typed.contains(extra)
        for tree in enumerate_trees(typed, max_nodes=5, extra_values=[0, 1, 5, -1]):
            assert tt.satisfied_by(tree)
            assert q.evaluate(tree) == q.evaluate(src)

    def test_labels_outside_type_pruned(self):
        tt = TreeType.parse("root: root\nroot -> a*")
        typed = intersect_with_tree_type(universal_incomplete(ALPHABET), tt)
        with_b = DataTree.build(node("1", "root", 0, [node("2", "b", 0)]))
        assert not typed.contains(with_b)

    def test_root_filtering(self):
        tt = TreeType.parse("root: a")
        typed = intersect_with_tree_type(universal_incomplete(ALPHABET), tt)
        assert typed.contains(DataTree.single("1", "a"))
        assert not typed.contains(DataTree.single("1", "root"))


class TestStructuralWeakening:
    def test_overapproximates(self):
        tt = TreeType.parse("root: root\nroot -> a+ b?\na -> b*")
        weak = structural_weakening(tt)
        assert weak.is_unambiguous()
        # every typed tree is in the weakening
        typed = intersect_with_tree_type(universal_incomplete(ALPHABET), tt)
        for tree in enumerate_trees(typed, max_nodes=4):
            assert weak.contains(tree)

    def test_still_prunes_structure(self):
        tt = TreeType.parse("root: root\nroot -> a*")
        weak = structural_weakening(tt)
        bad = DataTree.build(node("1", "root", 0, [node("2", "b", 0)]))
        assert not weak.contains(bad)
        assert not weak.contains(DataTree.empty())

    def test_ignores_counting(self):
        tt = TreeType.parse("root: root\nroot -> a")
        weak = structural_weakening(tt)
        # zero or two a's violate the type but pass the weakening
        assert weak.contains(DataTree.single("1", "root"))
        assert weak.contains(
            DataTree.build(node("1", "root", 0, [node("2", "a", 0), node("3", "a", 0)]))
        )
