"""Cross-cutting property-based tests.

These drive the whole pipeline with randomized workloads and check the
paper's semantic identities end to end:

* Refine exactness: membership in the refined representation equals
  answer-consistency, for arbitrary documents/queries over a random
  schema (Theorem 3.4 + 3.5);
* q(T) soundness: any consistent document's answer is represented
  (one half of Theorem 3.14 — the half checkable without enumeration);
* answerability soundness: when Corollary 3.15 says yes, the local
  answer matches the true answer on every consistent document we try.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.answering.answerable import fully_answerable
from repro.answering.query_incomplete import query_incomplete
from repro.core.treetype import TreeType
from repro.incomplete.certainty import certain_prefix, possible_prefix
from repro.mediator.local_query import overlay
from repro.mediator.completion import completion_plan
from repro.mediator.source import InMemorySource
from repro.refine.refine import consistent_with, refine_sequence
from repro.refine.type_intersect import intersect_with_tree_type
from repro.workloads.generators import random_history, random_ps_query, random_tree

SCHEMAS = [
    TreeType.parse("root: r\nr -> a* b?\na -> c*\nb -> c?"),
    TreeType.parse("root: r\nr -> a+\na -> b* c?"),
    TreeType.parse("root: r\nr -> x? y*\ny -> x*"),
]


def build_setting(schema_index: int, doc_seed: int, q_seed: int, n_queries: int):
    tt = SCHEMAS[schema_index % len(SCHEMAS)]
    doc = random_tree(tt, seed=doc_seed, max_depth=4)
    history = random_history(
        tt, doc, n_queries=n_queries, seed=q_seed, max_depth=3
    )
    return tt, doc, history


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=50),
    q_seed=st.integers(min_value=0, max_value=50),
    n_queries=st.integers(min_value=1, max_value=3),
    probe_seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=3, max_size=6
    ),
)
@settings(max_examples=40, deadline=None)
def test_refine_exactness_over_random_workloads(
    schema_index, doc_seed, q_seed, n_queries, probe_seeds
):
    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, n_queries)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    assert knowledge.contains(doc)
    for seed in probe_seeds:
        probe = random_tree(tt, seed=seed, max_depth=4)
        expected = consistent_with(probe, history, tt)
        assert knowledge.contains(probe) == expected, probe.pretty()


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
    ask_seed=st.integers(min_value=100, max_value=140),
)
@settings(max_examples=30, deadline=None)
def test_qT_soundness_over_random_workloads(
    schema_index, doc_seed, q_seed, ask_seed
):
    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    query = random_ps_query(tt, seed=ask_seed, max_depth=3)
    answers = query_incomplete(knowledge, query)
    # the true document's answer must always be represented
    assert answers.contains(query.evaluate(doc))
    # and so must the answers of other consistent documents
    for seed in range(3):
        other = random_tree(tt, seed=10_000 + seed, max_depth=4)
        if consistent_with(other, history, tt):
            assert answers.contains(query.evaluate(other))


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
    ask_seed=st.integers(min_value=200, max_value=240),
)
@settings(max_examples=30, deadline=None)
def test_answerability_soundness(schema_index, doc_seed, q_seed, ask_seed):
    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    query = random_ps_query(tt, seed=ask_seed, max_depth=3)
    answerable, local = fully_answerable(knowledge, query)
    if answerable:
        assert local == query.evaluate(doc)
        for seed in range(3):
            other = random_tree(tt, seed=20_000 + seed, max_depth=4)
            if consistent_with(other, history, tt):
                assert query.evaluate(other) == local


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
    ask_seed=st.integers(min_value=300, max_value=340),
)
@settings(max_examples=25, deadline=None)
def test_completion_answers_correctly(schema_index, doc_seed, q_seed, ask_seed):
    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    query = random_ps_query(tt, seed=ask_seed, max_depth=3)
    plan = completion_plan(knowledge, query)
    source = InMemorySource(doc)
    merged = knowledge.data_tree()
    for local in plan:
        if local.node == "":
            merged = source.ask(local.query)
            break
        answer = source.ask_local(local.query, local.node)
        if not answer.is_empty():
            merged = overlay(merged, answer)
    assert query.evaluate(merged) == query.evaluate(doc)


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_certain_implies_possible(schema_index, doc_seed, q_seed):
    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    # the data tree itself, and the true document, are possible prefixes
    data_tree = knowledge.data_tree()
    if not knowledge.is_empty():
        assert possible_prefix(data_tree, knowledge)
        assert possible_prefix(doc, knowledge)
        if certain_prefix(data_tree, knowledge):
            assert possible_prefix(data_tree, knowledge)


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
    probe_seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2, max_size=4
    ),
)
@settings(max_examples=25, deadline=None)
def test_conjunctive_agrees_with_plain(
    schema_index, doc_seed, q_seed, probe_seeds
):
    """Refine⁺ (layered) and Refine (product) represent the same set."""
    from repro.refine.conjunctive import refine_plus_sequence

    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    plain = refine_sequence(tt.alphabet, history, tree_type=tt)
    conj = refine_plus_sequence(tt.alphabet, history, tree_type=tt)
    assert conj.contains(doc) and plain.contains(doc)
    for seed in probe_seeds:
        probe = random_tree(tt, seed=seed, max_depth=4)
        assert conj.contains(probe) == plain.contains(probe), probe.pretty()


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=20, deadline=None)
def test_xml_view_roundtrip_preserves_semantics(schema_index, doc_seed, q_seed):
    from repro.incomplete.xml_view import incomplete_from_xml, incomplete_to_xml

    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history, tree_type=tt)
    restored = incomplete_from_xml(incomplete_to_xml(knowledge))
    assert restored.contains(doc) == knowledge.contains(doc)
    for seed in range(3):
        probe = random_tree(tt, seed=30_000 + seed, max_depth=4)
        assert restored.contains(probe) == knowledge.contains(probe)


@given(
    schema_index=st.integers(min_value=0, max_value=2),
    doc_seed=st.integers(min_value=0, max_value=30),
    q_seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=20, deadline=None)
def test_minimization_preserves_rep(schema_index, doc_seed, q_seed):
    from repro.refine.minimize import merge_equivalent_symbols

    tt, doc, history = build_setting(schema_index, doc_seed, q_seed, 2)
    knowledge = refine_sequence(tt.alphabet, history)
    minimized = merge_equivalent_symbols(knowledge)
    assert minimized.size() <= knowledge.size()
    assert minimized.contains(doc)
    for seed in range(4):
        probe = random_tree(tt, seed=40_000 + seed, max_depth=4)
        assert minimized.contains(probe) == knowledge.contains(probe)
