"""Multiple sources merged under a virtual root (Section 3.1)."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, pattern
from repro.core.tree import DataTree, node
from repro.mediator.source import InMemorySource, merge_sources
from repro.mediator.webhouse import Webhouse
from repro.workloads.catalog import catalog_type, generate_catalog


class TestMergeSources:
    def test_two_catalogs_under_virtual_root(self):
        doc_a = generate_catalog(3, seed=1)
        # regenerate with disjoint ids by prefixing through rebuild
        doc_b = _prefix_ids(generate_catalog(2, seed=2), "B")
        merged = merge_sources({"shopA": doc_a, "shopB": doc_b})
        assert merged.label(merged.root) == "sources"
        assert len(merged.children(merged.root)) == 2
        assert len(merged) == len(doc_a) + len(doc_b) + 1

    def test_id_clash_rejected(self):
        doc_a = generate_catalog(2, seed=1)
        doc_b = generate_catalog(2, seed=3)  # same generated ids
        with pytest.raises(ValueError):
            merge_sources({"a": doc_a, "b": doc_b})

    def test_empty_sources_skipped(self):
        doc = _prefix_ids(generate_catalog(2, seed=1), "A")
        merged = merge_sources({"a": doc, "b": DataTree.empty()})
        assert len(merged.children(merged.root)) == 1

    def test_webhouse_over_merged_sources(self):
        doc_a = _prefix_ids(generate_catalog(4, seed=4), "A")
        doc_b = _prefix_ids(generate_catalog(4, seed=5), "B")
        merged = merge_sources({"a": doc_a, "b": doc_b})
        alphabet = sorted(merged.labels())
        source = InMemorySource(merged)
        webhouse = Webhouse(alphabet)
        q = PSQuery(
            pattern(
                "sources",
                children=[
                    pattern(
                        "catalog",
                        children=[
                            pattern(
                                "product",
                                children=[
                                    pattern("name"),
                                    pattern("price", Cond.lt(500)),
                                ],
                            )
                        ],
                    )
                ],
            )
        )
        answer = webhouse.ask(source, q)
        assert answer == q.evaluate(merged)
        # answers span both sources
        names = {
            answer.value(n)
            for n in answer.node_ids()
            if answer.label(n) == "name"
        }
        prefixes = {str(n)[0] for n in (x for x in answer.node_ids()) if str(n).startswith(("A", "B"))}
        assert webhouse.can_answer(q)


def _prefix_ids(tree: DataTree, prefix: str) -> DataTree:
    from repro.core.tree import NodeSpec
    from repro.core.tree import node as make_node

    def build(node_id) -> NodeSpec:
        return make_node(
            f"{prefix}{node_id}",
            tree.label(node_id),
            tree.value(node_id),
            [build(c) for c in tree.children(node_id)],
        )

    return DataTree.build(build(tree.root))
