"""Remark 4.4: condition classes fold data values into the alphabet."""

from repro.core.conditions import Cond
from repro.core.tree import DataTree, node
from repro.extensions.value_classes import (
    class_of,
    condition_classes,
    refine_labels,
    refined_alphabet,
    refined_label,
)


class TestClasses:
    def test_conditions_constant_on_classes(self):
        conds = [Cond.lt(100), Cond.eq("elec"), Cond.ge(50)]
        classes = condition_classes(conds)
        for cell in classes:
            for cond in conds:
                inter = cell.intersect(cond.values)
                assert inter.is_empty() or inter == cell

    def test_every_value_covered(self):
        conds = [Cond.lt(0), Cond.eq("x")]
        classes = condition_classes(conds)
        for value in (-5, 0, 5, "x", "y"):
            from repro.core.values import as_value

            index = class_of(as_value(value), classes)
            assert 0 <= index < len(classes)

    def test_equal_condition_profile_same_class(self):
        conds = [Cond.lt(100)]
        classes = condition_classes(conds)
        from repro.core.values import as_value

        assert class_of(as_value(1), classes) == class_of(as_value(50), classes)
        assert class_of(as_value(1), classes) != class_of(as_value(200), classes)


class TestRefineLabels:
    def doc(self):
        return DataTree.build(
            node(
                "r",
                "product",
                0,
                [node("p1", "price", 120), node("p2", "price", 250)],
            )
        )

    def test_labels_refined_by_class(self):
        conds = [Cond.lt(200)]
        refined = refine_labels(self.doc(), conds)
        # the two price nodes land in different classes
        assert refined.label("p1") != refined.label("p2")
        assert refined.label("p1").startswith("price#")
        # ids and values survive
        assert refined.value("p1") == 120

    def test_machine_distinguishes_values_via_labels(self):
        """A value-blind search automaton over the refined alphabet finds
        cheap prices — simulating a value test."""
        from repro.extensions.binary_encoding import encode
        from repro.extensions.pebble import (
            DOWN_LEFT,
            DOWN_RIGHT,
            PLACE,
            Move,
            PebbleAutomaton,
        )

        conds = [Cond.lt(200)]
        refined = refine_labels(self.doc(), conds)
        cheap_label = refined.label("p1")
        alphabet = set(refined.labels()) | {"#"}
        transitions = {}
        for label in alphabet:
            moves = []
            if label == cheap_label:
                moves.append(Move(PLACE, "yes"))
            if label != "#":
                moves.append(Move(DOWN_LEFT, "scan"))
                moves.append(Move(DOWN_RIGHT, "scan"))
            transitions[("scan", label, frozenset())] = tuple(moves)
        automaton = PebbleAutomaton(2, "scan", ["yes"], transitions)
        assert automaton.accepts(encode(refined))

        # remove the cheap price: no longer accepted
        expensive_only = DataTree.build(
            node("r", "product", 0, [node("p2", "price", 250)])
        )
        assert not automaton.accepts(encode(refine_labels(expensive_only, conds)))

    def test_refined_alphabet_size(self):
        conds = [Cond.lt(10), Cond.lt(20)]
        labels = ["a", "b"]
        alphabet = refined_alphabet(labels, conds)
        classes = condition_classes(conds)
        assert len(alphabet) == len(labels) * len(classes)
        assert refined_label("a", 0) in alphabet

    def test_empty_tree(self):
        assert refine_labels(DataTree.empty(), [Cond.lt(1)]).is_empty()
