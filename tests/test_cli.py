"""CLI entry point tests (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["repro", "demo"]) == 0
        out = capsys.readouterr().out
        assert "cameras known for sure" in out
        assert "Leica" in out

    def test_blowup(self, capsys):
        assert main(["repro", "blowup", "3"]) == 0
        out = capsys.readouterr().out
        assert "conjunctive" in out
        assert "93" in out  # plain size at n=3

    def test_xml(self, tmp_path, capsys):
        from repro.core.tree import DataTree, node
        from repro.core.xml_io import tree_to_xml

        doc = DataTree.build(node("r", "root", 0, [node("a1", "a", "x")]))
        path = tmp_path / "doc.xml"
        path.write_text(tree_to_xml(doc))
        assert main(["repro", "xml", str(path)]) == 0
        out = capsys.readouterr().out
        assert "root[r]" in out

    def test_stats_emits_valid_json(self, capsys):
        import json

        assert main(["repro", "stats", "5"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == {"name": "catalog", "products": 5}
        assert doc["webhouse"]["queries_recorded"] >= 2
        counters = doc["metrics"]["counters"]
        assert counters["refine.steps"] >= 2
        assert counters["matching.max_flow_calls"] > 0
        growth = doc["metrics"]["histograms"]["webhouse.knowledge_size"]["recent"]
        assert len(growth) >= 2 and growth == sorted(growth)
        span_names = set()

        def walk(span):
            span_names.add(span["name"])
            for child in span.get("children", ()):
                walk(child)

        for root in doc["trace"]:
            walk(root)
        assert "refine.step" in span_names
        assert "webhouse.record" in span_names

    def test_stats_trace_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["repro", "stats", "--trace", str(path), "5"]) == 0
        json.loads(capsys.readouterr().out)  # stdout stays valid JSON
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events
        assert {"refine.step"} <= {e["name"] for e in events}
        assert all("duration_s" in e for e in events if e["type"] == "span")

    def test_stats_trace_missing_file_argument(self):
        assert main(["repro", "stats", "--trace"]) == 2

    def test_stats_leaves_obs_disabled(self, capsys):
        import repro.obs as obs

        assert main(["repro", "stats", "5"]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_help(self, capsys):
        assert main(["repro", "--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_no_command(self):
        assert main(["repro"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["repro", "nonsense"]) == 2

    def test_xml_missing_file_argument(self):
        assert main(["repro", "xml"]) == 2


class TestDiagnosticsCli:
    def test_stats_profile_flag(self, capsys):
        import json

        assert main(["repro", "stats", "--profile", "4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        profile = doc["profile"]
        assert profile["roots"] >= 1
        assert "refine.step" in profile["by_name"]
        assert profile["hot_paths"]

    def test_profile_text(self, capsys):
        assert main(["repro", "profile", "--top", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "refine.step" in out
        assert "hot paths" in out

    def test_profile_json(self, capsys):
        import json

        assert main(["repro", "profile", "--json", "4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "webhouse.ask" in doc["by_name"]

    def test_explain_refine(self, capsys):
        assert main(["repro", "explain", "refine", "3"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN refine" in out
        assert "refine.inverse" in out

    def test_explain_ask_json(self, capsys):
        import json

        assert main(["repro", "explain", "ask", "--json", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["operation"].startswith("ask")
        assert any(p["phase"] == "query_incomplete" for p in doc["phases"])

    def test_explain_needs_operation(self):
        assert main(["repro", "explain"]) == 2
        assert main(["repro", "explain", "nonsense"]) == 2

    def test_export_prometheus_stdout(self, capsys):
        import repro.obs as obs

        assert main(["repro", "export", "--prometheus", "4"]) == 0
        out = capsys.readouterr().out
        samples = obs.validate_prometheus_text(out)
        assert samples["repro_refine_steps_total"] >= 2

    def test_export_default_is_prometheus(self, capsys):
        assert main(["repro", "export", "4"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_export_chrome_file(self, tmp_path, capsys):
        import json

        import repro.obs as obs

        target = tmp_path / "trace.json"
        assert main(["repro", "export", "--chrome", str(target), "4"]) == 0
        document = json.loads(target.read_text())
        assert obs.validate_chrome_trace(document) > 0
        names = {e["name"] for e in document["traceEvents"]}
        assert "refine.step" in names

    def test_export_prometheus_file(self, tmp_path, capsys):
        import repro.obs as obs

        target = tmp_path / "metrics.prom"
        assert main(["repro", "export", "--prometheus", str(target), "4"]) == 0
        obs.validate_prometheus_text(target.read_text())

    def test_diagnostics_commands_leave_obs_disabled(self, capsys):
        import repro.obs as obs

        for argv in (
            ["repro", "profile", "3"],
            ["repro", "export", "3"],
        ):
            assert main(argv) == 0
            capsys.readouterr()
            assert not obs.enabled()
