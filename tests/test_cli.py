"""CLI entry point tests (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["repro", "demo"]) == 0
        out = capsys.readouterr().out
        assert "cameras known for sure" in out
        assert "Leica" in out

    def test_blowup(self, capsys):
        assert main(["repro", "blowup", "3"]) == 0
        out = capsys.readouterr().out
        assert "conjunctive" in out
        assert "93" in out  # plain size at n=3

    def test_xml(self, tmp_path, capsys):
        from repro.core.tree import DataTree, node
        from repro.core.xml_io import tree_to_xml

        doc = DataTree.build(node("r", "root", 0, [node("a1", "a", "x")]))
        path = tmp_path / "doc.xml"
        path.write_text(tree_to_xml(doc))
        assert main(["repro", "xml", str(path)]) == 0
        out = capsys.readouterr().out
        assert "root[r]" in out

    def test_help(self, capsys):
        assert main(["repro", "--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_no_command(self):
        assert main(["repro"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["repro", "nonsense"]) == 2

    def test_xml_missing_file_argument(self):
        assert main(["repro", "xml"]) == 2
