"""CLI entry point tests (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["repro", "demo"]) == 0
        out = capsys.readouterr().out
        assert "cameras known for sure" in out
        assert "Leica" in out

    def test_blowup(self, capsys):
        assert main(["repro", "blowup", "3"]) == 0
        out = capsys.readouterr().out
        assert "conjunctive" in out
        assert "93" in out  # plain size at n=3

    def test_xml(self, tmp_path, capsys):
        from repro.core.tree import DataTree, node
        from repro.core.xml_io import tree_to_xml

        doc = DataTree.build(node("r", "root", 0, [node("a1", "a", "x")]))
        path = tmp_path / "doc.xml"
        path.write_text(tree_to_xml(doc))
        assert main(["repro", "xml", str(path)]) == 0
        out = capsys.readouterr().out
        assert "root[r]" in out

    def test_stats_emits_valid_json(self, capsys):
        import json

        assert main(["repro", "stats", "5"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == {"name": "catalog", "products": 5}
        assert doc["webhouse"]["queries_recorded"] >= 2
        counters = doc["metrics"]["counters"]
        assert counters["refine.steps"] >= 2
        assert counters["matching.max_flow_calls"] > 0
        growth = doc["metrics"]["histograms"]["webhouse.knowledge_size"]["recent"]
        assert len(growth) >= 2 and growth == sorted(growth)
        span_names = set()

        def walk(span):
            span_names.add(span["name"])
            for child in span.get("children", ()):
                walk(child)

        for root in doc["trace"]:
            walk(root)
        assert "refine.step" in span_names
        assert "webhouse.record" in span_names

    def test_stats_trace_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["repro", "stats", "--trace", str(path), "5"]) == 0
        json.loads(capsys.readouterr().out)  # stdout stays valid JSON
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events
        assert {"refine.step"} <= {e["name"] for e in events}
        assert all("duration_s" in e for e in events if e["type"] == "span")

    def test_stats_trace_missing_file_argument(self):
        assert main(["repro", "stats", "--trace"]) == 2

    def test_stats_leaves_obs_disabled(self, capsys):
        import repro.obs as obs

        assert main(["repro", "stats", "5"]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_help(self, capsys):
        assert main(["repro", "--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_no_command(self):
        assert main(["repro"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["repro", "nonsense"]) == 2

    def test_xml_missing_file_argument(self):
        assert main(["repro", "xml"]) == 2
