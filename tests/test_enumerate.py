"""Enumeration-oracle sanity: everything enumerated is a member, and
small members are all enumerated."""

from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction
from repro.core.tree import DataTree, node
from repro.incomplete.conditional import ConditionalTreeType
from repro.incomplete.enumerate import answer_set, canonical_form, enumerate_trees
from repro.incomplete.incomplete_tree import IncompleteTree


def small_incomplete():
    tau = ConditionalTreeType.simple(
        ["r"],
        {
            "r": Disjunction.single(Atom.of(a="?", b="*")),
            "a": Disjunction.leaf(),
            "b": Disjunction.leaf(),
        },
        {"a": Cond.gt(0)},
    )
    return IncompleteTree({}, tau)


class TestEnumerate:
    def test_enumerated_are_members(self, example_2_2):
        incomplete, _q = example_2_2
        for tree in enumerate_trees(incomplete, max_nodes=5, extra_values=[0, 1]):
            assert incomplete.contains(tree)

    def test_exhaustive_up_to_budget(self):
        incomplete = small_incomplete()
        trees = enumerate_trees(incomplete, max_nodes=3, values_per_cond=1)
        shapes = {
            tuple(sorted(t.label(n) for n in t.node_ids())) for t in trees
        }
        # r | r,a | r,b | r,a,b | r,b,b  — all shapes with <= 3 nodes
        assert ("r",) in shapes
        assert ("a", "r") in shapes
        assert ("b", "r") in shapes
        assert ("a", "b", "r") in shapes
        assert ("b", "b", "r") in shapes

    def test_budget_respected(self):
        for tree in enumerate_trees(small_incomplete(), max_nodes=4):
            assert len(tree) <= 4

    def test_allows_empty_included(self):
        incomplete = small_incomplete().with_allows_empty(True)
        trees = enumerate_trees(incomplete, max_nodes=2)
        assert any(t.is_empty() for t in trees)

    def test_max_trees_cap(self):
        trees = enumerate_trees(small_incomplete(), max_nodes=6, max_trees=3)
        assert len(trees) == 3

    def test_pivot_values_used(self):
        incomplete = small_incomplete()
        trees = enumerate_trees(
            incomplete, max_nodes=2, values_per_cond=0, extra_values=[7]
        )
        values = {t.value(n) for t in trees for n in t.node_ids()}
        assert 7 in values

    def test_data_node_ids_kept(self, example_2_2):
        incomplete, _q = example_2_2
        for tree in enumerate_trees(incomplete, max_nodes=4):
            if not tree.is_empty():
                assert tree.root == "r"
                assert "n" in tree


class TestCanonicalForm:
    def test_fresh_ids_ignored(self):
        a = DataTree.build(node("x", "r", 0, [node("y", "a", 1)]))
        b = DataTree.build(node("p", "r", 0, [node("q", "a", 1)]))
        assert canonical_form(a) == canonical_form(b)

    def test_anchored_ids_matter(self):
        a = DataTree.build(node("x", "r", 0))
        b = DataTree.build(node("p", "r", 0))
        assert canonical_form(a, ["x", "p"]) != canonical_form(b, ["x", "p"])

    def test_child_order_ignored(self):
        a = DataTree.build(node("x", "r", 0, [node("y", "a", 1), node("z", "b", 2)]))
        b = DataTree.build(node("x", "r", 0, [node("z", "b", 2), node("y", "a", 1)]))
        assert canonical_form(a) == canonical_form(b)

    def test_values_matter(self):
        a = DataTree.build(node("x", "r", 0))
        b = DataTree.build(node("x", "r", 1))
        assert canonical_form(a) != canonical_form(b)

    def test_empty(self):
        assert canonical_form(DataTree.empty()) == ("empty",)


class TestAnswerSet:
    def test_answer_set_collects_canonical_answers(self, example_2_2):
        incomplete, query = example_2_2
        trees = enumerate_trees(incomplete, max_nodes=4, extra_values=[0, 1])
        answers = answer_set(query, trees, anchored=["r", "n"])
        assert ("empty",) in answers  # some sources yield no match
        assert len(answers) > 1
