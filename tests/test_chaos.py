"""The chaos suite: seeded fault schedules over record/crash/recover.

The PR-9 headline proof.  Every cycle drives a durable session through
a random workload while a seeded :class:`FaultPlan` tears journal
appends, fails fsyncs, and damages snapshot writes; after every
simulated crash the recovered state must satisfy Theorem 3.5 — the
recovered history is exactly the acknowledged prefix (± the one
in-flight pair), and the recovered knowledge is
``incomplete_equivalent`` to a fault-free replay of that history.

Two *mutation* tests close the loop on the suite itself: with a
recovery path deliberately broken under ``monkeypatch`` (snapshot
verify-before-promote disabled; resume dropping a journaled pair), the
same seeds must *report violations* — a chaos suite that cannot catch
a planted bug proves nothing.  The verify-before-promote mutation is
not hypothetical: it is the real clobbering bug this suite found while
being built (see ``write_snapshot``'s docstring).
"""

from __future__ import annotations

import json

import pytest

import repro.store.snapshot as snapshot_module
from repro.__main__ import main as cli_main
from repro.faults.chaos import (
    ChaosResult,
    chaos_schedule,
    run_chaos_cycle,
    run_chaos_sweep,
)
from repro.faults.plan import FaultPlan
from repro.mediator.webhouse import Webhouse

#: Seeds the parametrized sweep covers (the acceptance floor is 50).
SWEEP_SEEDS = range(54)

#: Results accumulated by the sweep, for the aggregate coverage check.
_SWEEP_RESULTS: list = []


class TestChaosSweep:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_seeded_cycle_recovers_equivalently(self, seed, tmp_path):
        result = run_chaos_cycle(seed, str(tmp_path))
        _SWEEP_RESULTS.append(result)
        assert result.ok, "\n".join(result.violations) + f"\n  repro: {result.repro()}"
        assert result.checks >= 1  # the final recovery always checks

    def test_sweep_actually_exercised_faults(self):
        """Guard against a vacuous sweep: across the seeds, faults must
        have fired, crashes recovered, and records landed."""
        assert len(_SWEEP_RESULTS) >= 50
        assert sum(r.faults_fired for r in _SWEEP_RESULTS) >= len(_SWEEP_RESULTS)
        assert sum(r.crashes for r in _SWEEP_RESULTS) >= len(_SWEEP_RESULTS)
        assert sum(r.records for r in _SWEEP_RESULTS) >= 8 * len(_SWEEP_RESULTS) // 2
        assert sum(r.checks for r in _SWEEP_RESULTS) > sum(
            r.crashes for r in _SWEEP_RESULTS
        ) // 2


class TestChaosDeterminism:
    def test_schedule_is_seed_deterministic(self):
        assert chaos_schedule(9).spec() == chaos_schedule(9).spec()
        specs = {chaos_schedule(seed).spec() for seed in range(20)}
        assert len(specs) > 10  # different seeds draw different plans

    def test_cycle_is_reproducible(self, tmp_path):
        a = run_chaos_cycle(3, str(tmp_path / "a"))
        b = run_chaos_cycle(3, str(tmp_path / "b"))
        assert a.to_json() == b.to_json()

    def test_explicit_plan_overrides_the_schedule(self, tmp_path):
        plan = FaultPlan.parse("store.journal.append:torn:nth=2")
        result = run_chaos_cycle(1, str(tmp_path), plan=plan)
        assert result.ok, result.violations
        assert result.plan_spec == plan.spec()
        assert result.faults_fired == 1

    def test_result_repro_line(self):
        result = ChaosResult(seed=4, plan_spec="s:error")
        assert result.repro() == "python -m repro chaos --seed 4 --plan 's:error'"
        assert result.to_json()["ok"] is True


class TestChaosCatchesPlantedBugs:
    """Acceptance: a deliberately broken recovery path must be caught."""

    def test_catches_snapshot_promotion_without_verification(
        self, tmp_path, monkeypatch
    ):
        """Re-plant the clobbering bug the suite originally found: skip
        the temp-file verification in ``write_snapshot``, so a damaged
        re-checkpoint overwrites the only good snapshot of compacted
        records.  The sweep must notice lost history."""
        real = snapshot_module._read_snapshot

        def unverified(path):
            if path.endswith(".tmp"):
                return (0, None, [])  # "looks fine" — promote anything
            return real(path)

        monkeypatch.setattr(snapshot_module, "_read_snapshot", unverified)
        results = run_chaos_sweep(range(20), str(tmp_path))
        broken = [r for r in results if not r.ok]
        assert broken, "the sweep failed to catch the planted snapshot bug"
        assert any(
            "recovered history" in violation or "Theorem 3.5" in violation
            for r in broken
            for violation in r.violations
        )

    def test_catches_resume_dropping_an_acknowledged_pair(
        self, tmp_path, monkeypatch
    ):
        """Recovery that silently forgets the last journaled pair must
        trip the acknowledged-prefix check on the very first cycle."""

        class ForgetfulWebhouse(Webhouse):
            @classmethod
            def resume(cls, store, name):
                webhouse = Webhouse.resume(store, name)
                if webhouse._history:
                    webhouse._history.pop()
                return webhouse

        import repro.faults.chaos as chaos_module

        monkeypatch.setattr(chaos_module, "Webhouse", ForgetfulWebhouse)
        result = run_chaos_cycle(0, str(tmp_path))
        assert not result.ok
        assert any(
            "durability or ordering broken" in violation
            or "acknowledged" in violation
            for violation in result.violations
        )


class TestChaosCli:
    def test_seed_range_json(self, tmp_path, capsys):
        code = cli_main(
            [
                "repro",
                "chaos",
                "--seeds",
                "0:3",
                "--json",
                "--root",
                str(tmp_path),
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True and summary["cycles"] == 3
        assert summary["violations"] == 0 and summary["failures"] == []
        assert summary["crashes"] >= 3 and summary["equivalence_checks"] >= 3

    def test_single_seed_with_plan(self, tmp_path, capsys):
        code = cli_main(
            [
                "repro",
                "chaos",
                "--seed",
                "7",
                "--plan",
                "store.journal.append:fsync:nth=2",
                "--root",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cycles" in out and "0 violations" in out

    def test_bad_arguments_are_usage_errors(self, capsys):
        assert cli_main(["repro", "chaos", "--seed", "1", "--seeds", "0:2"]) == 2
        assert cli_main(["repro", "chaos", "--plan", "not-a-plan"]) == 2
        assert cli_main(["repro", "chaos", "--seeds", "backwards"]) == 2
        capsys.readouterr()
