"""Multiplicity atom / disjunction / conjunction tests."""

import pytest

from repro.core.multiplicity import (
    Atom,
    Conjunction,
    Disjunction,
    Mult,
    parse_mult,
)


class TestMult:
    @pytest.mark.parametrize(
        "mult,counts_ok,counts_bad",
        [
            (Mult.ONE, [1], [0, 2]),
            (Mult.OPT, [0, 1], [2]),
            (Mult.PLUS, [1, 5], [0]),
            (Mult.STAR, [0, 1, 9], []),
        ],
    )
    def test_allows(self, mult, counts_ok, counts_bad):
        for c in counts_ok:
            assert mult.allows(c)
        for c in counts_bad:
            assert not mult.allows(c)

    def test_meet_table(self):
        assert Mult.ONE.meet(Mult.STAR) is Mult.ONE
        assert Mult.STAR.meet(Mult.STAR) is Mult.STAR
        assert Mult.PLUS.meet(Mult.OPT) is Mult.ONE
        assert Mult.PLUS.meet(Mult.STAR) is Mult.PLUS
        assert Mult.OPT.meet(Mult.STAR) is Mult.OPT

    def test_meet_is_count_intersection(self):
        for a in Mult:
            for b in Mult:
                met = a.meet(b)
                for count in range(4):
                    both = a.allows(count) and b.allows(count)
                    assert met is not None
                    assert met.allows(count) == both

    def test_relax_and_require(self):
        assert Mult.ONE.relaxed() is Mult.OPT
        assert Mult.PLUS.relaxed() is Mult.STAR
        assert Mult.OPT.required_version() is Mult.ONE
        assert Mult.STAR.required_version() is Mult.PLUS

    def test_parse(self):
        assert parse_mult("*") is Mult.STAR
        assert parse_mult("⋆") is Mult.STAR
        assert parse_mult("?") is Mult.OPT
        with pytest.raises(ValueError):
            parse_mult("x")


class TestAtom:
    def test_leaf(self):
        assert Atom.leaf().is_leaf()
        assert Atom.leaf().required_symbols() == ()

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(ValueError):
            Atom([("a", Mult.ONE), ("a", Mult.STAR)])

    def test_of_and_accessors(self):
        atom = Atom.of(name="1", picture="*", price="?")
        assert atom.mult("name") is Mult.ONE
        assert atom.mult("absent") is None
        assert set(atom.required_symbols()) == {"name"}
        assert atom.size() == 3

    def test_rewrites(self):
        atom = Atom.of(a="1", b="*")
        assert atom.without("a") == Atom.of(b="*")
        assert atom.with_mult("b", Mult.PLUS).mult("b") is Mult.PLUS
        assert atom.restrict(["a"]) == Atom.of(a="1")
        renamed = atom.rename({"a": "c"})
        assert renamed.mult("c") is Mult.ONE

    def test_merge_disjoint(self):
        merged = Atom.of(a="1").merge(Atom.of(b="*"))
        assert set(merged.symbols) == {"a", "b"}
        with pytest.raises(ValueError):
            Atom.of(a="1").merge(Atom.of(a="*"))

    def test_equality_order_independent(self):
        assert Atom([("a", Mult.ONE), ("b", Mult.STAR)]) == Atom(
            [("b", Mult.STAR), ("a", Mult.ONE)]
        )


class TestDisjunction:
    def test_deduplication(self):
        d = Disjunction([Atom.of(a="1"), Atom.of(a="1"), Atom.leaf()])
        assert len(d) == 2

    def test_never_vs_leaf(self):
        assert Disjunction.never().is_never()
        assert not Disjunction.leaf().is_never()

    def test_map_atoms_drop(self):
        d = Disjunction([Atom.of(a="1"), Atom.of(b="1")])
        kept = d.map_atoms(lambda atom: atom if "a" in atom.symbols else None)
        assert len(kept) == 1

    def test_symbols(self):
        d = Disjunction([Atom.of(a="1", b="*"), Atom.of(c="?")])
        assert set(d.symbols()) == {"a", "b", "c"}

    def test_size_counts_entries(self):
        d = Disjunction([Atom.of(a="1", b="*"), Atom.leaf()])
        assert d.size() == 3  # 2 entries + 1 for the empty atom


class TestConjunction:
    def test_requires_conjunct(self):
        with pytest.raises(ValueError):
            Conjunction([])

    def test_choices_enumerates_product(self):
        c = Conjunction(
            [
                Disjunction([Atom.of(a="1"), Atom.of(b="1")]),
                Disjunction([Atom.of(c="1")]),
            ]
        )
        assert len(list(c.choices())) == 2

    def test_and_also(self):
        c = Conjunction.single(Disjunction.leaf()).and_also(Disjunction.leaf())
        assert len(c) == 2
