"""Error handling across the public API: bad inputs fail loudly and
informatively, never silently."""

import pytest

from repro import (
    Cond,
    DataTree,
    InMemorySource,
    TreeType,
    Webhouse,
    linear_query,
    node,
)
from repro.core.query import PSQuery, pattern
from repro.refine.inverse import answer_witness, inverse_incomplete
from repro.workloads.catalog import catalog_type, demo_catalog, query1


class TestSourceValidation:
    def test_source_rejects_type_violation(self):
        bad_doc = DataTree.build(node("r", "product", 0))  # wrong root
        with pytest.raises(ValueError, match="violates its type"):
            InMemorySource(bad_doc, catalog_type())

    def test_local_query_unknown_node(self):
        source = InMemorySource(demo_catalog())
        with pytest.raises(KeyError):
            source.ask_local(linear_query(["product"]), "nonexistent")


class TestRefineValidation:
    def test_answer_must_match_query(self):
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        fake_answer = DataTree.build(node("r", "root", 0, [node("x", "a", -5)]))
        with pytest.raises(ValueError, match="violates condition"):
            inverse_incomplete(q, fake_answer, ["root", "a"])

    def test_answer_label_mismatch(self):
        q = linear_query(["root", "a"])
        fake = DataTree.build(node("r", "catalog", 0))
        with pytest.raises(ValueError, match="label"):
            answer_witness(q, fake)

    def test_node_id_label_collision_detected(self):
        # a document whose node id equals an element label would corrupt
        # the shared namespace; the construction refuses
        q = linear_query(["root", "a"])
        doc = DataTree.build(node("root", "root", 0, [node("x", "a", 1)]))
        with pytest.raises(ValueError, match="coincide with element labels"):
            inverse_incomplete(q, q.evaluate(doc), ["root", "a"])


class TestWebhouseGuards:
    def test_answer_locally_raises_when_unanswerable(self):
        tt = catalog_type()
        source = InMemorySource(demo_catalog(), tt)
        wh = Webhouse(tt.alphabet, tree_type=tt)
        wh.ask(source, query1())
        from repro.workloads.catalog import query4

        with pytest.raises(ValueError, match="not fully answerable"):
            wh.answer_locally(query4())

    def test_alphabet_extended_by_type(self):
        tt = catalog_type()
        wh = Webhouse(["catalog"], tree_type=tt)  # too-narrow alphabet
        # the tree type's alphabet is folded in: queries over it work
        source = InMemorySource(demo_catalog(), tt)
        answer = wh.ask(source, query1())
        assert not answer.is_empty()


class TestQueryStructureErrors:
    def test_bar_with_children_rejected(self):
        from repro.core.query import QueryNode

        with pytest.raises(ValueError, match="leaves"):
            QueryNode("a", Cond.true(), True, (pattern("b"),))

    def test_duplicate_sibling_labels_rejected(self):
        with pytest.raises(ValueError, match="share label"):
            pattern("r", children=[pattern("a"), pattern("a")])


class TestTreeTypeErrors:
    def test_parse_reports_offending_line(self):
        with pytest.raises(ValueError, match="not a rule"):
            TreeType.parse("root: r\nthis is not a rule")

    def test_violation_messages_are_specific(self):
        tt = TreeType.parse("root: r\nr -> a")
        message = tt.violation(DataTree.single("x", "r"))
        assert message is not None and "a" in message


class TestDataTreeErrors:
    def test_restrict_error_names_problem(self):
        tree = DataTree.build(node("r", "root", 0, [node("a", "a", 0)]))
        with pytest.raises(ValueError, match="root"):
            tree.restrict(["a"])

    def test_merge_error_names_node(self):
        left = DataTree.build(node("r", "root", 0, [node("a", "a", 1)]))
        right = DataTree.build(node("r", "root", 0, [node("a", "a", 2)]))
        with pytest.raises(ValueError, match="'a'"):
            left.merged_with(right)
