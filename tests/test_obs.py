"""The observability layer: metrics, spans, sinks, and integration."""

import io
import json
import threading

import pytest

import repro.obs as obs
from repro.obs.registry import Counter, Histogram, Metrics
from repro.obs.sinks import JsonLinesSink, NullSink, RingBufferSink, TeeSink
from repro.obs.spans import Span


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a pristine disabled state."""
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()
    yield
    obs.disable()
    obs.STATE.sink = NullSink()
    obs.STATE.clear()


class TestMetrics:
    def test_counter_lazy_creation_and_inc(self):
        metrics = Metrics()
        metrics.inc("a.calls")
        metrics.inc("a.calls", 4)
        assert metrics.value("a.calls") == 5
        assert metrics.value("never.touched") == 0

    def test_counter_identity_is_stable(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")

    def test_histogram_moments(self):
        metrics = Metrics()
        for value in (3, 1, 2):
            metrics.observe("h", value)
        histogram = metrics.histogram("h")
        assert histogram.count == 3
        assert histogram.total == 6
        assert histogram.min == 1
        assert histogram.max == 3
        assert histogram.mean == pytest.approx(2.0)
        assert metrics.series("h") == [3, 1, 2]

    def test_histogram_recent_window_is_bounded(self):
        histogram = Histogram("h", window=4)
        for value in range(10):
            histogram.observe(value)
        assert list(histogram.recent) == [6, 7, 8, 9]
        assert histogram.count == 10  # aggregates keep the full history

    def test_snapshot_is_json_ready(self):
        metrics = Metrics()
        metrics.inc("c", 2)
        metrics.observe("h", 1.5)
        snapshot = json.loads(json.dumps(metrics.snapshot()))
        assert snapshot["counters"]["c"] == 2
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_clears_in_place(self):
        metrics = Metrics()
        metrics.inc("c")
        metrics.observe("h", 1)
        metrics.reset()
        assert len(metrics) == 0
        assert metrics.value("c") == 0


class TestSpans:
    def test_disabled_span_yields_none(self):
        with obs.span("anything", attr=1) as sp:
            assert sp is None

    def test_nesting_builds_a_tree(self):
        with obs.capture():
            with obs.span("outer", level=0) as outer:
                with obs.span("inner", level=1) as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
        roots = obs.traces()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == ["inner"]
        assert roots[0].attrs == {"level": 0}
        assert roots[0].children[0].attrs == {"level": 1}
        assert roots[0].duration >= roots[0].children[0].duration

    def test_add_attrs_and_event_attach_to_current_span(self):
        with obs.capture():
            with obs.span("work"):
                obs.add_attrs(items=7)
                obs.event("checkpoint", phase="mid")
        root = obs.traces()[0]
        assert root.attrs == {"items": 7}
        assert root.events == [{"name": "checkpoint", "attrs": {"phase": "mid"}}]

    def test_span_durations_feed_the_metrics_registry(self):
        with obs.capture():
            with obs.span("timed.region"):
                pass
        histogram = obs.metrics.histogram("span.timed.region.seconds")
        assert histogram.count == 1
        assert histogram.min >= 0

    def test_find_descendants_by_name(self):
        root = Span("a", {})
        child = Span("b", {})
        grandchild = Span("a", {})
        child.children.append(grandchild)
        root.children.append(child)
        assert root.find("a") == [root, grandchild]

    def test_to_dict_roundtrips_through_json(self):
        with obs.capture():
            with obs.span("outer", n=1):
                with obs.span("inner"):
                    pass
        rendered = json.loads(json.dumps(obs.traces()[0].to_dict()))
        assert rendered["name"] == "outer"
        assert rendered["attrs"] == {"n": 1}
        assert rendered["children"][0]["name"] == "inner"

    def test_thread_spans_do_not_interleave(self):
        errors = []

        def worker(tag):
            try:
                with obs.span(f"thread.{tag}") as sp:
                    assert sp is not None and obs.current_span() is sp
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with obs.capture():
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert sorted(root.name for root in obs.traces()) == [
            f"thread.{i}" for i in range(4)
        ]


class TestSinks:
    def test_ring_buffer_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"i": i})
        assert [event["i"] for event in sink.events()] == [2, 3, 4]
        assert sink.drain() and len(sink) == 0

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "event", "name": "b"})
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert sink.emitted == 2

    def test_jsonl_sink_accepts_open_stream(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.emit({"x": 1})
        sink.close()  # must not close a caller-owned stream
        assert json.loads(stream.getvalue()) == {"x": 1}

    def test_tee_fans_out(self):
        left, right = RingBufferSink(), RingBufferSink()
        TeeSink(left, right).emit({"x": 1})
        assert left.events() == right.events() == [{"x": 1}]

    def test_span_events_carry_depth_for_reassembly(self):
        with obs.capture() as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        spans = {e["name"]: e for e in sink.events() if e["type"] == "span"}
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["depth"] == 0


class TestDisabledMode:
    def test_no_events_no_metrics_no_traces(self):
        sink = RingBufferSink()
        obs.STATE.sink = sink  # even with a live sink installed...
        assert not obs.enabled()
        with obs.span("silent", expensive="attr"):
            obs.event("also.silent")
            obs.add_attrs(ignored=True)
        assert sink.events() == []
        assert len(obs.metrics) == 0
        assert obs.traces() == []

    def test_instrumented_code_paths_stay_silent(self):
        from repro.core.matching import max_bipartite_matching
        from repro.refine.refine import refine_sequence
        from repro.workloads.catalog import CATALOG_ALPHABET, query1
        from repro.workloads.catalog import generate_catalog

        doc = generate_catalog(3, seed=3)
        refine_sequence(CATALOG_ALPHABET, [(query1(), query1().evaluate(doc))])
        max_bipartite_matching(["a"], {"a": ["x"]})
        assert len(obs.metrics) == 0
        assert obs.traces() == []

    def test_capture_restores_previous_state(self):
        assert not obs.enabled()
        with obs.capture():
            assert obs.enabled()
        assert not obs.enabled()
        assert isinstance(obs.STATE.sink, NullSink)


class TestEnableDisable:
    def test_enable_installs_ring_buffer_by_default(self):
        obs.enable()
        assert obs.enabled()
        assert isinstance(obs.STATE.sink, RingBufferSink)
        obs.disable()
        assert not obs.enabled()

    def test_enable_keeps_explicit_sink(self):
        sink = RingBufferSink()
        obs.enable(sink)
        assert obs.STATE.sink is sink

    def test_reset_drains_everything(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.metrics.inc("c")
        obs.reset()
        assert obs.traces() == []
        assert len(obs.metrics) == 0
        assert obs.STATE.sink.events() == []


class TestIntegration:
    def test_refine_sequence_emits_expected_spans_and_monotone_growth(self):
        from repro.refine.refine import refine_sequence
        from repro.workloads.catalog import (
            CATALOG_ALPHABET,
            catalog_type,
            generate_catalog,
            query1,
            query2,
        )

        doc = generate_catalog(6, seed=6)
        history = [
            (query1(), query1().evaluate(doc)),
            (query2(), query2().evaluate(doc)),
        ]
        with obs.capture() as sink:
            refine_sequence(CATALOG_ALPHABET, history, tree_type=catalog_type())

        names = {e["name"] for e in sink.events() if e["type"] == "span"}
        assert {"refine.sequence", "refine.step", "refine.type_intersect"} <= names

        root = obs.traces()[-1]
        assert root.name == "refine.sequence"
        assert len(root.find("refine.step")) == len(history)

        assert obs.metrics.value("refine.steps") == len(history)
        assert obs.metrics.value("refine.specializations") > 0
        sizes = obs.metrics.series("refine.knowledge_size")
        assert len(sizes) == len(history)
        assert sizes == sorted(sizes)  # knowledge only grows on this workload

    def test_webhouse_knowledge_size_series_per_recorded_query(self):
        from repro.mediator.source import InMemorySource
        from repro.mediator.webhouse import Webhouse
        from repro.workloads.catalog import (
            CATALOG_ALPHABET,
            catalog_type,
            demo_catalog,
            query1,
            query2,
        )

        tt = catalog_type()
        source = InMemorySource(demo_catalog(), tt)
        webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        with obs.capture():
            webhouse.ask(source, query1())
            webhouse.ask(source, query2())
        sizes = obs.metrics.series("webhouse.knowledge_size")
        assert len(sizes) == 2
        assert sizes == sorted(sizes)
        assert obs.metrics.value("webhouse.records") == 2
        assert obs.metrics.value("webhouse.asks") == 2

    def test_matching_counters_fire_on_prefix_checks(self):
        from repro.core.tree import DataTree, node
        from repro.incomplete.certainty import certain_prefix, possible_prefix
        from repro.refine.refine import refine_sequence
        from repro.workloads.catalog import (
            CATALOG_ALPHABET,
            catalog_type,
            generate_catalog,
            query1,
        )
        from repro.refine.type_intersect import intersect_with_tree_type

        doc = generate_catalog(4, seed=4)
        knowledge = intersect_with_tree_type(
            refine_sequence(
                CATALOG_ALPHABET, [(query1(), query1().evaluate(doc))]
            ),
            catalog_type(),
        )
        prefix = DataTree.build(
            node(
                "cat0",
                "catalog",
                0,
                [node("g", "product", 0, [node("gp", "price", 999)])],
            )
        )
        with obs.capture():
            possible_prefix(prefix, knowledge)
            certain_prefix(prefix, knowledge)
        counters = obs.metrics.counters()
        assert counters["matching.assignment_calls"] > 0
        assert counters["matching.max_flow_calls"] > 0
        assert counters["matching.bipartite_calls"] > 0
        assert counters["certainty.possible_sets_calls"] == 1
        assert counters["certainty.certain_sets_calls"] == 1

    def test_emptiness_fixpoint_rounds_are_observed(self):
        from repro.incomplete.conditional import ConditionalTreeType
        from repro.core.multiplicity import Atom, Disjunction

        mu = {
            "a": Disjunction.single(Atom.of(b="1")),
            "b": Disjunction.leaf(),
        }
        tau = ConditionalTreeType.simple(["a"], mu)
        with obs.capture():
            assert not tau.is_empty()
        assert obs.metrics.value("emptiness.is_empty_calls") == 1
        rounds = obs.metrics.series("emptiness.fixpoint_rounds")
        assert rounds and rounds[0] >= 2  # chain of length 2 needs >= 2 rounds

    def test_webhouse_stats_without_global_obs(self):
        from repro.mediator.source import InMemorySource
        from repro.mediator.webhouse import Webhouse
        from repro.workloads.catalog import (
            CATALOG_ALPHABET,
            catalog_type,
            demo_catalog,
            query1,
            query4,
        )

        tt = catalog_type()
        source = InMemorySource(demo_catalog(), tt)
        webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        webhouse.ask(source, query1())
        webhouse.complete_and_answer(source, query4())
        stats = webhouse.stats()
        assert stats["asks"] == 1
        assert stats["queries_recorded"] == len(webhouse.history)
        assert stats["source_completions"] == 1
        assert stats["knowledge_size"] == webhouse.size()
        assert stats["specializations"] > 0
        assert str(stats["knowledge_size"]) in repr(webhouse)
        # the global registry stayed untouched
        assert len(obs.metrics) == 0

    def test_public_reexport(self):
        import repro

        assert repro.obs is obs
        assert "obs" in repro.__all__
