"""The mergeable quantile sketch: accuracy, merge algebra, edge cases.

The PR-8 acceptance contract: every quantile estimate is within the
configured *relative* accuracy of the exact rank statistic (rank
``max(0, ceil(q*n) - 1)`` over the sorted sample — the same convention
the sketch uses), and merging is associative and commutative, so
per-shard sketches can be rolled up in any order and the fleet
quantiles match a single sketch that saw everything.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    DEFAULT_ACCURACY,
    MIN_POSITIVE,
    QuantileSketch,
    SUMMARY_QUANTILES,
)

QS = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def exact_quantile(values, q):
    """Ground-truth rank statistic with the sketch's rank convention."""
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def assert_same_state(a, b):
    """Bucket-exact equality; ``sum`` only up to float addition order."""
    left, right = a.to_dict(), b.to_dict()
    assert left.pop("sum") == pytest.approx(right.pop("sum"))
    assert left == right


def assert_within_bound(sketch, values, alpha, qs=QS):
    for q in qs:
        estimate = sketch.quantile(q)
        truth = exact_quantile(values, q)
        if abs(truth) <= MIN_POSITIVE:
            assert abs(estimate) <= MIN_POSITIVE
        else:
            assert abs(estimate - truth) <= alpha * abs(truth) + 1e-12, (
                f"q={q}: estimate {estimate} vs truth {truth} "
                f"(alpha={alpha})"
            )


# -- accuracy on fixed distributions ------------------------------------------


def test_constant_distribution_is_exact_enough():
    sketch = QuantileSketch()
    values = [0.25] * 1000
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, sketch.relative_accuracy)


def test_bimodal_distribution():
    rng = random.Random(8)
    values = [rng.gauss(0.001, 0.0001) for _ in range(500)]
    values += [rng.gauss(2.0, 0.1) for _ in range(500)]
    sketch = QuantileSketch()
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, sketch.relative_accuracy)


def test_heavy_tail_distribution():
    rng = random.Random(88)
    values = [rng.paretovariate(1.2) for _ in range(2000)]
    sketch = QuantileSketch()
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, sketch.relative_accuracy)


def test_mixed_sign_values():
    rng = random.Random(888)
    values = [rng.uniform(-10.0, 10.0) for _ in range(1500)] + [0.0] * 50
    sketch = QuantileSketch()
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, sketch.relative_accuracy)


def test_coarse_accuracy_still_bounded():
    rng = random.Random(5)
    values = [rng.lognormvariate(0.0, 2.0) for _ in range(1000)]
    sketch = QuantileSketch(relative_accuracy=0.05)
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, 0.05)


# -- hypothesis: the bound holds on arbitrary samples -------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=1e-6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=300,
    )
)
def test_quantiles_within_relative_error(values):
    sketch = QuantileSketch()
    for v in values:
        sketch.observe(v)
    assert_within_bound(sketch, values, sketch.relative_accuracy)
    assert sketch.count == len(values)
    rel = sketch.relative_accuracy + 1e-9
    assert sketch.quantile(0.0) == pytest.approx(min(values), rel=rel)
    assert sketch.quantile(1.0) == pytest.approx(max(values), rel=rel)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        min_size=0,
        max_size=60,
    ),
    st.lists(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        min_size=0,
        max_size=60,
    ),
)
def test_merge_commutes(left_values, right_values):
    left, right = QuantileSketch(), QuantileSketch()
    for v in left_values:
        left.observe(v)
    for v in right_values:
        right.observe(v)
    ab = QuantileSketch.merged([left, right])
    ba = QuantileSketch.merged([right, left])
    assert_same_state(ab, ba)
    # and merging matches one sketch that saw the union
    union = QuantileSketch()
    for v in left_values + right_values:
        union.observe(v)
    assert_same_state(ab, union)


def test_merge_is_associative():
    rng = random.Random(3)
    parts = [
        [rng.expovariate(4.0) for _ in range(200)] for _ in range(3)
    ]
    sketches = []
    for part in parts:
        sketch = QuantileSketch()
        for v in part:
            sketch.observe(v)
        sketches.append(sketch)
    a, b, c = sketches

    left = QuantileSketch.merged([QuantileSketch.merged([a, b]), c])
    right = QuantileSketch.merged([a, QuantileSketch.merged([b, c])])
    assert_same_state(left, right)
    assert_within_bound(left, sum(parts, []), left.relative_accuracy)


def test_merge_rejects_mismatched_accuracy():
    with pytest.raises(ValueError):
        QuantileSketch(0.01).merge(QuantileSketch(0.02))


def test_merge_does_not_mutate_operand():
    a, b = QuantileSketch(), QuantileSketch()
    a.observe(1.0)
    b.observe(2.0)
    before = b.to_dict()
    a.merge(b)
    assert b.to_dict() == before
    assert a.count == 2


# -- edge cases ---------------------------------------------------------------


def test_empty_sketch():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert len(sketch) == 0
    assert sketch.quantile(0.5) is None
    assert sketch.mean == 0.0
    summary = sketch.summary()
    assert summary["count"] == 0
    assert summary["p99"] is None


def test_single_observation_is_exact():
    sketch = QuantileSketch()
    sketch.observe(0.125)
    for q in QS:
        assert sketch.quantile(q) == pytest.approx(0.125)
    assert sketch.mean == pytest.approx(0.125)


def test_zero_and_tiny_values_land_in_zero_bucket():
    sketch = QuantileSketch()
    sketch.observe(0.0)
    sketch.observe(MIN_POSITIVE / 2)
    assert sketch.count == 2
    assert sketch.quantile(0.5) == 0.0


def test_weighted_observe():
    sketch = QuantileSketch()
    sketch.observe(1.0, count=9)
    sketch.observe(100.0, count=1)
    assert sketch.count == 10
    assert sketch.quantile(0.5) == pytest.approx(1.0, rel=0.02)
    assert sketch.quantile(1.0) == pytest.approx(100.0)
    sketch.observe(1.0, count=0)  # non-positive counts are a no-op
    assert sketch.count == 10


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=1.0)
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.observe(float("nan"))
    sketch.observe(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)


# -- serialization ------------------------------------------------------------


def test_round_trip_preserves_everything():
    rng = random.Random(12)
    sketch = QuantileSketch(relative_accuracy=0.02)
    for _ in range(500):
        sketch.observe(rng.lognormvariate(0.0, 1.5))
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone.to_dict() == sketch.to_dict()
    for q in QS:
        assert clone.quantile(q) == sketch.quantile(q)


def test_summary_shape():
    sketch = QuantileSketch()
    for i in range(1, 101):
        sketch.observe(i / 100.0)
    summary = sketch.summary()
    assert summary["count"] == 100
    assert summary["min"] == pytest.approx(0.01)
    assert summary["max"] == pytest.approx(1.0)
    for q in SUMMARY_QUANTILES:
        key = f"p{int(q * 100)}"
        assert summary[key] == pytest.approx(
            exact_quantile([i / 100.0 for i in range(1, 101)], q),
            rel=2 * DEFAULT_ACCURACY,
        )


# -- bounded memory -----------------------------------------------------------


def test_collapse_keeps_tail_quantiles():
    """When the bin budget is exhausted the *lowest* buckets fold
    upward: a quantile whose rank lands in a retained bucket keeps the
    relative-error guarantee, and collapsed ranks degrade safely — they
    are overestimated (never underestimated) and stay clamped to the
    observed max."""
    rng = random.Random(7)
    values = [rng.lognormvariate(0.0, 3.0) for _ in range(5000)]
    sketch = QuantileSketch(max_bins=64)
    for v in values:
        sketch.observe(v)
    document = sketch.to_dict()
    assert document["collapsed"] is True
    assert len(document["buckets"]) <= 64
    buckets = {int(i): n for i, n in document["buckets"].items()}
    folded = buckets[min(buckets)]  # all collapsed mass lands here
    alpha = sketch.relative_accuracy
    for q in QS:
        estimate = sketch.quantile(q)
        truth = exact_quantile(values, q)
        rank = max(0, math.ceil(q * len(values)) - 1)
        if rank >= folded:
            assert abs(estimate - truth) <= alpha * truth + 1e-12
        else:
            assert truth * (1.0 - alpha) - 1e-12 <= estimate <= sketch.max
    # the very tail is always past the folded mass
    assert sketch.quantile(1.0) == pytest.approx(max(values), rel=alpha)
