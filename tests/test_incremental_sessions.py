"""Longer-lived session behaviours: interleaving, compaction mid-flight,
source updates, and equivalence of maintenance strategies."""

import pytest

from repro.core.conditions import Cond
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)
from repro.workloads.generators import random_ps_query


@pytest.fixture()
def setting():
    tt = catalog_type()
    doc = generate_catalog(12, seed=99)
    return tt, doc, InMemorySource(doc, tt)


class TestInterleavedSession:
    def test_ask_answer_ask(self, setting):
        """Answering locally between acquisitions must not corrupt state."""
        tt, doc, source = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        local_before = wh.can_answer(query1())
        wh.possible_answers(query4())  # read-only operation
        wh.ask(source, query2())
        assert wh.can_answer(query1()) == local_before
        assert wh.answer_locally(query1()) == query1().evaluate(doc)

    def test_many_random_queries_remain_exact(self, setting):
        tt, doc, source = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt, auto_minimize=True)
        queries = [random_ps_query(tt, seed=s, max_depth=3) for s in range(4)]
        for q in queries:
            wh.ask(source, q)
        # every recorded query remains answerable with the true answer
        for q in queries:
            assert wh.can_answer(q)
            assert wh.answer_locally(q) == q.evaluate(doc)
        assert wh.knowledge.contains(doc)

    def test_repeated_query_is_idempotent_in_semantics(self, setting):
        tt, doc, source = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        size_once = wh.size()
        wh.ask(source, query1())
        # semantics unchanged (the representation may differ in size)
        assert wh.knowledge.contains(doc)
        assert wh.answer_locally(query1()) == query1().evaluate(doc)
        assert wh.size() <= size_once * 4  # no blowup from repetition


class TestCompactionMidSession:
    def test_compact_then_continue(self, setting):
        tt, doc, source = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        wh.compact()  # lossy: rep grows, data stays
        assert wh.knowledge.contains(doc)
        # continue refining after compaction
        wh.ask(source, query2())
        assert wh.knowledge.contains(doc)
        assert wh.answer_locally(query2()) == query2().evaluate(doc)

    def test_compact_preserves_answerability_of_sure_data(self, setting):
        tt, doc, source = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        before = wh.certain_answer_part(query1())
        wh.compact()
        assert wh.certain_answer_part(query1()) == before


class TestSourceUpdates:
    def test_reset_on_source_change(self, setting):
        """The paper's policy: on source updates, reinitialize to the
        type."""
        tt, _doc, _source = setting
        doc_v2 = generate_catalog(12, seed=100)
        source_v2 = InMemorySource(doc_v2, tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source_v2, query1())
        wh.reset()
        assert wh.data_tree().is_empty()
        # fresh acquisition against the updated source works
        wh.ask(source_v2, query2())
        assert wh.knowledge.contains(doc_v2)

    def test_two_sessions_do_not_share_state(self, setting):
        tt, doc, source = setting
        a = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        b = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        a.ask(source, query1())
        assert b.data_tree().is_empty()
        assert not b.history


class TestCrashRecovery:
    def test_truncation_at_every_byte_recovers_a_history_prefix(
        self, setting, tmp_path
    ):
        """Property: cutting the journal anywhere inside the last record
        recovers exactly the history without it; any earlier clean cut
        recovers a prefix.  Knowledge rebuilt from the recovered history
        matches refining that prefix from scratch (Theorem 3.5)."""
        from repro.incomplete.certainty import incomplete_equivalent
        from repro.refine.refine import refine_sequence
        from repro.store import SessionStore

        tt, doc, source = setting
        store = SessionStore(str(tmp_path), snapshot_every=10_000)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.attach(store.create("crash", CATALOG_ALPHABET, tree_type=tt))
        for q in (query1(), query2()):
            wh.ask(source, q)
        full_history = wh.history
        session = wh.detach()
        journal_path = session.journal.path
        pristine = open(journal_path, "rb").read()
        last_newline = pristine.rindex(b"\n", 0, len(pristine) - 1)
        last_record_start = last_newline + 1

        alphabet = sorted(set(CATALOG_ALPHABET) | set(tt.alphabet))
        for cut in range(last_record_start, len(pristine)):
            with open(journal_path, "wb") as handle:
                handle.write(pristine[:cut])
            resumed = Webhouse.resume(store, "crash")
            try:
                recovered = resumed.history
                assert recovered == full_history[: len(recovered)]
                # the torn last record is gone, the rest survives
                assert len(recovered) == len(full_history) - 1
                from_scratch = refine_sequence(alphabet, list(recovered))
                assert incomplete_equivalent(resumed._state, from_scratch)
            finally:
                resumed.detach()

        # the untouched file recovers everything
        with open(journal_path, "wb") as handle:
            handle.write(pristine)
        resumed = Webhouse.resume(store, "crash")
        assert resumed.history == full_history
        assert resumed.can_answer(query1())
        resumed.detach()


class TestMaintenanceStrategiesAgree:
    def test_minimized_and_plain_same_decisions(self, setting):
        tt, doc, source1 = setting
        source2 = InMemorySource(doc, tt)
        plain = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        slim = Webhouse(CATALOG_ALPHABET, tree_type=tt, auto_minimize=True)
        for q in (query1(), query2()):
            plain.ask(source1, q)
            slim.ask(source2, q)
        for q in (query1(), query3(), query4()):
            assert plain.can_answer(q) == slim.can_answer(q)
        assert plain.may_match(query4()) == slim.may_match(query4())
        assert slim.size() <= plain.size()
