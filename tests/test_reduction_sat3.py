"""Experiment E11 — Theorem 3.6: 3-SAT via possible-prefix / conjunctive
emptiness."""

import pytest

from repro.core.tree import DataTree, node
from repro.reductions.sat3 import (
    SAT_ALPHABET,
    brute_force_sat,
    build_instance,
    decide_by_representation,
    sat_tree_type,
)


class TestGroundTruth:
    def test_brute_force_basics(self):
        assert brute_force_sat(1, [(1, 1, 1)])
        assert not brute_force_sat(1, [(1, 1, 1), (-1, -1, -1)])
        assert brute_force_sat(2, [(1, 2, 2), (-1, -2, -2)])
        assert brute_force_sat(0, [])


class TestInstanceConstruction:
    def test_tree_type_shape(self):
        tt = sat_tree_type()
        assert tt.roots == {"root"}
        assert tt.atom("clause").mult("lit1") is not None
        assert tt.atom("lit2").mult("val2") is not None

    def test_witness_tree_consistent(self):
        instance = build_instance(1, [(1, 1, 1)])
        witness = DataTree.build(
            node(
                "R",
                "root",
                0,
                [
                    node("v1", "var", 1, [node("v1val", "val", 1)]),
                    node(
                        "c0",
                        "clause",
                        0,
                        [
                            node("c0l1", "lit1", 1, [node("c0l1v", "val1", 1)]),
                            node("c0l2", "lit2", 1, [node("c0l2v", "val2", 1)]),
                            node("c0l3", "lit3", 1, [node("c0l3v", "val3", 1)]),
                        ],
                    ),
                    node("rv", "val", 1),
                ],
            )
        )
        assert instance.tree_type.violation(witness) is None
        for query, answer in instance.history:
            assert query.evaluate(witness) == answer

    def test_history_rejects_bad_assignments(self):
        instance = build_instance(1, [(1, 1, 1)])
        # literal value inconsistent with the variable value
        bad = DataTree.build(
            node(
                "R",
                "root",
                0,
                [
                    node("v1", "var", 1, [node("v1val", "val", 0)]),
                    node(
                        "c0",
                        "clause",
                        0,
                        [
                            node("c0l1", "lit1", 1, [node("c0l1v", "val1", 1)]),
                            node("c0l2", "lit2", 1, [node("c0l2v", "val2", 1)]),
                            node("c0l3", "lit3", 1, [node("c0l3v", "val3", 1)]),
                        ],
                    ),
                    node("rv", "val", 1),
                ],
            )
        )
        consistent = all(q.evaluate(bad) == a for q, a in instance.history)
        assert not consistent


class TestEquivalence:
    """decide_by_representation == brute force, on tractable sizes."""

    @pytest.mark.parametrize(
        "n_vars,clauses",
        [
            (1, [(1, 1, 1)]),
            (2, [(1, 2, 2), (-1, 2, 2), (1, -2, -2)]),
        ],
    )
    def test_satisfiable_instances(self, n_vars, clauses):
        instance = build_instance(n_vars, clauses)
        assert decide_by_representation(instance)
        assert brute_force_sat(n_vars, clauses)

    @pytest.mark.slow
    def test_unsatisfiable_instance(self):
        clauses = [(1, 1, 1), (-1, -1, -1)]
        instance = build_instance(1, clauses)
        assert not decide_by_representation(instance)
        assert not brute_force_sat(1, clauses)
