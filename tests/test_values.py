"""Unit tests for the two-sorted value domain."""

from fractions import Fraction

import pytest

from repro.core.values import (
    as_value,
    is_numeric,
    is_string,
    value_repr,
    values_equal,
)


class TestAsValue:
    def test_int_becomes_fraction(self):
        assert as_value(3) == Fraction(3)
        assert isinstance(as_value(3), Fraction)

    def test_fraction_passthrough(self):
        f = Fraction(1, 3)
        assert as_value(f) is f

    def test_float_exact(self):
        assert as_value(0.5) == Fraction(1, 2)

    def test_string_passthrough(self):
        assert as_value("elec") == "elec"

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_value(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_value([1, 2])


class TestSorts:
    def test_is_numeric(self):
        assert is_numeric(as_value(1))
        assert not is_numeric(as_value("x"))

    def test_is_string(self):
        assert is_string(as_value("x"))
        assert not is_string(as_value(1))

    def test_cross_sort_never_equal(self):
        assert not values_equal(as_value(0), as_value("0"))

    def test_same_sort_equality(self):
        assert values_equal(as_value(2), as_value(Fraction(4, 2)))
        assert values_equal("a", "a")
        assert not values_equal("a", "b")


class TestRepr:
    def test_integer_rendering(self):
        assert value_repr(as_value(7)) == "7"

    def test_fraction_rendering(self):
        assert value_repr(Fraction(1, 3)) == "1/3"

    def test_string_rendering(self):
        assert value_repr("camera") == "camera"
