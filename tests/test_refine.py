"""Theorem 3.4: Algorithm Refine — randomized exactness.

The central property of the whole paper: after any query/answer history,
``tree ∈ rep(Refine(...))`` iff the tree reproduces every recorded
answer (and satisfies the type, when folded in).
"""

import itertools
import random

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType
from repro.refine.refine import consistent_with, refine, refine_sequence
from repro.refine.inverse import universal_incomplete

ALPHABET = ["root", "a", "b"]


def source():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [
                node("x", "a", 5, [node("y", "b", 1)]),
                node("z", "a", 0),
                node("w", "a", 3),
            ],
        )
    )


def history_for(src):
    q1 = PSQuery(pattern("root", children=[pattern("a", Cond.ne(0), [pattern("b")])]))
    q2 = PSQuery(pattern("root", children=[pattern("a", Cond.gt(3))]))
    q3 = linear_query(["root", "a", "b"], [None, None, Cond.lt(2)])
    return [(q, q.evaluate(src)) for q in (q1, q2, q3)]


def random_candidate(rng, trial):
    """A random tree over ALPHABET mixing known and fresh ids."""
    ids = itertools.count()
    values = [0, 1, 3, 5, -1]

    def rnd_subtree(label, depth):
        ident = f"t{next(ids)}_{trial}"
        kids = []
        if depth > 0 and label != "b" and rng.random() < 0.5:
            kids = [rnd_subtree("b", depth - 1)]
        return node(ident, label, rng.choice(values), kids)

    specs = []
    for known in rng.sample(["x", "z", "w", None, None], k=3):
        if known == "x":
            kids = [node("y", "b", 1)] if rng.random() < 0.6 else []
            specs.append(node("x", "a", rng.choice([5, 0]), kids))
        elif known in ("z", "w"):
            kids = [rnd_subtree("b", 0)] if rng.random() < 0.3 else []
            specs.append(node(known, "a", rng.choice([0, 3, 5]), kids))
    for _ in range(rng.randint(0, 2)):
        specs.append(rnd_subtree(rng.choice(["a", "b"]), 1))
    return DataTree.build(node("r", "root", rng.choice([0, 1]), specs))


class TestRefineExactness:
    def test_source_always_member(self):
        src = source()
        history = history_for(src)
        result = refine_sequence(ALPHABET, history)
        assert result.contains(src)
        assert result.validate() == []
        assert result.is_unambiguous()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_membership_equals_consistency(self, seed):
        src = source()
        history = history_for(src)
        result = refine_sequence(ALPHABET, history)
        rng = random.Random(seed)
        for trial in range(400):
            candidate = random_candidate(rng, trial)
            assert result.contains(candidate) == consistent_with(
                candidate, history
            ), candidate.pretty()

    def test_with_tree_type(self):
        src = source()
        tt = TreeType.parse("root: root\nroot -> a*\na -> b?")
        history = history_for(src)
        result = refine_sequence(ALPHABET, history, tree_type=tt)
        assert result.contains(src)
        rng = random.Random(7)
        for trial in range(300):
            candidate = random_candidate(rng, trial)
            assert result.contains(candidate) == consistent_with(
                candidate, history, tt
            ), candidate.pretty()

    def test_incremental_equals_batch(self):
        src = source()
        history = history_for(src)
        batch = refine_sequence(ALPHABET, history)
        current = universal_incomplete(ALPHABET)
        for query, answer in history:
            current = refine(current, query, answer, ALPHABET)
        rng = random.Random(3)
        for trial in range(200):
            candidate = random_candidate(rng, trial)
            assert batch.contains(candidate) == current.contains(candidate)

    def test_contradictory_answers_empty(self):
        q = linear_query(["root", "a"], [None, Cond.gt(0)])
        a_full = q.evaluate(source())
        history = [(q, a_full), (q, DataTree.empty())]
        result = refine_sequence(ALPHABET, history)
        assert result.is_empty()

    def test_empty_history_is_universal(self, simple_tree):
        result = refine_sequence(ALPHABET, [])
        assert result.contains(simple_tree)
        assert result.contains(DataTree.empty())


class TestRefineSizes:
    def test_refine_step_output_polynomial_on_catalog(self, catalog_tt, catalog_doc, catalog_queries):
        from repro.workloads.catalog import CATALOG_ALPHABET

        history = [
            (catalog_queries[1], catalog_queries[1].evaluate(catalog_doc)),
            (catalog_queries[2], catalog_queries[2].evaluate(catalog_doc)),
        ]
        result = refine_sequence(CATALOG_ALPHABET, history)
        # sanity bound: two queries over a 33-node document stay small
        assert result.size() < 3000
        assert result.contains(catalog_doc)
