"""Local queries and answer overlay (Section 3.4 plumbing)."""

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.mediator.local_query import LocalQuery, overlay
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    query1,
    query2,
    query4,
    query5,
)


def base_tree():
    return DataTree.build(
        node("r", "root", 0, [node("x", "a", 5), node("z", "a", 0)])
    )


class TestOverlay:
    def test_graft_below_anchor(self):
        addition = DataTree.build(node("x", "a", 5, [node("y", "b", 1)]))
        merged = overlay(base_tree(), addition)
        assert merged.children("x") == ("y",)
        assert merged.parent("y") == "x"
        assert len(merged) == 4

    def test_empty_addition_is_noop(self):
        assert overlay(base_tree(), DataTree.empty()) == base_tree()

    def test_unknown_anchor_rejected(self):
        addition = DataTree.build(node("ghost", "a", 5))
        with pytest.raises(ValueError):
            overlay(base_tree(), addition)

    def test_conflicting_value_rejected(self):
        addition = DataTree.build(node("x", "a", 99))
        with pytest.raises(ValueError):
            overlay(base_tree(), addition)

    def test_conflicting_parent_rejected(self):
        tree = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        addition = DataTree.build(node("r", "root", 0, [node("y", "b", 1)]))
        with pytest.raises(ValueError):
            overlay(tree, addition)

    def test_idempotent_on_shared_nodes(self):
        addition = DataTree.build(node("x", "a", 5, [node("y", "b", 1)]))
        once = overlay(base_tree(), addition)
        twice = overlay(once, addition)
        assert once == twice

    def test_multiple_overlays_commute(self):
        add1 = DataTree.build(node("x", "a", 5, [node("y", "b", 1)]))
        add2 = DataTree.build(node("z", "a", 0, [node("w", "b", 2)]))
        one = overlay(overlay(base_tree(), add1), add2)
        other = overlay(overlay(base_tree(), add2), add1)
        assert one == other


class TestLocalQuery:
    def test_repr_and_size(self):
        lq = LocalQuery(linear_query(["a", "b"]), "x")
        assert lq.size() == 2
        assert "@x" in repr(lq)

    def test_source_local_evaluation(self):
        doc = DataTree.build(
            node("r", "root", 0, [node("x", "a", 5, [node("y", "b", 1)])])
        )
        source = InMemorySource(doc)
        answer = source.ask_local(linear_query(["a", "b"]), "x")
        assert set(answer.node_ids()) == {"x", "y"}
        with pytest.raises(KeyError):
            source.ask_local(linear_query(["a"]), "ghost")


class TestAnswerWithCaveats:
    @pytest.fixture()
    def webhouse(self, catalog_tt, catalog_doc):
        source = InMemorySource(catalog_doc, catalog_tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=catalog_tt)
        wh.ask(source, query1())
        wh.ask(source, query2())
        return wh

    def test_incomplete_answer_flagged(self, webhouse, catalog_doc):
        sure, may_have_more = webhouse.answer_with_caveats(query4())
        assert may_have_more  # the Leica is invisible
        names = {
            sure.value(n) for n in sure.node_ids() if sure.label(n) == "name"
        }
        assert names == {"Canon", "Nikon", "Olympus"}
        # the sure part is a prefix of the true answer
        true_answer = query4().evaluate(catalog_doc)
        assert sure.is_prefix_of(true_answer, relative_to=list(sure.node_ids()))

    def test_complete_answer_not_flagged(self, webhouse, catalog_doc):
        from repro.workloads.catalog import query3

        sure, may_have_more = webhouse.answer_with_caveats(query3())
        assert not may_have_more
        assert sure == query3().evaluate(catalog_doc)
