"""Condition algebra tests — Lemma 2.3 made executable.

The central property: the eager ValueSet normalization agrees with
direct recursive evaluation of the Boolean combination on any probe
value.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Cond, ValueSet, interval_partition


class TestAtoms:
    def test_numeric_equality(self):
        c = Cond.eq(5)
        assert c.accepts(5)
        assert not c.accepts(4)
        assert not c.accepts("5")

    def test_string_equality(self):
        c = Cond.eq("elec")
        assert c.accepts("elec")
        assert not c.accepts("tv")
        assert not c.accepts(0)

    def test_string_inequality_accepts_numbers(self):
        c = Cond.ne("elec")
        assert c.accepts(0)
        assert c.accepts("tv")
        assert not c.accepts("elec")

    def test_numeric_inequality_accepts_strings(self):
        # a string never equals a number, so "!= 5" holds for strings
        assert Cond.ne(5).accepts("x")

    def test_order_on_string_constant_is_unsatisfiable(self):
        assert not Cond.lt("abc").satisfiable()

    def test_order_comparison_rejects_strings(self):
        assert not Cond.lt(10).accepts("small")

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Cond.atom("~=", 3)


class TestBooleanStructure:
    def test_conjunction(self):
        c = Cond.ge(0) & Cond.lt(10)
        assert c.accepts(0) and c.accepts(9)
        assert not c.accepts(-1) and not c.accepts(10)

    def test_disjunction(self):
        c = Cond.eq("a") | Cond.eq(1)
        assert c.accepts("a") and c.accepts(1)
        assert not c.accepts("b")

    def test_negation(self):
        c = ~Cond.lt(0)
        assert c.accepts(0)
        assert c.accepts("anything")
        assert not c.accepts(-1)

    def test_true_false(self):
        assert Cond.true().accepts(42) and Cond.true().accepts("x")
        assert not Cond.false().satisfiable()

    def test_one_of(self):
        c = Cond.one_of(1, 2, "x")
        assert c.accepts(2) and c.accepts("x") and not c.accepts(3)


class TestSemanticOperations:
    def test_satisfiability(self):
        assert not (Cond.lt(0) & Cond.gt(0)).satisfiable()
        assert (Cond.le(0) & Cond.ge(0)).satisfiable()

    def test_equivalence(self):
        assert (Cond.le(5) & Cond.ge(5)).equivalent(Cond.eq(5))
        assert (Cond.ne(5) | Cond.eq(5)).equivalent(Cond.true())
        # numbers only: < 5 or >= 5 misses the string sort
        assert not (Cond.lt(5) | Cond.ge(5)).equivalent(Cond.true())

    def test_implication(self):
        assert Cond.eq(3).implies(Cond.lt(5))
        assert not Cond.lt(5).implies(Cond.eq(3))

    def test_forced_value(self):
        assert Cond.eq(7).forced_value() == Fraction(7)
        assert Cond.eq("a").forced_value() == "a"
        assert (Cond.ge(3) & Cond.le(3)).forced_value() == Fraction(3)
        assert Cond.lt(5).forced_value() is None
        # = 7 or = "a" pins nothing single
        assert (Cond.eq(7) | Cond.eq("a")).forced_value() is None

    def test_sample_satisfies(self):
        for c in [Cond.lt(0), Cond.eq("z"), Cond.ne(0) & Cond.ne("a"), Cond.gt(100)]:
            assert c.accepts(c.sample())

    def test_eq_hash_by_denotation(self):
        a = Cond.lt(5) | Cond.eq(5)
        b = Cond.le(5)
        assert a == b
        assert hash(a) == hash(b)


class TestIntervalPartition:
    def test_cells_are_disjoint_and_cover(self):
        conds = (Cond.lt(10), Cond.ge(5), Cond.eq("a"))
        cells = interval_partition(conds)
        # every condition constant on each cell
        for cell in cells:
            for cond in conds:
                inside = cell.intersect(cond.values)
                assert inside.is_empty() or inside == cell
        # cells are pairwise disjoint
        for i, a in enumerate(cells):
            for b in cells[i + 1 :]:
                assert a.intersect(b).is_empty()

    def test_partition_size_linear(self):
        conds = tuple(Cond.lt(i) for i in range(8))
        assert len(interval_partition(conds)) <= 2 * len(conds) + 2


# -- hypothesis: normalization agrees with direct evaluation ------------------

values = st.one_of(
    st.integers(min_value=-10, max_value=10).map(Fraction),
    st.sampled_from(["a", "b", "elec"]),
)

_ATOM = st.tuples(st.just("atom"), st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), values)


def cond_trees(depth=3):
    if depth == 0:
        return _ATOM
    sub = cond_trees(depth - 1)
    return st.one_of(
        _ATOM,
        st.tuples(st.just("and"), sub, sub),
        st.tuples(st.just("or"), sub, sub),
        st.tuples(st.just("not"), sub),
    )


def build_cond(tree) -> Cond:
    tag = tree[0]
    if tag == "atom":
        _t, op, v = tree
        return Cond.atom(op, v)
    if tag == "and":
        return build_cond(tree[1]) & build_cond(tree[2])
    if tag == "or":
        return build_cond(tree[1]) | build_cond(tree[2])
    return ~build_cond(tree[1])


def eval_direct(tree, value) -> bool:
    tag = tree[0]
    if tag == "atom":
        _t, op, constant = tree
        same_sort = isinstance(value, str) == isinstance(constant, str)
        if op == "=":
            return same_sort and value == constant
        if op == "!=":
            return not (same_sort and value == constant)
        if not same_sort or isinstance(constant, str):
            return False
        return {
            "<": value < constant,
            "<=": value <= constant,
            ">": value > constant,
            ">=": value >= constant,
        }[op]
    if tag == "and":
        return eval_direct(tree[1], value) and eval_direct(tree[2], value)
    if tag == "or":
        return eval_direct(tree[1], value) or eval_direct(tree[2], value)
    return not eval_direct(tree[1], value)


@given(cond_trees(), values)
@settings(max_examples=400, deadline=None)
def test_normalization_matches_direct_evaluation(tree, probe):
    assert build_cond(tree).accepts(probe) == eval_direct(tree, probe)


@given(cond_trees())
@settings(max_examples=200, deadline=None)
def test_sample_is_always_a_model(tree):
    cond = build_cond(tree)
    if cond.satisfiable():
        assert eval_direct(tree, cond.sample())
