"""Durable session store: codecs, journal, snapshots, SessionStore, and
the Webhouse attach/resume integration (acceptance: a journaled session
killed and resumed answers exactly like the uninterrupted one)."""

import json
import os
import subprocess

import pytest

from repro.core.conditions import Cond
from repro.core.query import PSQuery, linear_query, pattern, subtree
from repro.core.tree import DataTree, node
from repro.core.treetype import TreeType
from repro.incomplete.certainty import incomplete_equivalent
from repro.mediator.source import InMemorySource
from repro.mediator.webhouse import Webhouse
from repro.refine.refine import refine_sequence
from repro.store import (
    CodecError,
    Journal,
    SessionLockedError,
    SessionStore,
    StoreError,
    canonical_dumps,
    cond_from_json,
    cond_to_json,
    decode_document,
    encode_document,
    incomplete_from_json,
    incomplete_to_json,
    latest_snapshot,
    prune_snapshots,
    query_from_json,
    query_to_json,
    tree_from_json,
    tree_to_json,
    treetype_from_json,
    treetype_to_json,
    value_from_json,
    value_to_json,
    write_snapshot,
)
from repro.store.session import LOCK_FILENAME
from repro.workloads.catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
)


def full_alphabet():
    return sorted(set(CATALOG_ALPHABET) | set(catalog_type().alphabet))


class TestCodec:
    def test_value_round_trip(self):
        from fractions import Fraction

        for value in (Fraction(3), Fraction(-7, 2), "elec", "", "3/4"):
            assert value_from_json(value_to_json(value)) == value
        # the string "3/4" and the fraction 3/4 stay distinct sorts
        assert value_from_json(value_to_json("3/4")) != Fraction(3, 4)

    def test_value_malformed(self):
        with pytest.raises(CodecError):
            value_from_json(["x", "?"])
        with pytest.raises(CodecError):
            value_from_json(["n", "not-a-number"])
        with pytest.raises(CodecError):
            value_from_json("bare")

    def test_cond_round_trip_preserves_semantics(self):
        conds = [
            Cond.true(),
            Cond.false(),
            Cond.lt(200) & Cond.ne(100),
            (Cond.ge(10) & Cond.lt(20)) | Cond.eq("n/a"),
            ~Cond.eq("elec"),  # cofinite string set
            Cond.eq(7) | Cond.eq("x") | Cond.gt(1000),
        ]
        probes = [0, 7, 15, 100, 150, 999, 1001, "elec", "x", "n/a", "other"]
        for cond in conds:
            back = cond_from_json(cond_to_json(cond))
            for probe in probes:
                assert back.accepts(probe) == cond.accepts(probe), (cond, probe)

    def test_tree_round_trip(self):
        doc = demo_catalog()
        assert tree_from_json(tree_to_json(doc)) == doc
        assert tree_from_json(tree_to_json(DataTree.empty())).is_empty()
        single = DataTree.single("n1", "name", "Canon")
        assert tree_from_json(tree_to_json(single)) == single

    def test_query_round_trip(self):
        queries = [
            query1(),
            query2(),
            query3(),
            query4(),
            linear_query(["catalog", "product", "price"], [None, None, Cond.lt(300)]),
            PSQuery(pattern("catalog", children=[subtree("product", Cond.ne(0))])),
        ]
        doc = generate_catalog(9, seed=4)
        for query in queries:
            back = query_from_json(query_to_json(query))
            assert back == query
            assert back.evaluate(doc) == query.evaluate(doc)

    def test_treetype_round_trip(self):
        tt = catalog_type()
        back = treetype_from_json(treetype_to_json(tt))
        assert back == tt
        # leaf-only labels survive via the explicit alphabet
        bare = TreeType.parse("root: r\nr -> a*", extra_labels=["orphan"])
        assert treetype_from_json(treetype_to_json(bare)) == bare

    def test_incomplete_round_trip_preserves_semantics(self):
        tt = catalog_type()
        doc = generate_catalog(6, seed=1)
        source = InMemorySource(doc, tt)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        wh.ask(source, query2())
        state = wh.knowledge
        back = incomplete_from_json(incomplete_to_json(state))
        assert back.allows_empty == state.allows_empty
        assert back.data_node_ids() == state.data_node_ids()
        assert back.data_tree() == state.data_tree()
        assert back.contains(doc) == state.contains(doc)
        assert incomplete_equivalent(back, state)

    def test_canonical_dumps_is_deterministic(self):
        state = refine_sequence(full_alphabet(), [(query1(), query1().evaluate(demo_catalog()))])
        a = canonical_dumps(incomplete_to_json(state))
        b = canonical_dumps(incomplete_to_json(state))
        assert a == b
        assert "\n" not in a and ": " not in a

    def test_envelope_versioning(self):
        doc = encode_document("thing", {"x": 1})
        assert decode_document("thing", doc) == {"x": 1}
        with pytest.raises(CodecError):
            decode_document("other", doc)
        with pytest.raises(CodecError):
            decode_document("thing", {**doc, "format": 99})
        with pytest.raises(CodecError):
            decode_document("thing", "not-a-dict")


class TestJournal:
    def test_append_reopen_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            assert journal.append({"type": "record", "n": 1}) == 1
            assert journal.append({"type": "record", "n": 2}) == 2
        with Journal(path) as journal:
            events = list(journal.events())
            assert [e["n"] for e in events] == [1, 2]
            assert journal.last_seq == 2

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1})
            journal.append({"n": 2})
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-5])  # torn final line
        with Journal(path) as journal:
            assert [e["n"] for e in journal.events()] == [1]
            journal.append({"n": 3})  # continues after the repaired tail
        with Journal(path) as journal:
            assert [e["n"] for e in journal.events()] == [1, 3]
            assert journal.records()[-1].seq == 2

    def test_corrupt_line_stops_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1})
            journal.append({"n": 2})
        data = open(path, "rb").read().splitlines(keepends=True)
        data[0] = b"00000000 " + data[0][9:]  # bad checksum on record 1
        open(path, "wb").writelines(data)
        with Journal(path) as journal:
            assert len(journal) == 0  # later records need the contiguous run

    def test_compaction_preserves_sequence_numbers(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            for n in range(1, 6):
                journal.append({"n": n})
            assert journal.compact(3) == 3
            assert [record.seq for record in journal.records()] == [4, 5]
            journal.append({"n": 6})
            assert journal.last_seq == 6
        with Journal(path) as journal:
            assert [record.seq for record in journal.records()] == [4, 5, 6]

    def test_seq_floor_after_full_compaction(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1})
            journal.compact(1)
            assert len(journal) == 0
            assert journal.last_seq == 1
            assert journal.append({"n": 2}) == 2
        # ...but an empty file alone cannot remember the floor: sessions
        # re-seed it from the snapshot seq via ensure_seq_floor
        fresh = Journal(str(tmp_path / "j2.jsonl"))
        fresh.ensure_seq_floor(7)
        assert fresh.append({"n": 1}) == 8
        fresh.close()

    def test_truncation_at_every_offset_of_the_final_record(self, tmp_path):
        """A crash can cut the tail anywhere — inside the 8-char length
        prefix, the checksum, exactly at the header/body boundary, or
        mid-body.  Every cut must open cleanly as [first record]."""
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1, "pad": "x" * 40})
        first_len = os.path.getsize(path)
        with Journal(path) as journal:
            journal.append({"n": 2, "pad": "y" * 40})
        data = open(path, "rb").read()
        for cut in range(first_len, len(data)):
            open(path, "wb").write(data[:cut])
            with Journal(path) as journal:
                assert [e["n"] for e in journal.events()] == [1], f"cut at {cut}"
                assert journal.append({"n": 3}) == 2  # tail repaired in place
        # an untruncated file still reads both, of course
        open(path, "wb").write(data)
        with Journal(path) as journal:
            assert [e["n"] for e in journal.events()] == [1, 2]

    def test_truncation_inside_the_first_record_empties_the_log(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"n": 1})
        data = open(path, "rb").read()
        for cut in (1, 5, 8, 9, 17, 18, len(data) - 1):
            open(path, "wb").write(data[:cut])
            with Journal(path) as journal:
                assert len(journal) == 0
                assert journal.append({"n": 1}) == 1

    def test_legacy_v1_lines_still_read(self, tmp_path):
        """Files written before the length-prefixed v2 format must stay
        readable, and appends continue (in v2) after the v1 prefix."""
        import zlib

        path = str(tmp_path / "j.jsonl")
        with open(path, "wb") as handle:
            for seq in (1, 2):
                body = canonical_dumps(
                    {"seq": seq, "event": {"n": seq}}
                ).encode("utf-8")
                crc = zlib.crc32(body) & 0xFFFFFFFF
                handle.write(b"%08x " % crc + body + b"\n")
        with Journal(path) as journal:
            assert [e["n"] for e in journal.events()] == [1, 2]
            assert journal.append({"n": 3}) == 3
        with Journal(path) as journal:  # mixed v1+v2 file re-reads fine
            assert [e["n"] for e in journal.events()] == [1, 2, 3]

    def test_torn_v1_tail_is_truncated_too(self, tmp_path):
        import zlib

        path = str(tmp_path / "j.jsonl")
        body = canonical_dumps({"seq": 1, "event": {"n": 1}}).encode("utf-8")
        line = b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"
        open(path, "wb").write(line + line[: len(line) // 2])
        with Journal(path) as journal:
            assert [e["n"] for e in journal.events()] == [1]


class TestSnapshot:
    def _state_and_history(self):
        history = [(query1(), query1().evaluate(demo_catalog()))]
        return refine_sequence(full_alphabet(), history), history

    def test_write_and_load(self, tmp_path):
        state, history = self._state_and_history()
        write_snapshot(str(tmp_path), 5, state, history)
        loaded = latest_snapshot(str(tmp_path))
        assert loaded is not None
        upto, loaded_state, loaded_history = loaded
        assert upto == 5
        assert incomplete_equivalent(loaded_state, state)
        assert loaded_history == history

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        state, history = self._state_and_history()
        write_snapshot(str(tmp_path), 3, state, history)
        newest = write_snapshot(str(tmp_path), 9, state, history)
        raw = open(newest).read()
        open(newest, "w").write(raw[: len(raw) // 2])  # crash mid-write shape
        loaded = latest_snapshot(str(tmp_path))
        assert loaded is not None and loaded[0] == 3

    def test_all_corrupt_means_pure_replay(self, tmp_path):
        state, history = self._state_and_history()
        path = write_snapshot(str(tmp_path), 3, state, history)
        open(path, "w").write("{}")
        assert latest_snapshot(str(tmp_path)) is None

    def test_prune_keeps_newest(self, tmp_path):
        state, history = self._state_and_history()
        for upto in (1, 2, 3, 4):
            write_snapshot(str(tmp_path), upto, state, history)
        assert prune_snapshots(str(tmp_path), keep=2) == 2
        loaded = latest_snapshot(str(tmp_path))
        assert loaded is not None and loaded[0] == 4


class TestSessionStore:
    def test_create_open_list_delete(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = store.create("alpha", CATALOG_ALPHABET, tree_type=catalog_type())
        session.close()
        assert store.list_sessions() == ["alpha"]
        assert store.exists("alpha") and not store.exists("beta")
        with store.open("alpha") as session:
            assert session.name == "alpha"
            assert session.tree_type() == catalog_type()
            assert set(CATALOG_ALPHABET) <= set(session.alphabet())
        store.delete("alpha")
        assert store.list_sessions() == []
        with pytest.raises(StoreError):
            store.open("alpha")

    def test_duplicate_create_rejected(self, tmp_path):
        store = SessionStore(str(tmp_path))
        store.create("dup", CATALOG_ALPHABET).close()
        with pytest.raises(StoreError):
            store.create("dup", CATALOG_ALPHABET)

    def test_invalid_names_rejected(self, tmp_path):
        store = SessionStore(str(tmp_path))
        for bad in ("", ".", "..", "a/b", ".hidden"):
            with pytest.raises(StoreError):
                store.create(bad, CATALOG_ALPHABET)

    def test_live_lock_conflicts(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = store.create("locked", CATALOG_ALPHABET)
        # pid 1 is alive and is not us: simulate another live writer
        with open(os.path.join(session.directory, LOCK_FILENAME), "w") as handle:
            handle.write("1")
        with pytest.raises(SessionLockedError):
            store.open("locked")
        with pytest.raises(SessionLockedError):
            store.delete("locked")
        session.close()  # releases by removing the lock file

    def test_stale_lock_is_broken(self, tmp_path):
        store = SessionStore(str(tmp_path))
        store.create("stale", CATALOG_ALPHABET).close()
        dead = subprocess.Popen(["true"])
        dead.wait()
        lock_path = os.path.join(str(tmp_path), "stale", LOCK_FILENAME)
        with open(lock_path, "w") as handle:
            handle.write(str(dead.pid))
        with store.open("stale") as session:  # stale lock broken silently
            assert session.name == "stale"

    def test_fork_copies_knowledge(self, tmp_path):
        tt = catalog_type()
        doc = generate_catalog(8, seed=2)
        store = SessionStore(str(tmp_path))
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.attach(store.create("orig", CATALOG_ALPHABET, tree_type=tt))
        wh.ask(InMemorySource(doc, tt), query1())
        wh.detach()
        store.fork("orig", "copy")
        copy = Webhouse.resume(store, "copy")
        orig = Webhouse.resume(store, "orig")
        assert copy.history == orig.history
        assert copy.can_answer(query1())
        # diverging the copy leaves the original untouched
        copy.ask(InMemorySource(doc, tt), query2())
        assert len(copy.history) == 2 and len(orig.history) == 1
        copy.detach()
        orig.detach()


@pytest.fixture()
def setting(tmp_path):
    tt = catalog_type()
    doc = generate_catalog(10, seed=42)
    return tt, doc, InMemorySource(doc, tt), SessionStore(str(tmp_path))


class TestWebhouseSessions:
    def _checks(self, wh, doc):
        return (
            wh.can_answer(query1()),
            wh.can_answer(query3()),
            wh.can_answer(query4()),
            wh.is_certain_prefix(query1().evaluate(doc)),
            wh.may_match(query4()),
            wh.data_tree(),
        )

    def test_kill_and_resume_matches_uninterrupted(self, setting):
        """Acceptance: journaled + killed + resumed == uninterrupted."""
        tt, doc, source, store = setting
        journaled = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        journaled.attach(store.create("s", CATALOG_ALPHABET, tree_type=tt))
        uninterrupted = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        for query in (query1(), query2()):
            journaled.ask(source, query)
            uninterrupted.ask(InMemorySource(doc, tt), query)
        expected = self._checks(uninterrupted, doc)
        journaled.detach()  # the process "dies"

        resumed = Webhouse.resume(store, "s")
        assert self._checks(resumed, doc) == expected
        assert resumed.history == uninterrupted.history
        assert incomplete_equivalent(resumed._state, uninterrupted._state)
        resumed.detach()

    def test_pure_replay_and_snapshot_paths_agree(self, setting):
        tt, doc, source, store = setting
        replay_store = SessionStore(store.root, snapshot_every=10_000)
        snap_store = SessionStore(store.root, snapshot_every=1)
        for store_variant, name in ((replay_store, "replay"), (snap_store, "snap")):
            wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
            wh.attach(store_variant.create(name, CATALOG_ALPHABET, tree_type=tt))
            for query in (query1(), query2()):
                wh.ask(InMemorySource(doc, tt), query)
            wh.detach()

        via_replay = Webhouse.resume(replay_store, "replay")
        via_snapshot = Webhouse.resume(snap_store, "snap")
        # one went through checkpoint + suffix, the other replayed all
        assert via_replay.session.info()["snapshots"] == 0
        assert via_snapshot.session.info()["snapshots"] >= 1
        assert via_replay.history == via_snapshot.history
        assert incomplete_equivalent(via_replay._state, via_snapshot._state)
        assert self._checks(via_replay, doc) == self._checks(via_snapshot, doc)
        via_replay.detach()
        via_snapshot.detach()

    def test_snapshot_equals_theorem_3_5_replay(self, setting):
        """Snapshot + suffix must equal refine_sequence over the history."""
        tt, doc, source, store = setting
        snap_store = SessionStore(store.root, snapshot_every=2)
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.attach(snap_store.create("t35", CATALOG_ALPHABET, tree_type=tt))
        for query in (query1(), query2(), query4()):
            wh.ask(source, query)
        wh.detach()
        resumed = Webhouse.resume(snap_store, "t35")
        from_scratch = refine_sequence(full_alphabet(), list(resumed.history))
        assert incomplete_equivalent(resumed._state, from_scratch)
        resumed.detach()

    def test_reset_and_compact_survive_resume(self, setting):
        tt, doc, source, store = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.attach(store.create("rc", CATALOG_ALPHABET, tree_type=tt))
        wh.ask(source, query1())
        wh.reset()
        wh.ask(source, query2())
        wh.compact()
        expected = (len(wh.history), wh.can_answer(query2()), wh.data_tree())
        expected_state = wh._state
        wh.detach()
        resumed = Webhouse.resume(store, "rc")
        assert (
            len(resumed.history),
            resumed.can_answer(query2()),
            resumed.data_tree(),
        ) == expected
        assert incomplete_equivalent(resumed._state, expected_state)
        resumed.detach()

    def test_attach_fresh_session_journals_existing_history(self, setting):
        tt, doc, source, store = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())  # before any session exists
        wh.attach(store.create("late", CATALOG_ALPHABET, tree_type=tt))
        wh.ask(source, query2())
        wh.detach()
        resumed = Webhouse.resume(store, "late")
        assert len(resumed.history) == 2
        assert resumed.can_answer(query1())
        resumed.detach()

    def test_attach_conflicts_are_rejected(self, setting):
        tt, doc, source, store = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        session = store.create("conflict", CATALOG_ALPHABET, tree_type=tt)
        wh.attach(session)
        with pytest.raises(ValueError):
            wh.attach(session)
        wh.ask(source, query1())
        wh.detach()
        other = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        other.ask(source, query2())
        with pytest.raises(ValueError):
            other.attach(store.open("conflict"))

    def test_history_is_immutable_from_outside(self, setting):
        tt, doc, source, store = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        exposed = wh.history
        assert isinstance(exposed, tuple)
        with pytest.raises(AttributeError):
            exposed.append((query2(), DataTree.empty()))
        assert len(wh.history) == 1

    def test_unattached_webhouse_still_works(self, setting):
        tt, doc, source, _store = setting
        wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
        wh.ask(source, query1())
        assert wh.session is None
        assert wh.detach() is None
        assert wh.checkpoint() is None

    def test_obs_counters_cover_store_operations(self, setting):
        import repro.obs as obs

        tt, doc, source, store = setting
        snap_store = SessionStore(store.root, snapshot_every=1)
        obs.reset()
        with obs.capture():
            wh = Webhouse(CATALOG_ALPHABET, tree_type=tt)
            wh.attach(snap_store.create("obs", CATALOG_ALPHABET, tree_type=tt))
            wh.ask(source, query1())
            wh.detach()
            resumed = Webhouse.resume(snap_store, "obs")
            resumed.detach()
            assert obs.metrics.value("store.journal.appends") >= 1
            assert obs.metrics.value("store.snapshot.writes") >= 1
            assert obs.metrics.value("webhouse.resumes") == 1
            span_names = {root.name for root in obs.traces()}
        assert "store.session.recover" in span_names


class TestSessionCli:
    def _run(self, argv):
        from repro.__main__ import main

        return main(["repro", "session", *argv])

    def test_full_cli_cycle(self, tmp_path, capsys):
        root = str(tmp_path / "sessions")
        assert self._run(["create", "demo", "--root", root, "--products", "8", "--seed", "3"]) == 0
        assert self._run(["ask", "demo", "q1", "--root", root]) == 0
        assert self._run(["ask", "demo", "q2", "--root", root]) == 0
        capsys.readouterr()
        assert self._run(["answer", "demo", "q3", "--root", root]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["answerable"] is True and reply["queries_recorded"] == 2
        assert self._run(["compact", "demo", "--root", root]) == 0
        compacted = json.loads(capsys.readouterr().out)
        assert compacted["snapshots"] >= 1 and compacted["mutations_pending"] == 0
        assert self._run(["ask", "demo", "catalog/product/price[<300]", "--root", root]) == 0
        capsys.readouterr()
        assert self._run(["info", "demo", "--root", root]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["queries_recorded"] == 3
        assert self._run(["list", "--root", root]) == 0
        assert json.loads(capsys.readouterr().out)["sessions"] == ["demo"]
        assert self._run(["delete", "demo", "--root", root]) == 0

    def test_cli_errors(self, tmp_path, capsys):
        root = str(tmp_path / "sessions")
        assert self._run([]) == 2
        assert self._run(["nonsense"]) == 2
        assert self._run(["ask", "ghost", "q1", "--root", root]) == 1
        assert self._run(["create", "x", "y", "--root", root]) == 1
        capsys.readouterr()

    def test_query_spec_parsing(self):
        from repro.__main__ import _parse_query_spec

        doc = generate_catalog(8, seed=3)
        assert _parse_query_spec("q1") == query1()
        spec = _parse_query_spec("catalog/product/price[<300]")
        expected = linear_query(
            ["catalog", "product", "price"], [None, None, Cond.lt(300)]
        )
        assert spec.evaluate(doc) == expected.evaluate(doc)
        bar = _parse_query_spec("catalog/~product")
        assert bar.has_bars()
        with pytest.raises(ValueError):
            _parse_query_spec("catalog/~product/name")
        with pytest.raises(ValueError):
            _parse_query_spec("")
