"""Lemma 3.3: intersection of unambiguous incomplete trees."""

import pytest

from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction, Mult
from repro.core.query import PSQuery, linear_query, pattern
from repro.core.tree import DataTree, node
from repro.incomplete.conditional import ConditionalTreeType
from repro.incomplete.enumerate import enumerate_trees
from repro.incomplete.incomplete_tree import DataNode, IncompleteTree
from repro.core.values import as_value
from repro.refine.intersect import compatible, intersect
from repro.refine.inverse import inverse_incomplete, universal_incomplete

ALPHABET = ["root", "a", "b"]


def source():
    return DataTree.build(
        node(
            "r",
            "root",
            0,
            [node("x", "a", 5, [node("y", "b", 1)]), node("z", "a", 0)],
        )
    )


class TestCompatibility:
    def test_disjoint_nodes_compatible(self):
        left = universal_incomplete(ALPHABET)
        right = universal_incomplete(ALPHABET)
        assert compatible(left, right)

    def test_shared_node_conflict(self):
        q1 = linear_query(["root", "a"])
        t1 = DataTree.build(node("r", "root", 0, [node("x", "a", 1)]))
        t2 = DataTree.build(node("r", "root", 0, [node("x", "a", 2)]))
        left = inverse_incomplete(q1, q1.evaluate(t1), ALPHABET)
        right = inverse_incomplete(q1, q1.evaluate(t2), ALPHABET)
        assert not compatible(left, right)
        result = intersect(left, right)
        assert result.is_empty()


class TestProduct:
    def test_membership_is_conjunction(self):
        src = source()
        q1 = linear_query(["root", "a"], [None, Cond.gt(2)])
        q2 = PSQuery(pattern("root", children=[pattern("a", None, [pattern("b")])]))
        left = inverse_incomplete(q1, q1.evaluate(src), ALPHABET)
        right = inverse_incomplete(q2, q2.evaluate(src), ALPHABET)
        both = intersect(left, right)
        assert both.validate() == []
        assert both.is_unambiguous()

        candidates = [src]
        candidates.extend(
            enumerate_trees(left, max_nodes=5, extra_values=[0, 1, 3, 5])[:80]
        )
        candidates.extend(
            enumerate_trees(right, max_nodes=5, extra_values=[0, 1, 3, 5])[:80]
        )
        for tree in candidates:
            expected = left.contains(tree) and right.contains(tree)
            assert both.contains(tree) == expected

    def test_intersection_with_universal_is_identity_on_membership(self):
        src = source()
        q = linear_query(["root", "a"], [None, Cond.gt(2)])
        layer = inverse_incomplete(q, q.evaluate(src), ALPHABET)
        both = intersect(universal_incomplete(ALPHABET), layer)
        for tree in enumerate_trees(layer, max_nodes=4, extra_values=[0, 3, 5]):
            assert both.contains(tree)
        assert both.contains(src)

    def test_allows_empty_anded(self):
        empty_ok = universal_incomplete(ALPHABET)
        assert intersect(empty_ok, empty_ok).allows_empty
        q = linear_query(["root"])
        nonempty = inverse_incomplete(
            q, q.evaluate(source()), ALPHABET
        )  # non-empty answer forbids the empty tree
        assert not intersect(empty_ok, nonempty).allows_empty

    def test_data_nodes_merged(self):
        src = source()
        q1 = linear_query(["root", "a"], [None, Cond.gt(2)])
        q2 = linear_query(["root", "a"], [None, Cond.eq(0)])
        left = inverse_incomplete(q1, q1.evaluate(src), ALPHABET)
        right = inverse_incomplete(q2, q2.evaluate(src), ALPHABET)
        both = intersect(left, right)
        assert {"r", "x", "z"} <= both.data_node_ids()


class TestGuards:
    def test_rejects_non_unambiguous_multiplicities(self):
        tau = ConditionalTreeType.simple(
            ["r"],
            {"r": Disjunction.single(Atom.of(a="+")), "a": Disjunction.leaf()},
        )
        bad = IncompleteTree({}, tau)
        with pytest.raises(ValueError, match="multiplicity"):
            intersect(bad, universal_incomplete(ALPHABET))

    def test_rejects_star_data_node_entry(self):
        tau = ConditionalTreeType(
            ["t-r"],
            {
                "t-r": Disjunction.single(Atom([("t-n", Mult.STAR)])),
                "t-n": Disjunction.leaf(),
            },
            {"t-r": Cond.eq(0), "t-n": Cond.eq(0)},
            {"t-r": "r", "t-n": "n"},
        )
        bad = IncompleteTree(
            {"r": DataNode("root", as_value(0)), "n": DataNode("a", as_value(0))},
            tau,
        )
        with pytest.raises(ValueError, match="data-node entry"):
            intersect(bad, universal_incomplete(ALPHABET))
