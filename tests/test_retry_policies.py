"""Property tests for the retry / deadline / circuit-breaker policies.

Pins the contracts docs/ROBUSTNESS.md promises, over randomized policy
parameters and seeds:

* the backoff *envelope* ``min(cap, base·mult^i)`` is monotone
  non-decreasing and capped;
* every concrete (jittered) delay lies in ``[base_s, envelope(i)]`` —
  hence in ``[base_s, cap_s]``;
* under a :class:`Deadline` the total slept time never exceeds the
  budget (each pause is clamped to the remainder; an exhausted budget
  re-raises instead of sleeping);
* the breaker walks its documented state machine: closed → open after
  N consecutive failures, half-open after the cooldown, re-closed by a
  probe success, re-opened by a probe failure.

Everything runs on injectable clocks / sleeps / rngs — no test sleeps.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.policies import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)


class FakeClock:
    """A manual monotonic clock; ``sleep`` advances it."""

    def __init__(self, now: float = 0.0):
        self.now = now
        self.slept = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        assert seconds >= 0.0
        self.slept.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def policies() -> st.SearchStrategy[RetryPolicy]:
    def build(attempts, base_ms, spread_ms, multiplier, jitter):
        base_s = base_ms / 1000.0
        return RetryPolicy(
            attempts=attempts,
            base_s=base_s,
            cap_s=base_s + spread_ms / 1000.0,
            multiplier=multiplier,
            jitter=jitter,
        )

    return st.builds(
        build,
        attempts=st.integers(min_value=1, max_value=8),
        base_ms=st.floats(min_value=0.1, max_value=50.0),
        spread_ms=st.floats(min_value=0.0, max_value=2000.0),
        multiplier=st.floats(min_value=1.0, max_value=5.0),
        jitter=st.sampled_from(["decorrelated", "none"]),
    )


class TestRetryPolicyProperties:
    @given(policy=policies())
    def test_envelope_is_monotone_and_capped(self, policy):
        envelopes = [policy.envelope(i) for i in range(12)]
        assert all(policy.base_s <= e <= policy.cap_s for e in envelopes)
        assert all(a <= b for a, b in zip(envelopes, envelopes[1:]))

    @given(policy=policies(), seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=200)
    def test_every_delay_within_base_and_envelope(self, policy, seed):
        rng = random.Random(seed)
        previous = 0.0
        for index in range(policy.attempts - 1):
            delay = policy.delay(index, rng, previous)
            assert policy.base_s <= delay <= policy.envelope(index) + 1e-12
            assert delay <= policy.cap_s + 1e-12
            previous = delay

    @given(policy=policies(), seed=st.integers(min_value=0, max_value=10**6))
    def test_delays_generator_matches_attempts(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) == policy.attempts - 1
        assert all(policy.base_s <= d <= policy.cap_s + 1e-12 for d in delays)

    @given(policy=policies())
    def test_no_jitter_is_exactly_the_envelope(self, policy):
        exact = RetryPolicy(
            attempts=policy.attempts,
            base_s=policy.base_s,
            cap_s=policy.cap_s,
            multiplier=policy.multiplier,
            jitter="none",
        )
        assert list(exact.delays()) == [
            exact.envelope(i) for i in range(exact.attempts - 1)
        ]

    @given(
        policy=policies(),
        seed=st.integers(min_value=0, max_value=10**6),
        budget_ms=st.floats(min_value=0.0, max_value=500.0),
        succeed_after=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=200)
    def test_total_sleep_never_exceeds_the_deadline(
        self, policy, seed, budget_ms, succeed_after
    ):
        clock = FakeClock()
        budget = budget_ms / 1000.0
        deadline = Deadline.after(budget, clock=clock)
        calls = []

        def fn():
            calls.append(clock.now)
            if len(calls) <= succeed_after:
                raise OSError("transient")
            return "done"

        try:
            result = policy.call(
                fn,
                retry_on=(OSError,),
                deadline=deadline,
                rng=random.Random(seed),
                sleep=clock.sleep,
            )
            assert result == "done"
            assert len(calls) == succeed_after + 1
        except OSError:
            # ran out of attempts or budget; either way it tried at
            # least once and never re-raised without a real failure
            assert 1 <= len(calls) <= policy.attempts
        assert sum(clock.slept) <= budget + 1e-12
        assert clock.now <= budget + 1e-12

    @given(policy=policies(), seed=st.integers(min_value=0, max_value=10**6))
    def test_exhausted_attempts_reraise_the_last_error(self, policy, seed):
        clock = FakeClock()
        calls = []

        def fn():
            calls.append(None)
            raise ValueError(f"attempt {len(calls)}")

        with pytest.raises(ValueError) as err:
            policy.call(
                fn,
                retry_on=(ValueError,),
                rng=random.Random(seed),
                sleep=clock.sleep,
            )
        assert len(calls) == policy.attempts
        assert str(err.value) == f"attempt {policy.attempts}"
        assert len(clock.slept) == policy.attempts - 1

    def test_unlisted_errors_are_not_retried(self):
        calls = []

        def fn():
            calls.append(None)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=5).call(fn, retry_on=(OSError,), sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_sees_attempt_error_and_pause(self):
        seen = []
        policy = RetryPolicy(attempts=3, base_s=0.01, cap_s=0.01, jitter="none")
        with pytest.raises(OSError):
            policy.call(
                lambda: (_ for _ in ()).throw(OSError("x")),
                retry_on=(OSError,),
                sleep=lambda s: None,
                on_retry=lambda i, exc, pause: seen.append((i, type(exc), pause)),
            )
        assert seen == [(0, OSError, 0.01), (1, OSError, 0.01)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="gaussian")


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(1.5, clock=clock)
        assert deadline.remaining() == pytest.approx(1.5)
        assert not deadline.expired
        clock.advance(1.0)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.remaining() == 0.0 and deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.require("the op")


class TestCircuitBreakerProperties:
    def _breaker(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        return (
            CircuitBreaker(
                "b", failure_threshold=threshold, cooldown_s=cooldown, clock=clock
            ),
            clock,
        )

    @given(threshold=st.integers(min_value=1, max_value=6))
    def test_opens_after_exactly_n_consecutive_failures(self, threshold):
        breaker, _ = self._breaker(threshold=threshold)
        for _ in range(threshold - 1):
            breaker.record_failure()
            assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 *consecutive* failures

    def test_half_open_after_cooldown_then_probe(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.999)
        assert not breaker.allow()
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN and breaker.allow()
        # probe failure re-opens immediately, regardless of the streak
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_guard_refuses_fast_when_open(self):
        breaker, clock = self._breaker(threshold=1, cooldown=5.0)
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        with pytest.raises(CircuitOpen) as err:
            breaker.guard(lambda: "never runs")
        assert err.value.name == "b" and err.value.cooldown_s == 5.0
        clock.advance(5.0)
        assert breaker.guard(lambda: "ran") == "ran"
        assert breaker.state == CLOSED

    @given(
        threshold=st.integers(min_value=1, max_value=4),
        events=st.lists(
            st.sampled_from(["ok", "fail", "wait"]), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=200)
    def test_state_machine_matches_the_model(self, threshold, events):
        """Model-check the breaker against the documented transition
        system under arbitrary success/failure/cooldown interleavings."""
        cooldown = 10.0
        breaker, clock = self._breaker(threshold=threshold, cooldown=cooldown)
        state, streak, opened_at = CLOSED, 0, None

        def effective():
            if state == OPEN and clock.now - opened_at >= cooldown:
                return HALF_OPEN
            return state

        for event in events:
            if event == "wait":
                clock.advance(cooldown)
            elif event == "ok":
                breaker.record_success()
                state, streak, opened_at = CLOSED, 0, None
            else:
                state = effective()  # materialize the cooldown transition
                breaker.record_failure()
                streak += 1
                if (state == HALF_OPEN or streak >= threshold) and state != OPEN:
                    state, opened_at = OPEN, clock.now
            assert breaker.state == effective()
            assert breaker.allow() == (effective() != OPEN)

    def test_books_count_opens_closes_refusals(self):
        breaker, clock = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        breaker.record_success()
        stats = breaker.stats()
        assert stats["opens"] == 1 and stats["closes"] == 1
        assert stats["refused"] == 1 and stats["state"] == CLOSED

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)
