"""Interval algebra tests, including hypothesis properties.

The key guarantee: canonical form makes structural equality coincide
with set equality, and the Boolean algebra is exact.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet, point


def F(x, y=1) -> Fraction:
    return Fraction(x, y)


class TestInterval:
    def test_point_contains_only_itself(self):
        p = point(F(3))
        assert p.contains(F(3))
        assert not p.contains(F(2))
        assert p.is_point()

    def test_open_interval_excludes_endpoints(self):
        iv = Interval(F(0), F(1), False, False)
        assert not iv.contains(F(0))
        assert not iv.contains(F(1))
        assert iv.contains(F(1, 2))

    def test_unbounded_sides(self):
        below = Interval(None, F(5), False, True)
        assert below.contains(F(-1000))
        assert below.contains(F(5))
        assert not below.contains(F(6))

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(F(2), F(1), True, True)
        with pytest.raises(ValueError):
            Interval(F(1), F(1), True, False)

    def test_sample_inside(self):
        for iv in [
            Interval(None, None, False, False),
            Interval(F(0), None, False, False),
            Interval(None, F(0), False, False),
            Interval(F(0), F(1), False, False),
            point(F(9)),
        ]:
            assert iv.contains(iv.sample())


class TestComparisons:
    @pytest.mark.parametrize(
        "op,value,inside,outside",
        [
            ("=", 5, [5], [4, 6]),
            ("!=", 5, [4, 6], [5]),
            ("<", 5, [4], [5, 6]),
            ("<=", 5, [5, 4], [6]),
            (">", 5, [6], [5, 4]),
            (">=", 5, [5, 6], [4]),
        ],
    )
    def test_semantics(self, op, value, inside, outside):
        s = IntervalSet.comparison(op, F(value))
        for x in inside:
            assert s.contains(F(x))
        for x in outside:
            assert not s.contains(F(x))

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            IntervalSet.comparison("~", F(1))


class TestCanonicalForm:
    def test_adjacent_closed_intervals_merge(self):
        a = IntervalSet([Interval(F(0), F(1), True, True)])
        b = IntervalSet([Interval(F(1), F(2), True, True)])
        merged = a.union(b)
        assert merged == IntervalSet([Interval(F(0), F(2), True, True)])

    def test_touching_open_closed_merge(self):
        a = IntervalSet([Interval(F(0), F(1), True, False)])
        b = IntervalSet([Interval(F(1), F(2), True, True)])
        assert len(a.union(b).intervals) == 1

    def test_gap_of_one_point_stays_split(self):
        # (0,1) u (1,2): 1 is missing, intervals must not merge
        a = IntervalSet([Interval(F(0), F(1), False, False)])
        b = IntervalSet([Interval(F(1), F(2), False, False)])
        merged = a.union(b)
        assert len(merged.intervals) == 2
        assert not merged.contains(F(1))

    def test_ne_is_two_intervals(self):
        s = IntervalSet.comparison("!=", F(0))
        assert len(s.intervals) == 2

    def test_complement_roundtrip(self):
        s = IntervalSet.comparison("<", F(3)).union(IntervalSet.singleton(F(7)))
        assert s.complement().complement() == s

    def test_all_and_empty(self):
        assert IntervalSet.all().complement() == IntervalSet.empty()
        assert IntervalSet.empty().complement() == IntervalSet.all()


# -- hypothesis properties ----------------------------------------------------

fractions = st.fractions(
    min_value=-20, max_value=20, max_denominator=8
)

atoms = st.tuples(
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), fractions
)


def build(ops) -> IntervalSet:
    s = IntervalSet.empty()
    for op, v in ops:
        s = s.union(IntervalSet.comparison(op, v))
    return s


@given(st.lists(atoms, max_size=4), st.lists(atoms, max_size=4), fractions)
@settings(max_examples=200, deadline=None)
def test_union_semantics(left, right, probe):
    ls, rs = build(left), build(right)
    assert ls.union(rs).contains(probe) == (ls.contains(probe) or rs.contains(probe))


@given(st.lists(atoms, max_size=4), st.lists(atoms, max_size=4), fractions)
@settings(max_examples=200, deadline=None)
def test_intersection_semantics(left, right, probe):
    ls, rs = build(left), build(right)
    assert ls.intersect(rs).contains(probe) == (
        ls.contains(probe) and rs.contains(probe)
    )


@given(st.lists(atoms, max_size=4), fractions)
@settings(max_examples=200, deadline=None)
def test_complement_semantics(ops, probe):
    s = build(ops)
    assert s.complement().contains(probe) == (not s.contains(probe))


@given(st.lists(atoms, max_size=4))
@settings(max_examples=200, deadline=None)
def test_samples_are_members(ops):
    s = build(ops)
    if not s.is_empty():
        for sample in s.samples(4):
            assert s.contains(sample)


@given(st.lists(atoms, max_size=4), st.lists(atoms, max_size=4))
@settings(max_examples=200, deadline=None)
def test_implies_is_subset(left, right):
    ls, rs = build(left), build(right)
    if ls.implies(rs):
        # every sampled member of ls is in rs
        for sample in ls.samples(6):
            assert rs.contains(sample)
    else:
        witness = ls.difference(rs)
        assert not witness.is_empty()
        assert ls.contains(witness.sample())
        assert not rs.contains(witness.sample())
