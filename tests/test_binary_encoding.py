"""First-child/next-sibling encoding round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import DataTree, node
from repro.extensions.binary_encoding import (
    NIL,
    Bin,
    bin_node,
    decode,
    encode,
    nil,
)


class TestEncode:
    def test_single_node(self):
        tree = DataTree.single("r", "root")
        binary = encode(tree)
        assert binary.label == "root"
        assert binary.left.is_nil() and binary.right.is_nil()

    def test_children_become_left_chain(self):
        tree = DataTree.build(
            node("r", "root", 0, [node("a", "a", 0), node("b", "b", 0)])
        )
        binary = encode(tree)
        assert binary.left.label == "a"
        assert binary.left.right.label == "b"
        assert binary.left.left.is_nil()

    def test_empty_tree(self):
        assert encode(DataTree.empty()).is_nil()

    def test_size(self):
        tree = DataTree.build(node("r", "root", 0, [node("a", "a", 0)]))
        binary = encode(tree)
        # 2 real nodes + nil markers
        assert binary.size() >= 2
        assert binary.labels() >= {"root", "a", NIL}


class TestDecode:
    def test_roundtrip_shape(self):
        tree = DataTree.build(
            node(
                "r",
                "root",
                0,
                [node("a", "a", 0, [node("c", "c", 0)]), node("b", "b", 0)],
            )
        )
        back = decode(encode(tree))
        assert back.isomorphic_to(
            DataTree.build(
                node(
                    "r2",
                    "root",
                    0,
                    [node("a2", "a", 0, [node("c2", "c", 0)]), node("b2", "b", 0)],
                )
            )
        )

    def test_decode_nil_is_empty(self):
        assert decode(nil()).is_empty()

    def test_decode_rejects_sibling_roots(self):
        import pytest

        forest = Bin("a", nil(), Bin("b", nil(), nil()))
        with pytest.raises(ValueError):
            decode(forest)


labels = st.sampled_from(["a", "b", "c"])


def tree_specs(depth):
    ids = st.integers(min_value=0, max_value=10**9).map(lambda i: f"n{i}")
    if depth == 0:
        return st.builds(lambda i, l: node(i, l), ids, labels)
    return st.builds(
        lambda i, l, kids: node(i, l, 0, kids),
        ids,
        labels,
        st.lists(tree_specs(depth - 1), max_size=3),
    )


@given(tree_specs(2))
@settings(max_examples=60, deadline=None)
def test_roundtrip_isomorphic(spec):
    try:
        tree = DataTree.build(spec)
    except ValueError:
        return  # duplicate random ids
    back = decode(encode(tree))
    # values are dropped by design; compare label structure
    def shape(t, n):
        return (t.label(n), sorted(shape(t, c) for c in t.children(n)))

    assert shape(back, back.root) == shape(tree, tree.root)
