"""Incomplete tree tests (Definition 2.7, Example 2.2, Definition 3.1)."""

import pytest

from repro.core.conditions import Cond
from repro.core.multiplicity import Atom, Disjunction, Mult
from repro.core.tree import DataTree, node
from repro.core.values import as_value
from repro.incomplete.conditional import ConditionalTreeType
from repro.incomplete.incomplete_tree import (
    DataNode,
    IncompleteTree,
    data_nodes_from_tree,
)


class TestExample22:
    """The paper's Example 2.2 (first incomplete tree)."""

    def test_validates(self, example_2_2):
        incomplete, _q = example_2_2
        assert incomplete.validate() == []

    def test_unambiguous(self, example_2_2):
        incomplete, _q = example_2_2
        assert incomplete.is_unambiguous()
        assert incomplete.is_unambiguous(strict=True)

    def test_membership_semantics(self, example_2_2):
        incomplete, _q = example_2_2
        # the minimal tree: r with child n
        minimal = DataTree.build(node("r", "root", 0, [node("n", "a", 0)]))
        assert incomplete.contains(minimal)
        # extra a-children must have nonzero values
        ok = DataTree.build(
            node("r", "root", 0, [node("n", "a", 0), node("x", "a", 3)])
        )
        assert incomplete.contains(ok)
        bad = DataTree.build(
            node("r", "root", 0, [node("n", "a", 0), node("x", "a", 0)])
        )
        assert not incomplete.contains(bad)
        # missing the mandatory data node n
        missing = DataTree.build(node("r", "root", 0, [node("x", "a", 3)]))
        assert not incomplete.contains(missing)

    def test_wrong_root_id(self, example_2_2):
        incomplete, _q = example_2_2
        other = DataTree.build(node("other", "root", 0, [node("n", "a", 0)]))
        assert not incomplete.contains(other)

    def test_data_tree(self, example_2_2):
        incomplete, _q = example_2_2
        td = incomplete.data_tree()
        assert td.root == "r"
        assert set(td.node_ids()) == {"r", "n"}
        assert td.label("n") == "a"

    def test_not_empty(self, example_2_2):
        incomplete, _q = example_2_2
        assert not incomplete.is_empty()

    def test_empty_tree_only_with_flag(self, example_2_2):
        incomplete, _q = example_2_2
        assert not incomplete.contains(DataTree.empty())
        assert incomplete.with_allows_empty(True).contains(DataTree.empty())


class TestValidation:
    def test_node_symbol_must_pin_value(self):
        tau = ConditionalTreeType(
            ["t-r"],
            {"t-r": Disjunction.leaf()},
            {"t-r": Cond.gt(0)},  # does not pin a single value
            {"t-r": "r"},
        )
        incomplete = IncompleteTree({"r": DataNode("root", as_value(1))}, tau)
        assert any("force value" in p for p in incomplete.validate())

    def test_node_entry_multiplicity_checked(self):
        tau = ConditionalTreeType(
            ["t-r"],
            {
                "t-r": Disjunction.single(Atom([("t-n", Mult.STAR)])),
                "t-n": Disjunction.leaf(),
            },
            {"t-r": Cond.eq(0), "t-n": Cond.eq(0)},
            {"t-r": "r", "t-n": "n"},
        )
        incomplete = IncompleteTree(
            {"r": DataNode("root", as_value(0)), "n": DataNode("a", as_value(0))},
            tau,
        )
        assert any("multiplicity" in p for p in incomplete.validate())

    def test_node_under_non_data_parent_flagged(self):
        tau = ConditionalTreeType(
            ["t-a"],
            {
                "t-a": Disjunction.single(Atom([("t-n", Mult.ONE)])),
                "t-n": Disjunction.leaf(),
            },
            {"t-n": Cond.eq(0)},
            {"t-a": "a", "t-n": "n"},
        )
        incomplete = IncompleteTree({"n": DataNode("b", as_value(0))}, tau)
        assert any("requirement 4" in p for p in incomplete.validate())


class TestAmbiguity:
    def test_overlapping_star_conditions_flagged(self):
        tau = ConditionalTreeType(
            ["r"],
            {
                "r": Disjunction.single(Atom.of(a1="*", a2="*")),
                "a1": Disjunction.leaf(),
                "a2": Disjunction.leaf(),
            },
            {"a1": Cond.lt(10), "a2": Cond.lt(20)},  # overlap on (-inf,10)
            {"r": "r", "a1": "a", "a2": "a"},
        )
        incomplete = IncompleteTree({}, tau)
        assert not incomplete.is_unambiguous()
        assert any("(2)" in r for r in incomplete.ambiguity_reasons())

    def test_condition_3_only_strict(self):
        tau = ConditionalTreeType(
            ["r"],
            {
                "r": Disjunction.single(Atom.of(a1="*", a2="*")),
                "a1": Disjunction.leaf(),
                "a2": Disjunction.leaf(),
            },
            {"a1": Cond.lt(10), "a2": Cond.ge(10)},  # exclusive
            {"r": "r", "a1": "a", "a2": "a"},
        )
        incomplete = IncompleteTree({}, tau)
        assert incomplete.is_unambiguous()
        assert not incomplete.is_unambiguous(strict=True)


class TestMisc:
    def test_nothing(self):
        nothing = IncompleteTree.nothing(allows_empty=True)
        assert not nothing.is_empty()
        assert nothing.contains(DataTree.empty())
        truly_nothing = IncompleteTree.nothing(allows_empty=False)
        assert truly_nothing.is_empty()

    def test_data_nodes_from_tree(self, simple_tree):
        nodes = data_nodes_from_tree(simple_tree)
        assert set(nodes) == {"r", "x", "y", "z"}
        assert nodes["y"].label == "b"

    def test_size_counts_nodes_and_type(self, example_2_2):
        incomplete, _q = example_2_2
        assert incomplete.size() == 2 + incomplete.type.size()

    def test_pretty_mentions_data(self, example_2_2):
        incomplete, _q = example_2_2
        text = incomplete.pretty()
        assert "data nodes" in text and "roots:" in text
