"""Experiment E12 — Theorem 4.1: DNF validity ⟺ certain answer prefix
for branching+optional queries."""

import itertools
import random

import pytest

from repro.reductions.dnf import (
    assignment_tree,
    brute_force_validity,
    certain_prefix_of_answers,
    dnf_tree_type,
    setup_query,
    validity_query,
)


class TestArtifacts:
    def test_tree_type(self):
        tt = dnf_tree_type()
        assert tt.roots == {"root"}
        assert tt.atom("val").mult("var") is not None

    def test_assignment_trees_satisfy_type(self):
        tt = dnf_tree_type()
        for bits in itertools.product((0, 1), repeat=3):
            assert tt.satisfied_by(assignment_tree(bits))

    def test_setup_query_accepts_assignments(self):
        q = setup_query(2)
        assert q.matches(assignment_tree([0, 1]))

    def test_setup_query_rejects_non_boolean(self):
        # the optional negated-range subtree does not *reject* here (it is
        # optional); it extends the answer when a bad var exists.  The
        # reduction relies on the recorded answer, so we only check the
        # pattern machinery runs.
        q = setup_query(1)
        assert q.matches(assignment_tree([1]))

    def test_validity_query_matches_satisfying_disjunct(self):
        # disjunct x1 ∧ ¬x2: satisfied by (1, 0)
        q = validity_query([(1, -2, -2)])
        answer = q.evaluate(assignment_tree([1, 0]))
        labels = {answer.label(n) for n in answer.node_ids()}
        assert "val" in labels
        answer_bad = q.evaluate(assignment_tree([0, 1]))
        assert answer_bad.is_empty() or "val" not in {
            answer_bad.label(n) for n in answer_bad.node_ids()
        }


class TestEquivalence:
    @pytest.mark.parametrize(
        "n_vars,disjuncts,valid",
        [
            # x1 ∨ ¬x1 is valid
            (1, [(1, 1, 1), (-1, -1, -1)], True),
            # x1 alone is not
            (1, [(1, 1, 1)], False),
            # (x1∧x2) ∨ (¬x1) ∨ (x1∧¬x2): covers everything
            (2, [(1, 2, 2), (-1, -1, -1), (1, -2, -2)], True),
            # missing the (0,1) assignment
            (2, [(1, 2, 2), (-1, -2, -2)], False),
        ],
    )
    def test_known_cases(self, n_vars, disjuncts, valid):
        assert brute_force_validity(n_vars, disjuncts) == valid
        assert certain_prefix_of_answers(n_vars, disjuncts) == valid

    def test_randomized_equivalence(self):
        rng = random.Random(42)
        for _ in range(25):
            n_vars = rng.randint(1, 3)
            disjuncts = []
            for _d in range(rng.randint(1, 4)):
                disjuncts.append(
                    tuple(
                        rng.choice([1, -1]) * rng.randint(1, n_vars)
                        for _lit in range(3)
                    )
                )
            assert certain_prefix_of_answers(n_vars, disjuncts) == (
                brute_force_validity(n_vars, disjuncts)
            ), disjuncts
