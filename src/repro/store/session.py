"""Named durable sessions under one root directory.

Layout (see ``docs/PERSISTENCE.md``)::

    <root>/
      <name>/
        meta.json             # alphabet, tree type, options (versioned)
        journal.jsonl         # append-only event log (journal.py)
        snapshot-XXXXXXXX.json# checkpoints (snapshot.py)
        lock                  # advisory single-writer lock (pid)

A :class:`Session` is the handle a :class:`~repro.mediator.webhouse.Webhouse`
attaches to: every knowledge mutation becomes one journal event, and
:meth:`Session.recover` rebuilds the warehouse state by loading the
newest snapshot and replaying the journal suffix with Algorithm Refine —
Theorem 3.5 guarantees the replayed state is equivalent to the one the
crashed process held.

Journal event vocabulary (all queries/answers via :mod:`.codec`):

======================  ======================================================
``record``              one Refine step: ``query``, ``answer``, ``origin``
                        (``ask`` | ``record`` | ``attach``)
``reset``               reinitialize to the bare type (source update policy)
``compact``             lossy forgetting heuristic, optional ``labels``
``complete``            informational: a mediated completion ran
                        (``query``, ``plan_queries``); not a state mutation
======================  ======================================================
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from ..refine.heuristics import forget_specializations
from ..refine.inverse import universal_incomplete
from ..refine.minimize import merge_equivalent_symbols
from ..refine.refine import refine
from . import codec
from .journal import Journal
from .snapshot import (
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    write_snapshot,
)

META_FILENAME = "meta.json"
JOURNAL_FILENAME = "journal.jsonl"
LOCK_FILENAME = "lock"

#: Event types that mutate the knowledge state (and therefore count
#: toward the snapshot threshold).
MUTATING_EVENTS = frozenset({"record", "reset", "compact"})


class StoreError(ValueError):
    """A session operation cannot be carried out."""


class SessionLockedError(StoreError):
    """Another live process holds the session's writer lock."""


@dataclass
class RecoveredState:
    """What :meth:`Session.recover` reconstructs from disk."""

    state: IncompleteTree
    history: List[Tuple[PSQuery, DataTree]]
    replayed: int  # journal records applied on top of the snapshot
    snapshot_seq: int  # 0 when recovery was pure replay


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class _Lock:
    """Advisory single-writer lock: an O_EXCL file holding the owner pid.

    A lock whose owner process is gone is considered stale and broken
    automatically, so crashes never wedge a session.
    """

    def __init__(self, path: str):
        self._path = path
        self._held = False
        for _attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = self._owner_pid()
                if owner is not None and owner != os.getpid() and _pid_alive(owner):
                    raise SessionLockedError(
                        f"session is locked by live process {owner} ({path})"
                    )
                try:  # stale (or unreadable) lock: break it and retry
                    os.remove(path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._held = True
            return
        raise SessionLockedError(f"could not acquire session lock ({path})")

    def _owner_pid(self) -> Optional[int]:
        try:
            with open(self._path, "r") as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    def release(self) -> None:
        if self._held:
            try:
                os.remove(self._path)
            except OSError:
                pass
            self._held = False


class Session:
    """One named durable session: meta + journal + snapshots + lock."""

    def __init__(self, directory: str, meta: Dict[str, Any], snapshot_every: int):
        self._directory = directory
        self._meta = meta
        self._snapshot_every = max(1, int(snapshot_every))
        self._lock = _Lock(os.path.join(directory, LOCK_FILENAME))
        try:
            self._journal = Journal(os.path.join(directory, JOURNAL_FILENAME))
        except Exception:
            self._lock.release()
            raise
        loaded = latest_snapshot(directory)
        self._snapshot_upto = 0 if loaded is None else loaded[0]
        # a compacted journal may be empty while the snapshot covers
        # 1..n; appends must continue at n+1, not restart at 1
        self._journal.ensure_seq_floor(self._snapshot_upto)

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._meta["name"]

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self._meta)

    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def snapshot_every(self) -> int:
        return self._snapshot_every

    def alphabet(self) -> List[str]:
        return list(self._meta["alphabet"])

    def tree_type(self) -> Optional[TreeType]:
        data = self._meta.get("tree_type")
        return None if data is None else codec.treetype_from_json(data)

    def auto_minimize(self) -> bool:
        return bool(self._meta.get("auto_minimize", False))

    def is_empty(self) -> bool:
        """No persisted knowledge yet (fresh session)?"""
        return len(self._journal) == 0 and self._snapshot_upto == 0

    # -- journaling -----------------------------------------------------------

    def append_event(self, event: Dict[str, Any]) -> int:
        return self._journal.append(event)

    def mutations_pending(self) -> int:
        """Mutating journal records not yet covered by a snapshot."""
        return sum(
            1
            for record in self._journal.records()
            if record.seq > self._snapshot_upto
            and record.event.get("type") in MUTATING_EVENTS
        )

    # -- recovery -------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Snapshot + journal-suffix replay (Theorem 3.5 equivalence)."""
        with _span("store.session.recover") as sp:
            alphabet = self.alphabet()
            auto_minimize = self.auto_minimize()
            loaded = latest_snapshot(self._directory)
            if loaded is None:
                upto = 0
                state = universal_incomplete(alphabet)
                history: List[Tuple[PSQuery, DataTree]] = []
            else:
                upto, state, history = loaded
            self._snapshot_upto = upto
            replayed = 0
            for record in self._journal.records():
                if record.seq <= upto:
                    continue
                if self._apply(record.event, history):
                    state = self._transition(
                        state, record.event, alphabet, auto_minimize
                    )
                replayed += 1
                if _OBS.enabled:
                    _OBS.metrics.inc("store.replay.steps")
            if _OBS.enabled and sp is not None:
                sp.attrs.update(
                    snapshot_seq=upto, replayed=replayed, history=len(history)
                )
            return RecoveredState(state, history, replayed, upto)

    def _apply(
        self, event: Dict[str, Any], history: List[Tuple[PSQuery, DataTree]]
    ) -> bool:
        """Update the history for one event; True when the state changes."""
        kind = event.get("type")
        if kind == "record":
            history.append(
                (
                    codec.query_from_json(event["query"]),
                    codec.tree_from_json(event["answer"]),
                )
            )
            return True
        if kind == "reset":
            history.clear()
            return True
        if kind == "compact":
            return True
        if kind == "complete":
            return False
        raise StoreError(f"unknown journal event type {kind!r}")

    def _transition(
        self,
        state: IncompleteTree,
        event: Dict[str, Any],
        alphabet: List[str],
        auto_minimize: bool,
    ) -> IncompleteTree:
        """Mirror exactly what the Webhouse mutation methods do."""
        kind = event["type"]
        if kind == "record":
            state = refine(
                state,
                codec.query_from_json(event["query"]),
                codec.tree_from_json(event["answer"]),
                alphabet,
            )
            return merge_equivalent_symbols(state) if auto_minimize else state
        if kind == "reset":
            return universal_incomplete(alphabet)
        if kind == "compact":
            labels = event.get("labels")
            return forget_specializations(state, labels)
        raise StoreError(f"unknown journal event type {kind!r}")

    # -- checkpointing --------------------------------------------------------

    def snapshot(
        self,
        state: IncompleteTree,
        history: List[Tuple[PSQuery, DataTree]],
        compact_journal: bool = True,
        keep: int = 2,
    ) -> str:
        """Checkpoint now; optionally drop the covered journal prefix.

        The snapshot is read back and checksum-verified before it is
        promoted (see :func:`repro.store.snapshot.write_snapshot`) and
        before the journal prefix it covers is compacted away: a
        silently corrupt snapshot must never become the only copy of
        the records it claims to hold.  On verification failure
        :class:`StoreError` is raised with the previous snapshot and
        the journal intact.
        """
        upto = self._journal.last_seq
        try:
            path = write_snapshot(self._directory, upto, state, history)
        except SnapshotError as exc:
            raise StoreError(str(exc))
        self._snapshot_upto = upto
        if compact_journal:
            self._journal.compact(upto)
        prune_snapshots(self._directory, keep=keep)
        return path

    def maybe_snapshot(
        self, state: IncompleteTree, history: List[Tuple[PSQuery, DataTree]]
    ) -> Optional[str]:
        """Checkpoint when replay cost crosses the threshold."""
        if self.mutations_pending() >= self._snapshot_every:
            return self.snapshot(state, history)
        return None

    # -- bookkeeping ----------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """On-disk shape of the session, as plain data."""
        snapshots = list_snapshots(self._directory)
        return {
            "name": self.name,
            "directory": self._directory,
            "journal_records": len(self._journal),
            "journal_last_seq": self._journal.last_seq,
            "journal_bytes": self._journal.size_bytes(),
            "snapshot_seq": self._snapshot_upto,
            "snapshots": len(snapshots),
            "mutations_pending": self.mutations_pending(),
            "snapshot_every": self._snapshot_every,
            "auto_minimize": self.auto_minimize(),
            "alphabet_size": len(self._meta["alphabet"]),
        }

    def close(self) -> None:
        self._journal.close()
        self._lock.release()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session({self.name!r}, {len(self._journal)} journal records, "
            f"snapshot@{self._snapshot_upto})"
        )


class SessionStore:
    """Many named sessions under one root directory."""

    def __init__(self, root: str, snapshot_every: int = 32):
        self._root = os.fspath(root)
        self._snapshot_every = max(1, int(snapshot_every))
        os.makedirs(self._root, exist_ok=True)

    @property
    def root(self) -> str:
        return self._root

    @property
    def snapshot_every(self) -> int:
        """The snapshot cadence every session (and sub-store) inherits.

        Exposed so a shard worker's :class:`~repro.cluster.proc.
        WorkerConfig` can rebuild an equivalent store in its own
        process from plain data.
        """
        return self._snapshot_every

    def shard(self, index: int) -> "SessionStore":
        """A namespaced sub-store for one cluster shard.

        Shard ``i``'s sessions live under ``<root>/shard-NNNN/`` so each
        shard journals and snapshots independently: no shared journal
        tail, no cross-shard lock contention, and a shard can be moved
        to another process by moving one directory.  Session *names*
        stay unchanged inside the namespace — the consistent-hash
        router (``repro.cluster.ring``) decides which shard directory a
        session key lives in, and because routing is stable across
        processes a resumed cluster finds every session where it left
        it.
        """
        if index < 0:
            raise StoreError(f"invalid shard index {index!r}")
        return SessionStore(
            os.path.join(self._root, f"shard-{index:04d}"),
            snapshot_every=self._snapshot_every,
        )

    def _session_dir(self, name: str) -> str:
        if not name or name != os.path.basename(name) or name.startswith("."):
            raise StoreError(f"invalid session name {name!r}")
        return os.path.join(self._root, name)

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        name: str,
        alphabet: Iterable[str],
        tree_type: Optional[TreeType] = None,
        auto_minimize: bool = False,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Session:
        """Create a fresh session and return its (locked) handle."""
        directory = self._session_dir(name)
        if os.path.exists(os.path.join(directory, META_FILENAME)):
            raise StoreError(f"session {name!r} already exists")
        os.makedirs(directory, exist_ok=True)
        labels = set(alphabet)
        if tree_type is not None:
            labels |= set(tree_type.alphabet)
        meta = {
            "format": codec.FORMAT_VERSION,
            "name": name,
            "alphabet": sorted(labels),
            "tree_type": None if tree_type is None else codec.treetype_to_json(tree_type),
            "auto_minimize": bool(auto_minimize),
            "extra": dict(extra or {}),
        }
        meta_path = os.path.join(directory, META_FILENAME)
        with open(meta_path, "w", encoding="utf-8") as handle:
            handle.write(codec.canonical_dumps(meta))
            handle.flush()
            os.fsync(handle.fileno())
        return Session(directory, meta, self._snapshot_every)

    def open(self, name: str) -> Session:
        """Open an existing session (acquires the writer lock)."""
        directory = self._session_dir(name)
        meta_path = os.path.join(directory, META_FILENAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except OSError:
            raise StoreError(f"no such session {name!r} under {self._root}")
        except json.JSONDecodeError as exc:
            raise StoreError(f"session {name!r} has a corrupt meta.json: {exc}")
        if meta.get("format") != codec.FORMAT_VERSION:
            raise StoreError(
                f"session {name!r} uses unsupported format {meta.get('format')!r}"
            )
        return Session(directory, meta, self._snapshot_every)

    def exists(self, name: str) -> bool:
        try:
            directory = self._session_dir(name)
        except StoreError:
            return False
        return os.path.exists(os.path.join(directory, META_FILENAME))

    def list_sessions(self) -> List[str]:
        try:
            names = os.listdir(self._root)
        except OSError:
            return []
        return sorted(
            name
            for name in names
            if os.path.exists(os.path.join(self._root, name, META_FILENAME))
        )

    def peek(self, name: str) -> Dict[str, Any]:
        """Read-only description of a session **without** taking its lock.

        The ops server's ``/sessions`` endpoint lists every session
        while writers may be live; this reads only ``meta.json`` and
        file sizes, so it never blocks or steals a lock.  Numbers are
        advisory (a concurrent writer may be appending).
        """
        directory = self._session_dir(name)
        meta_path = os.path.join(directory, META_FILENAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except OSError:
            raise StoreError(f"no such session {name!r} under {self._root}")
        except json.JSONDecodeError as exc:
            raise StoreError(f"session {name!r} has a corrupt meta.json: {exc}")
        try:
            journal_bytes = os.stat(os.path.join(directory, JOURNAL_FILENAME)).st_size
        except OSError:
            journal_bytes = 0
        snapshots = list_snapshots(directory)
        lock_path = os.path.join(directory, LOCK_FILENAME)
        locked = False
        if os.path.exists(lock_path):
            try:
                with open(lock_path, "r") as handle:
                    owner = int(handle.read().strip())
                locked = _pid_alive(owner)
            except (OSError, ValueError):
                locked = False
        return {
            "name": meta.get("name", name),
            "format": meta.get("format"),
            "alphabet_size": len(meta.get("alphabet") or []),
            "auto_minimize": bool(meta.get("auto_minimize", False)),
            "workload": (meta.get("extra") or {}).get("workload"),
            "journal_bytes": journal_bytes,
            "snapshots": len(snapshots),
            "snapshot_seq": snapshots[0][0] if snapshots else 0,
            "locked": locked,
        }

    def delete(self, name: str) -> None:
        """Remove a session and everything under it.

        Refuses while a live process holds the lock.
        """
        directory = self._session_dir(name)
        if not os.path.exists(directory):
            raise StoreError(f"no such session {name!r} under {self._root}")
        lock = _Lock(os.path.join(directory, LOCK_FILENAME))  # raises if held
        lock.release()
        shutil.rmtree(directory)

    def fork(self, source: str, target: str) -> None:
        """Copy a session's persisted knowledge under a new name.

        The source must not be locked by a live writer (its on-disk
        files are copied as-is, minus the lock).
        """
        source_dir = self._session_dir(source)
        target_dir = self._session_dir(target)
        if not os.path.exists(os.path.join(source_dir, META_FILENAME)):
            raise StoreError(f"no such session {source!r} under {self._root}")
        if os.path.exists(os.path.join(target_dir, META_FILENAME)):
            raise StoreError(f"session {target!r} already exists")
        lock = _Lock(os.path.join(source_dir, LOCK_FILENAME))
        try:
            os.makedirs(target_dir, exist_ok=True)
            with open(os.path.join(source_dir, META_FILENAME), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            meta["name"] = target
            with open(os.path.join(target_dir, META_FILENAME), "w", encoding="utf-8") as handle:
                handle.write(codec.canonical_dumps(meta))
            for filename in os.listdir(source_dir):
                if filename in (META_FILENAME, LOCK_FILENAME) or filename.endswith(".tmp"):
                    continue
                shutil.copy2(
                    os.path.join(source_dir, filename),
                    os.path.join(target_dir, filename),
                )
        finally:
            lock.release()

    def __repr__(self) -> str:
        return f"SessionStore({self._root!r}, {len(self.list_sessions())} sessions)"
