"""Canonical, versioned JSON codecs for the library's value objects.

Every object the persistence layer touches — data trees, tree types,
ps-queries, conditions, and incomplete trees — round-trips through plain
JSON here.  Two properties matter for a write-ahead log:

* **canonical**: :func:`canonical_dumps` renders with sorted keys and no
  whitespace, so equal objects produce byte-identical lines and the
  journal checksums are stable across processes;
* **versioned**: top-level documents carry a ``format`` tag
  (:data:`FORMAT_VERSION`) via :func:`encode_document`, so a future
  format change can keep reading old sessions.

Conditions serialize by their *denotation* (Lemma 2.3's interval/string
normal form, mirroring ``incomplete/xml_view.py``), so the round trip
preserves semantics exactly even when the original syntax tree is lost.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.conditions import Cond, ValueSet
from ..core.intervals import Interval, IntervalSet
from ..core.multiplicity import Atom, Disjunction, Mult, parse_mult
from ..core.query import PSQuery, QueryNode
from ..core.stringsets import StringSet
from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.treetype import TreeType
from ..core.values import Value, value_repr
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import DataNode, IncompleteTree

#: Version tag stamped on every persisted document.
FORMAT_VERSION = 1

Json = Any


class CodecError(ValueError):
    """A persisted document cannot be decoded."""


def canonical_dumps(obj: Json) -> str:
    """Render JSON deterministically (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def encode_document(kind: str, body: Json) -> Json:
    """Wrap a payload in the versioned envelope."""
    return {"format": FORMAT_VERSION, "kind": kind, "body": body}


def decode_document(kind: str, document: Json) -> Json:
    """Unwrap and validate an envelope produced by :func:`encode_document`."""
    if not isinstance(document, dict):
        raise CodecError(f"expected a document object, got {type(document).__name__}")
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported format version {version!r} (supported: {FORMAT_VERSION})")
    if document.get("kind") != kind:
        raise CodecError(f"expected kind {kind!r}, got {document.get('kind')!r}")
    if "body" not in document:
        raise CodecError("document has no body")
    return document["body"]


# -- values -------------------------------------------------------------------


def value_to_json(value: Value) -> Json:
    """``["s", text]`` for strings, ``["n", "num/den"]`` for rationals."""
    if isinstance(value, str):
        return ["s", value]
    return ["n", value_repr(value)]


def value_from_json(data: Json) -> Value:
    try:
        kind, raw = data
    except (TypeError, ValueError):
        raise CodecError(f"malformed value: {data!r}")
    if kind == "s":
        return str(raw)
    if kind == "n":
        try:
            return Fraction(raw)
        except (ValueError, ZeroDivisionError) as exc:
            raise CodecError(f"malformed rational {raw!r}: {exc}")
    raise CodecError(f"unknown value sort {kind!r}")


def _fraction_to_json(value: Optional[Fraction]) -> Optional[str]:
    return None if value is None else value_repr(value)


def _fraction_from_json(raw: Optional[str]) -> Optional[Fraction]:
    if raw is None:
        return None
    try:
        return Fraction(raw)
    except (ValueError, ZeroDivisionError) as exc:
        raise CodecError(f"malformed rational {raw!r}: {exc}")


# -- conditions (by denotation, Lemma 2.3) ------------------------------------


def cond_to_json(cond: Cond) -> Json:
    values = cond.values
    return {
        "numbers": [
            [
                _fraction_to_json(interval.low),
                bool(interval.low_closed),
                _fraction_to_json(interval.high),
                bool(interval.high_closed),
            ]
            for interval in values.numbers.intervals
        ],
        "strings": {
            "cofinite": bool(values.strings.is_cofinite),
            "members": sorted(values.strings.members),
        },
    }


def cond_from_json(data: Json) -> Cond:
    try:
        intervals = [
            Interval(
                _fraction_from_json(low),
                _fraction_from_json(high),
                bool(low_closed),
                bool(high_closed),
            )
            for low, low_closed, high, high_closed in data["numbers"]
        ]
        strings = StringSet(
            data["strings"]["members"], cofinite=bool(data["strings"]["cofinite"])
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed condition: {exc}")
    return Cond.of(ValueSet(IntervalSet(intervals), strings))


# -- data trees ---------------------------------------------------------------


def tree_to_json(tree: DataTree) -> Json:
    """Nested node objects; the empty tree serializes as ``None``."""
    if tree.is_empty():
        return None

    def encode(node_id: NodeId) -> Json:
        return {
            "id": node_id,
            "label": tree.label(node_id),
            "value": value_to_json(tree.value(node_id)),
            "children": [encode(child) for child in sorted(tree.children(node_id))],
        }

    return encode(tree.root)


def tree_from_json(data: Json) -> DataTree:
    if data is None:
        return DataTree.empty()

    def decode(item: Json) -> NodeSpec:
        try:
            return node(
                item["id"],
                item["label"],
                value_from_json(item["value"]),
                [decode(child) for child in item.get("children", ())],
            )
        except (KeyError, TypeError) as exc:
            raise CodecError(f"malformed tree node: {exc}")

    return DataTree.build(decode(data))


# -- ps-queries ---------------------------------------------------------------


def query_to_json(query: PSQuery) -> Json:
    def encode(qnode: QueryNode) -> Json:
        encoded: Dict[str, Json] = {"label": qnode.label}
        if qnode.extract:
            encoded["extract"] = True
        if not qnode.cond.is_true():
            encoded["cond"] = cond_to_json(qnode.cond)
        if qnode.children:
            encoded["children"] = [encode(child) for child in qnode.children]
        return encoded

    return encode(query.root)


def query_from_json(data: Json) -> PSQuery:
    def decode(item: Json) -> QueryNode:
        try:
            label = item["label"]
        except (KeyError, TypeError) as exc:
            raise CodecError(f"malformed query node: {exc}")
        cond = cond_from_json(item["cond"]) if "cond" in item else Cond.true()
        children = tuple(decode(child) for child in item.get("children", ()))
        return QueryNode(label, cond, bool(item.get("extract", False)), children)

    return PSQuery(decode(data))


# -- tree types (simplified DTDs) ---------------------------------------------


def _atom_to_json(atom: Atom) -> Json:
    return [
        [symbol, mult.value]
        for symbol, mult in sorted(atom.items(), key=lambda kv: kv[0])
    ]


def _atom_from_json(data: Json) -> Atom:
    try:
        return Atom([(symbol, parse_mult(mult)) for symbol, mult in data])
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed multiplicity atom: {exc}")


def treetype_to_json(tree_type: TreeType) -> Json:
    return {
        "alphabet": sorted(tree_type.alphabet),
        "roots": sorted(tree_type.roots),
        "rules": {
            label: _atom_to_json(tree_type.atom(label))
            for label in sorted(tree_type.alphabet)
            if not tree_type.atom(label).is_leaf()
        },
    }


def treetype_from_json(data: Json) -> TreeType:
    try:
        return TreeType(
            data["alphabet"],
            data["roots"],
            {label: _atom_from_json(rule) for label, rule in data["rules"].items()},
        )
    except (KeyError, TypeError) as exc:
        raise CodecError(f"malformed tree type: {exc}")


# -- incomplete trees ---------------------------------------------------------


def incomplete_to_json(incomplete: IncompleteTree) -> Json:
    tau = incomplete.type
    symbols: Dict[str, Json] = {}
    for symbol in sorted(tau.symbols()):
        entry: Dict[str, Json] = {
            "target": tau.sigma(symbol),
            "mu": [_atom_to_json(atom) for atom in tau.mu(symbol)],
        }
        cond = tau.cond(symbol)
        if not cond.is_true():
            entry["cond"] = cond_to_json(cond)
        symbols[symbol] = entry
    return {
        "allows_empty": incomplete.allows_empty,
        "nodes": {
            node_id: [
                incomplete.data_label(node_id),
                value_to_json(incomplete.data_value(node_id)),
            ]
            for node_id in sorted(incomplete.data_node_ids())
        },
        "type": {"roots": sorted(tau.roots), "symbols": symbols},
    }


def incomplete_from_json(data: Json) -> IncompleteTree:
    try:
        nodes = {
            node_id: DataNode(label, value_from_json(value))
            for node_id, (label, value) in data["nodes"].items()
        }
        type_data = data["type"]
        mu: Dict[str, Disjunction] = {}
        cond: Dict[str, Cond] = {}
        sigma: Dict[str, str] = {}
        for symbol, entry in type_data["symbols"].items():
            sigma[symbol] = entry["target"]
            mu[symbol] = Disjunction([_atom_from_json(atom) for atom in entry["mu"]])
            if "cond" in entry:
                cond[symbol] = cond_from_json(entry["cond"])
        tau = ConditionalTreeType(type_data["roots"], mu, cond, sigma)
        return IncompleteTree(nodes, tau, allows_empty=bool(data["allows_empty"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed incomplete tree: {exc}")


# -- histories ----------------------------------------------------------------


def history_to_json(history: Sequence[Tuple[PSQuery, DataTree]]) -> Json:
    return [[query_to_json(query), tree_to_json(answer)] for query, answer in history]


def history_from_json(data: Json) -> List[Tuple[PSQuery, DataTree]]:
    try:
        return [
            (query_from_json(query), tree_from_json(answer)) for query, answer in data
        ]
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed history: {exc}")
