"""Append-only write-ahead log of knowledge events.

One file, one JSON record per line.  Each line is::

    <length hex, 8 chars> <crc32 hex, 8 chars> <canonical JSON record>\n

where the length counts the JSON bytes and the checksum covers them.
The record itself is ``{"seq": n, "event": {...}}`` with strictly
increasing sequence numbers starting at 1.  Files written by the
length-free v1 format (``<crc32 hex> <json>\n``) are still read — the
v2 header is tried first and is self-validating (declared length AND
checksum must both agree), so a v1 line can never be mistaken for it.

Recovery is tolerant of a *torn tail*: a crash mid-append leaves at most
one partial line at the end of the file.  :meth:`Journal.open` scans the
file, keeps the longest valid prefix of records, and truncates anything
after it — a later line can never be valid when an earlier one is not,
because sequence numbers must be contiguous.  A truncation anywhere in
the final line — inside the length prefix, the checksum, the body, or
exactly at the header/body boundary — reads as a torn tail, never an
exception.  Corruption strictly before the tail (which fsync'd appends
cannot produce) is reported via :class:`JournalError` unless
``repair=True``.

Injection sites (docs/ROBUSTNESS.md): ``store.journal.append`` fires
*before* the write for the ``error`` effect (safe to retry) and is
interpreted here for the data effects — ``torn`` persists a prefix of
the line, ``corrupt`` persists a damaged body, ``fsync`` persists the
full line; all three then close the journal and raise, modelling a
crash after the media was (partially) touched but before the append was
acknowledged.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..faults.inject import FaultInjected, armed as _faults_armed, check_site as _check_site
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from .codec import canonical_dumps

Event = Dict[str, Any]

#: Bytes of the v2 line header: ``<len hex 8> <sp> <crc hex 8> <sp>``.
_HEADER = 18


class JournalError(ValueError):
    """The journal file is damaged beyond the tolerated torn tail."""


@dataclass(frozen=True)
class JournalRecord:
    """One committed journal entry."""

    seq: int
    event: Event


def _encode_line(record: JournalRecord) -> bytes:
    body = canonical_dumps({"seq": record.seq, "event": record.event}).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %08x " % (len(body), crc) + body + b"\n"


def _decode_body(body: bytes) -> Optional[JournalRecord]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("seq"), int)
        or not isinstance(payload.get("event"), dict)
    ):
        return None
    return JournalRecord(payload["seq"], payload["event"])


def _decode_line_v1(line: bytes) -> Optional[JournalRecord]:
    """A record in the legacy ``<crc8> <json>\\n`` format, or None."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    crc_text, body = line[:8], line[9:-1]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    return _decode_body(body)


def _parse_header(data: bytes, offset: int) -> Optional[Tuple[int, int]]:
    """``(body_length, crc)`` when a v2 header starts at ``offset``.

    A header cut short by truncation (fewer than 18 bytes left) parses
    as None, which the scan reads as a torn tail.
    """
    header = data[offset : offset + _HEADER]
    if len(header) < _HEADER or header[8:9] != b" " or header[17:18] != b" ":
        return None
    try:
        return int(header[:8], 16), int(header[9:17], 16)
    except ValueError:
        return None


def _decode_at(data: bytes, offset: int) -> Tuple[Optional[JournalRecord], int]:
    """One record starting at ``offset``: ``(record, bytes consumed)``.

    Tries the v2 length-prefixed format first — the declared length and
    the checksum must both agree, so a v1 line (whose byte 17 is never a
    space: canonical bodies start ``{"event":``) cannot false-positive.
    Falls back to v1 for files written before the format change.  Any
    damage, including a body the file is too short to contain, returns
    ``(None, ...)`` and stops the scan at this offset.
    """
    header = _parse_header(data, offset)
    if header is not None:
        length, crc = header
        end = offset + _HEADER + length + 1
        if end <= len(data) and data[end - 1 : end] == b"\n":
            body = data[offset + _HEADER : end - 1]
            if zlib.crc32(body) & 0xFFFFFFFF == crc:
                record = _decode_body(body)
                if record is not None:
                    return record, end - offset
    newline = data.find(b"\n", offset)
    line = data[offset : len(data) if newline < 0 else newline + 1]
    return _decode_line_v1(line), len(line)


class Journal:
    """An append-only, checksummed JSONL log.

    ``fsync=True`` (the default) makes appends durable at the cost of
    one ``os.fsync`` per event; benchmarks (E11) quantify the overhead.
    """

    def __init__(self, path: str, fsync: bool = True, repair: bool = True):
        self._path = os.fspath(path)
        self._fsync = bool(fsync)
        self._records: List[JournalRecord] = []
        self._next_seq = 1
        self._file: Optional[io.BufferedWriter] = None
        valid_bytes = self._scan(repair=repair)
        self._open_for_append(valid_bytes)

    # -- recovery -------------------------------------------------------------

    def _scan(self, repair: bool) -> int:
        """Load the valid record prefix; return its length in bytes."""
        if not os.path.exists(self._path):
            return 0
        valid_bytes = 0
        expected_seq: Optional[int] = None  # compaction may start the run > 1
        with open(self._path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            record, consumed = _decode_at(data, offset)
            if record is None or (expected_seq is not None and record.seq != expected_seq):
                break
            self._records.append(record)
            expected_seq = record.seq + 1
            self._next_seq = expected_seq
            offset += consumed
            valid_bytes = offset
        tail = len(data) - valid_bytes
        if tail > 0 and not repair:
            raise JournalError(
                f"{self._path}: {tail} trailing bytes are not a valid record"
            )
        return valid_bytes

    def _open_for_append(self, valid_bytes: int) -> None:
        directory = os.path.dirname(self._path) or "."
        os.makedirs(directory, exist_ok=True)
        # drop the torn tail before appending so the file stays one
        # contiguous run of valid records
        self._file = open(self._path, "ab")
        if self._file.tell() != valid_bytes:
            self._file.truncate(valid_bytes)
            self._file.seek(valid_bytes)

    # -- accessors ------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def last_seq(self) -> int:
        """The highest sequence number ever committed (or covered).

        Survives compaction — dropped records keep their numbers
        reserved, so snapshots and journal positions stay aligned.
        """
        return self._next_seq - 1

    def ensure_seq_floor(self, seq: int) -> None:
        """Reserve numbers up to ``seq`` (e.g. covered by a snapshot).

        A compacted journal may be empty on disk while a snapshot covers
        records 1..n; appends must continue at n+1 or recovery would
        skip them as already applied.
        """
        self._next_seq = max(self._next_seq, seq + 1)

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[JournalRecord, ...]:
        return tuple(self._records)

    def events(self) -> Iterator[Event]:
        return (record.event for record in self._records)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self._path)
        except OSError:
            return 0

    # -- mutation -------------------------------------------------------------

    def _inject_media_fault(self, fault, line: bytes) -> None:
        """Interpret a data-effect fault at the append site.

        ``torn`` persists a prefix of the line, ``corrupt`` a
        checksum-invalid full line, ``fsync`` the complete line.  All
        three then close the journal (the in-memory record list is NOT
        updated) and raise — a crash after the media was touched but
        before the append was acknowledged.  Recovery decides what
        survived; an acknowledged append is never affected.
        """
        assert self._file is not None
        damaged = line
        if fault.effect == "torn":
            damaged = line[: max(1, int(len(line) * fault.fraction))]
        elif fault.effect == "corrupt":
            cut = max(_HEADER + 1, int(len(line) * fault.fraction))
            damaged = line[:cut] + bytes((~b) & 0xFF for b in line[cut:-1]) + b"\n"
        self._file.write(damaged)
        self._file.flush()
        os.fsync(self._file.fileno())
        self.close()
        raise FaultInjected(fault)

    def append(self, event: Event) -> int:
        """Durably append one event; returns its sequence number."""
        if self._file is None:
            raise JournalError(f"{self._path}: journal is closed")
        record = JournalRecord(self._next_seq, dict(event))
        line = _encode_line(record)
        if _faults_armed():
            fault = _check_site("store.journal.append")
            if fault is not None:
                self._inject_media_fault(fault, line)
        with _span("store.journal.append") as sp:
            self._file.write(line)
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
            self._records.append(record)
            self._next_seq = record.seq + 1
            if _OBS.enabled:
                _OBS.metrics.inc("store.journal.appends")
                _OBS.metrics.inc("store.journal.bytes", len(line))
                if sp is not None:
                    sp.attrs.update(seq=record.seq, bytes=len(line))
        return record.seq

    def compact(self, drop_through_seq: int) -> int:
        """Atomically rewrite the log without records up to the given seq.

        Kept records retain their original sequence numbers (the scan
        accepts any contiguous run starting anywhere), so snapshots and
        journal positions stay aligned.  Returns the number of dropped
        records.
        """
        kept = [record for record in self._records if record.seq > drop_through_seq]
        dropped = len(self._records) - len(kept)
        if dropped == 0:
            return 0
        with _span("store.journal.compact") as sp:
            tmp_path = self._path + ".tmp"
            with open(tmp_path, "wb") as handle:
                for record in kept:
                    handle.write(_encode_line(record))
                handle.flush()
                os.fsync(handle.fileno())
            if self._file is not None:
                self._file.close()
            os.replace(tmp_path, self._path)
            self._records = kept
            self._file = open(self._path, "ab")
            if _OBS.enabled:
                _OBS.metrics.inc("store.journal.compactions")
                if sp is not None:
                    sp.attrs.update(dropped=dropped, kept=len(kept))
        return dropped

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Journal({self._path!r}, {len(self._records)} records)"
