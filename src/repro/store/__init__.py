"""repro.store — durable sessions for the mediator.

The paper's Webhouse is an *accumulating* system: everything it is worth
is the query/answer history folded into one incomplete tree (Theorems
3.4/3.5).  This package makes that knowledge survive process restarts:

* :mod:`~repro.store.codec` — canonical, versioned JSON round-trips for
  data trees, tree types, ps-queries, conditions, and incomplete trees;
* :mod:`~repro.store.journal` — an append-only, checksummed JSONL
  write-ahead log of knowledge events, tolerant of a torn tail;
* :mod:`~repro.store.snapshot` — incomplete-tree checkpoints that bound
  replay cost, with journal compaction;
* :mod:`~repro.store.session` — :class:`SessionStore`, managing many
  named sessions under one root directory with single-writer locking.

Typical usage::

    store = SessionStore("/var/lib/repro")
    wh = Webhouse(alphabet, tree_type=tt)
    wh.attach(store.create("catalog", alphabet, tree_type=tt))
    wh.ask(source, query1)          # journaled
    # ... process dies ...
    wh = Webhouse.resume(store, "catalog")   # snapshot + replay suffix
    wh.can_answer(query3)           # same verdicts as before the crash

See ``docs/PERSISTENCE.md`` for the on-disk layout.
"""

from .codec import (
    CodecError,
    canonical_dumps,
    cond_from_json,
    cond_to_json,
    decode_document,
    encode_document,
    history_from_json,
    history_to_json,
    incomplete_from_json,
    incomplete_to_json,
    query_from_json,
    query_to_json,
    tree_from_json,
    tree_to_json,
    treetype_from_json,
    treetype_to_json,
    value_from_json,
    value_to_json,
)
from .journal import Journal, JournalError, JournalRecord
from .session import (
    RecoveredState,
    Session,
    SessionLockedError,
    SessionStore,
    StoreError,
)
from .snapshot import latest_snapshot, prune_snapshots, write_snapshot

__all__ = [
    "CodecError",
    "Journal",
    "JournalError",
    "JournalRecord",
    "RecoveredState",
    "Session",
    "SessionLockedError",
    "SessionStore",
    "StoreError",
    "canonical_dumps",
    "cond_from_json",
    "cond_to_json",
    "decode_document",
    "encode_document",
    "history_from_json",
    "history_to_json",
    "incomplete_from_json",
    "incomplete_to_json",
    "latest_snapshot",
    "prune_snapshots",
    "query_from_json",
    "query_to_json",
    "tree_from_json",
    "tree_to_json",
    "treetype_from_json",
    "treetype_to_json",
    "value_from_json",
    "value_to_json",
    "write_snapshot",
]
