"""Incomplete-tree checkpoints bounding journal replay cost.

A snapshot file ``snapshot-00000042.json`` captures the warehouse state
*after* applying journal records up to sequence number 42: the raw
refined incomplete tree (pre type-intersection) and the query/answer
history.  Resuming then only replays the journal suffix with seq > 42 —
by Theorem 3.5 the result is equivalent to replaying the whole history
from the universal incomplete tree, which the tests assert via
:func:`repro.incomplete.certainty.incomplete_equivalent`.

Snapshots are written atomically (temp file + ``os.replace``) and carry
a checksum over their canonical body; a corrupt snapshot is skipped in
favour of the next older one, falling back to pure replay.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import List, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..faults.inject import armed as _faults_armed, check_site as _check_site
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from .codec import (
    CodecError,
    canonical_dumps,
    decode_document,
    encode_document,
    history_from_json,
    history_to_json,
    incomplete_from_json,
    incomplete_to_json,
)

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")

History = Sequence[Tuple[PSQuery, DataTree]]


class SnapshotError(ValueError):
    """A freshly written snapshot failed read-back verification."""


def snapshot_filename(upto_seq: int) -> str:
    return f"snapshot-{upto_seq:08d}.json"


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(upto_seq, path)`` pairs, newest (highest seq) first."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found, reverse=True)


def write_snapshot(
    directory: str, upto_seq: int, state: IncompleteTree, history: History
) -> str:
    """Atomically write a checkpoint; returns its path.

    The temp file is read back and checksum-verified *before*
    ``os.replace`` promotes it: a checkpoint at an already-snapshotted
    sequence number lands on the same filename, so promoting unverified
    bytes would clobber the previous good snapshot — the only copy of
    records the journal has already compacted away.  On verification
    failure the temp file is removed and :class:`SnapshotError` raised;
    nothing visible changes.  (The chaos suite found exactly this
    clobbering under an injected torn snapshot write.)

    Injection site ``store.snapshot.write``: ``error`` raises before
    anything is written; ``torn`` persists a prefix of the rendered
    document and ``corrupt`` flips its tail bytes — both silently, to
    exercise the read-back gate.
    """
    with _span("store.snapshot.write") as sp:
        fault = _check_site("store.snapshot.write") if _faults_armed() else None
        body = {
            "upto": int(upto_seq),
            "state": incomplete_to_json(state),
            "history": history_to_json(history),
        }
        rendered = canonical_dumps(body)
        document = encode_document("snapshot", body)
        document["crc"] = f"{zlib.crc32(rendered.encode('utf-8')) & 0xFFFFFFFF:08x}"
        path = os.path.join(directory, snapshot_filename(upto_seq))
        tmp_path = path + ".tmp"
        payload = canonical_dumps(document)
        if fault is not None:
            cut = max(1, int(len(payload) * fault.fraction))
            if fault.effect == "torn":
                payload = payload[:cut]
            elif fault.effect == "corrupt":
                payload = payload[:cut] + payload[cut:].swapcase()
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if _read_snapshot(tmp_path) is None:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise SnapshotError(
                f"snapshot {path} failed read-back verification before "
                "promotion; previous snapshot and journal left intact"
            )
        os.replace(tmp_path, path)
        if _OBS.enabled:
            _OBS.metrics.inc("store.snapshot.writes")
            _OBS.metrics.observe("store.snapshot.bytes", os.path.getsize(path))
            if sp is not None:
                sp.attrs.update(upto=upto_seq, history=len(history))
        return path


def _read_snapshot(path: str) -> Optional[Tuple[int, IncompleteTree, List]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        body = decode_document("snapshot", document)
        rendered = canonical_dumps(body)
        expected = document.get("crc")
        actual = f"{zlib.crc32(rendered.encode('utf-8')) & 0xFFFFFFFF:08x}"
        if expected != actual:
            return None
        return (
            int(body["upto"]),
            incomplete_from_json(body["state"]),
            history_from_json(body["history"]),
        )
    except (OSError, ValueError, KeyError, TypeError, CodecError):
        return None


def latest_snapshot(
    directory: str,
) -> Optional[Tuple[int, IncompleteTree, List]]:
    """The newest readable checkpoint, or None (→ pure journal replay).

    Corrupt or unreadable snapshot files are skipped, so a crash during
    checkpointing can never make a session unrecoverable.
    """
    for _upto, path in list_snapshots(directory):
        loaded = _read_snapshot(path)
        if loaded is not None:
            return loaded
    return None


def prune_snapshots(directory: str, keep: int = 2) -> int:
    """Delete all but the ``keep`` newest snapshots; returns count removed."""
    removed = 0
    for _upto, path in list_snapshots(directory)[keep:]:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            pass
    return removed
