"""Incomplete-tree checkpoints bounding journal replay cost.

A snapshot file ``snapshot-00000042.json`` captures the warehouse state
*after* applying journal records up to sequence number 42: the raw
refined incomplete tree (pre type-intersection) and the query/answer
history.  Resuming then only replays the journal suffix with seq > 42 —
by Theorem 3.5 the result is equivalent to replaying the whole history
from the universal incomplete tree, which the tests assert via
:func:`repro.incomplete.certainty.incomplete_equivalent`.

Snapshots are written atomically (temp file + ``os.replace``) and carry
a checksum over their canonical body; a corrupt snapshot is skipped in
favour of the next older one, falling back to pure replay.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import List, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from .codec import (
    CodecError,
    canonical_dumps,
    decode_document,
    encode_document,
    history_from_json,
    history_to_json,
    incomplete_from_json,
    incomplete_to_json,
)

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")

History = Sequence[Tuple[PSQuery, DataTree]]


def snapshot_filename(upto_seq: int) -> str:
    return f"snapshot-{upto_seq:08d}.json"


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(upto_seq, path)`` pairs, newest (highest seq) first."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found, reverse=True)


def write_snapshot(
    directory: str, upto_seq: int, state: IncompleteTree, history: History
) -> str:
    """Atomically write a checkpoint; returns its path."""
    with _span("store.snapshot.write") as sp:
        body = {
            "upto": int(upto_seq),
            "state": incomplete_to_json(state),
            "history": history_to_json(history),
        }
        rendered = canonical_dumps(body)
        document = encode_document("snapshot", body)
        document["crc"] = f"{zlib.crc32(rendered.encode('utf-8')) & 0xFFFFFFFF:08x}"
        path = os.path.join(directory, snapshot_filename(upto_seq))
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_dumps(document))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if _OBS.enabled:
            _OBS.metrics.inc("store.snapshot.writes")
            _OBS.metrics.observe("store.snapshot.bytes", os.path.getsize(path))
            if sp is not None:
                sp.attrs.update(upto=upto_seq, history=len(history))
        return path


def _read_snapshot(path: str) -> Optional[Tuple[int, IncompleteTree, List]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        body = decode_document("snapshot", document)
        rendered = canonical_dumps(body)
        expected = document.get("crc")
        actual = f"{zlib.crc32(rendered.encode('utf-8')) & 0xFFFFFFFF:08x}"
        if expected != actual:
            return None
        return (
            int(body["upto"]),
            incomplete_from_json(body["state"]),
            history_from_json(body["history"]),
        )
    except (OSError, ValueError, KeyError, TypeError, CodecError):
        return None


def latest_snapshot(
    directory: str,
) -> Optional[Tuple[int, IncompleteTree, List]]:
    """The newest readable checkpoint, or None (→ pure journal replay).

    Corrupt or unreadable snapshot files are skipped, so a crash during
    checkpointing can never make a session unrecoverable.
    """
    for _upto, path in list_snapshots(directory):
        loaded = _read_snapshot(path)
        if loaded is not None:
            return loaded
    return None


def prune_snapshots(directory: str, keep: int = 2) -> int:
    """Delete all but the ``keep`` newest snapshots; returns count removed."""
    removed = 0
    for _upto, path in list_snapshots(directory)[keep:]:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            pass
    return removed
