"""Mergeable streaming quantile sketch (DDSketch-style, zero-dependency).

The serving story needs percentiles — query cost over incomplete trees
varies sharply with instance structure (Example 3.2's blowup), so the
tail, not the mean, is the operationally meaningful latency signal.  A
bounded ``recent`` window (PR 1's histograms) biases every quantile
toward the newest traffic and cannot be combined across shards; this
module replaces that story with a :class:`QuantileSketch`:

* **log-bucketed**: a positive value ``v`` lands in bucket
  ``ceil(log_gamma(v))`` where ``gamma = (1+a)/(1-a)`` for relative
  accuracy ``a``.  Reporting bucket ``i`` as ``2*gamma^i/(gamma+1)``
  guarantees every quantile estimate is within ``a`` *relative* error
  of the exact rank value — the DDSketch bound;
* **mergeable**: two sketches with the same accuracy merge by adding
  bucket counts.  Merge is associative and commutative, so per-shard
  sketches roll up into exact-as-if-pooled fleet quantiles in any
  gather order (``ShardedWebhouse.stats_all`` does exactly this);
* **bounded**: at most ``max_bins`` positive buckets are kept; on
  overflow the *lowest* buckets collapse into one (high quantiles — the
  ones that matter for tail latency — keep their guarantee).

Zero, negative, and sub-``MIN_POSITIVE`` values are tracked in a zero
bucket / mirrored negative store, so the sketch accepts any real series
(knowledge sizes, durations, deltas).  All mutating and reading entry
points hold an internal lock; sketches may be observed from handler
threads and merged from a scatter-gather executor concurrently.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Values with magnitude below this collapse into the zero bucket.
MIN_POSITIVE = 1e-9

#: Default relative accuracy: p99 reported within 1% of the true p99.
DEFAULT_ACCURACY = 0.01

#: Default bound on the positive (and, separately, negative) bucket maps.
#: At 1% accuracy one bucket spans a factor of ~1.0202, so 4096 buckets
#: cover > 35 orders of magnitude before any collapsing happens.
DEFAULT_MAX_BINS = 4096

#: The quantiles rendered by :meth:`QuantileSketch.summary`.
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch with a relative-error bound.

    >>> s = QuantileSketch()
    >>> for v in (1.0, 2.0, 3.0, 4.0, 100.0):
    ...     s.observe(v)
    >>> s.count
    5
    >>> abs(s.quantile(0.5) - 3.0) <= 0.01 * 3.0
    True
    """

    __slots__ = (
        "relative_accuracy",
        "max_bins",
        "_gamma",
        "_log_gamma",
        "count",
        "sum",
        "min",
        "max",
        "_zeros",
        "_buckets",
        "_negative",
        "collapsed",
        "_lock",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_ACCURACY,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy!r}"
            )
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.relative_accuracy = float(relative_accuracy)
        self.max_bins = int(max_bins)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._zeros = 0
        #: bucket index -> count, for values > MIN_POSITIVE
        self._buckets: Dict[int, int] = {}
        #: bucket index -> count, for values < -MIN_POSITIVE (keyed by |v|)
        self._negative: Dict[int, int] = {}
        #: True once low buckets were ever collapsed (low quantiles may
        #: then exceed the relative-error bound; high ones never do).
        self.collapsed = False
        self._lock = threading.Lock()

    # -- feeding ----------------------------------------------------------------

    def _index(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def observe(self, value: float, count: int = 1) -> None:
        """Fold ``count`` occurrences of ``value`` into the sketch."""
        if count <= 0:
            return
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot observe non-finite value {value!r}")
        with self._lock:
            self.count += count
            self.sum += value * count
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if value > MIN_POSITIVE:
                store = self._buckets
                index = self._index(value)
            elif value < -MIN_POSITIVE:
                store = self._negative
                index = self._index(-value)
            else:
                self._zeros += count
                return
            store[index] = store.get(index, 0) + count
            if len(store) > self.max_bins:
                self._collapse(store)

    def _collapse(self, store: Dict[int, int]) -> None:
        """Fold the lowest buckets together until the bound holds.

        Collapsing moves counts *up* into the lowest retained bucket, so
        estimates for the collapsed values are overestimates bounded by
        that bucket's upper edge — tail quantiles are unaffected.
        """
        ordered = sorted(store)
        while len(store) > self.max_bins:
            lowest, second = ordered[0], ordered[1]
            store[second] += store.pop(lowest)
            ordered.pop(0)
        self.collapsed = True

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place; returns self.

        Associative and commutative: merging per-shard sketches in any
        order yields the same buckets as observing the pooled stream.
        Both sketches must share the same ``relative_accuracy``.
        """
        if other is self:
            raise ValueError("cannot merge a sketch into itself")
        if abs(other.relative_accuracy - self.relative_accuracy) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        with other._lock:
            other_state = (
                other.count,
                other.sum,
                other.min,
                other.max,
                other._zeros,
                dict(other._buckets),
                dict(other._negative),
                other.collapsed,
            )
        count, total, omin, omax, zeros, buckets, negative, collapsed = other_state
        with self._lock:
            self.count += count
            self.sum += total
            if omin is not None and (self.min is None or omin < self.min):
                self.min = omin
            if omax is not None and (self.max is None or omax > self.max):
                self.max = omax
            self._zeros += zeros
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            for index, n in negative.items():
                self._negative[index] = self._negative.get(index, 0) + n
            self.collapsed = self.collapsed or collapsed
            if len(self._buckets) > self.max_bins:
                self._collapse(self._buckets)
            if len(self._negative) > self.max_bins:
                self._collapse(self._negative)
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"]) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches`` (inputs untouched)."""
        result: Optional[QuantileSketch] = None
        for sketch in sketches:
            if result is None:
                result = cls(sketch.relative_accuracy, sketch.max_bins)
            result.merge(sketch)
        return result if result is not None else cls()

    # -- reading ----------------------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The value at quantile ``q`` (lower empirical quantile).

        Targets rank ``ceil(q * count) - 1`` of the sorted stream — the
        same convention the tests' sorted-array ground truth uses — and
        returns an estimate within ``relative_accuracy`` of that rank's
        true value (unless low buckets were collapsed away under it).
        ``None`` on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            if self.count == 0:
                return None
            rank = max(0, math.ceil(q * self.count) - 1)
            estimate = self._value_at_rank(rank)
            # min/max are exact; clamping never hurts the bound and makes
            # q=0 / q=1 (and single-observation sketches) exact
            assert self.min is not None and self.max is not None
            return min(max(estimate, self.min), self.max)

    def _value_at_rank(self, rank: int) -> float:
        """Walk negatives (most negative first), zeros, then positives."""
        seen = 0
        for index in sorted(self._negative, reverse=True):
            seen += self._negative[index]
            if rank < seen:
                return -self._estimate(index)
        seen += self._zeros
        if rank < seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return self._estimate(index)
        # numerically unreachable; defensively report the largest bucket
        return self._estimate(max(self._buckets)) if self._buckets else 0.0

    def _estimate(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantiles(self, qs: Sequence[float]) -> List[Optional[float]]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-ready headline: count/sum/min/max plus standard quantiles."""
        document: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "relative_accuracy": self.relative_accuracy,
        }
        for q in SUMMARY_QUANTILES:
            document[f"p{int(q * 100)}"] = self.quantile(q)
        return document

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready full state; round-trips through :meth:`from_dict`."""
        with self._lock:
            return {
                "relative_accuracy": self.relative_accuracy,
                "max_bins": self.max_bins,
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "zeros": self._zeros,
                "buckets": {str(i): n for i, n in sorted(self._buckets.items())},
                "negative_buckets": {
                    str(i): n for i, n in sorted(self._negative.items())
                },
                "collapsed": self.collapsed,
            }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(
            float(document["relative_accuracy"]),  # type: ignore[arg-type]
            int(document.get("max_bins", DEFAULT_MAX_BINS)),  # type: ignore[arg-type]
        )
        sketch.count = int(document["count"])  # type: ignore[arg-type]
        sketch.sum = float(document["sum"])  # type: ignore[arg-type]
        sketch.min = None if document["min"] is None else float(document["min"])  # type: ignore[arg-type]
        sketch.max = None if document["max"] is None else float(document["max"])  # type: ignore[arg-type]
        sketch._zeros = int(document.get("zeros", 0))  # type: ignore[arg-type]
        sketch._buckets = {
            int(i): int(n) for i, n in (document.get("buckets") or {}).items()  # type: ignore[union-attr]
        }
        sketch._negative = {
            int(i): int(n)
            for i, n in (document.get("negative_buckets") or {}).items()  # type: ignore[union-attr]
        }
        sketch.collapsed = bool(document.get("collapsed", False))
        return sketch

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets) + len(self._negative) + (1 if self._zeros else 0)

    def __repr__(self) -> str:
        p50, p99 = self.quantile(0.5), self.quantile(0.99)
        rendered = (
            "empty"
            if p50 is None
            else f"count={self.count}, p50={p50:.6g}, p99={p99:.6g}"
        )
        return f"QuantileSketch({rendered}, accuracy={self.relative_accuracy})"


__all__ = [
    "DEFAULT_ACCURACY",
    "DEFAULT_MAX_BINS",
    "MIN_POSITIVE",
    "QuantileSketch",
    "SUMMARY_QUANTILES",
]
