"""repro.obs — lightweight, zero-dependency observability.

The paper's central claims are complexity bounds: PTIME per Refine step
(Theorems 3.4/3.5), PTIME emptiness (Lemma 2.5), and an exponential
incomplete-tree blowup (Example 3.2) with three remedies.  This package
makes those costs *visible*: named counters and histograms
(:class:`~repro.obs.registry.Metrics`), nestable timing spans producing
a structured trace tree (:func:`~repro.obs.spans.span`), and pluggable
event sinks (ring buffer, JSON lines, null).

Disabled by default.  Instrumented hot paths check the module-level
``STATE.enabled`` flag before formatting a single attribute, so the cost
of leaving instrumentation in place is one attribute load per site.

Typical usage::

    import repro.obs as obs

    with obs.capture() as sink:            # enable + ring buffer, restore on exit
        wh.ask(source, query1())
    obs.metrics.value("refine.steps")      # -> 1
    obs.metrics.series("webhouse.knowledge_size")  # growth per recorded query
    obs.traces()[-1].to_dict()             # the span tree of the ask

Or explicitly: ``obs.enable(obs.JsonLinesSink("trace.jsonl"))`` ...
``obs.disable()``.  See ``docs/OBSERVABILITY.md`` for the event schema
and the span-name catalogue.

On top of the raw collection sits the diagnostics layer: span-tree
profiles (:mod:`~repro.obs.profile`), EXPLAIN for Refine and q(T)
(:mod:`~repro.obs.explain`), knowledge-growth monitoring with blowup
alerts and budget enforcement (:mod:`~repro.obs.monitor`), and
Prometheus / Chrome-trace exporters (:mod:`~repro.obs.export`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .explain import Explanation, explain_ask, explain_refine, isolated_observation
from .export import (
    chrome_trace,
    chrome_trace_events,
    labeled_gauge_lines,
    prometheus_text,
    summary_metric_lines,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
)
from .monitor import (
    Alert,
    BudgetExceeded,
    GrowthMonitor,
    REMEDY_CONJUNCTIVE,
    REMEDY_LINEAR,
    REMEDY_LOSSY,
)
from .profile import Profile, ProfileEntry, aggregate, profile_traces
from .registry import Counter, Gauge, Histogram, Metrics
from .sample import TraceSampler
from .sinks import Event, JsonLinesSink, NullSink, RingBufferSink, Sink, TeeSink
from .sketch import QuantileSketch
from .slo import Objective, SloAlert, SloEngine, default_objectives
from .spans import (
    Span,
    add_attrs,
    current_shard,
    current_span,
    current_trace_id,
    event,
    reset_shard,
    reset_trace_id,
    set_shard,
    set_trace_id,
    span,
)
from .state import STATE, ObsState
from .timing import Timer, timed, timer

#: The global metrics registry (stable identity; ``reset()`` clears in place).
metrics: Metrics = STATE.metrics


def enabled() -> bool:
    """Is instrumentation currently collecting?"""
    return STATE.enabled


def enable(sink: Optional[Sink] = None) -> None:
    """Turn collection on; installs a ring buffer when no sink is set."""
    if sink is not None:
        STATE.sink = sink
    elif isinstance(STATE.sink, NullSink):
        STATE.sink = RingBufferSink()
    STATE.enabled = True


def disable() -> None:
    """Turn collection off (collected data stays inspectable)."""
    STATE.enabled = False


def reset() -> None:
    """Drop all collected metrics, traces, and buffered events."""
    STATE.clear()
    if isinstance(STATE.sink, RingBufferSink):
        STATE.sink.drain()


@contextmanager
def capture(sink: Optional[Sink] = None) -> Iterator[Sink]:
    """Enable collection for a block, restoring the previous state after.

    Yields the active sink (a fresh :class:`RingBufferSink` by default)
    so callers can read back the emitted events.
    """
    previous = (STATE.enabled, STATE.sink)
    active = sink if sink is not None else RingBufferSink()
    STATE.sink = active
    STATE.enabled = True
    try:
        yield active
    finally:
        STATE.enabled, STATE.sink = previous


def traces() -> List[Span]:
    """Finished root spans, oldest first."""
    return list(STATE.traces)  # type: ignore[arg-type]


def snapshot() -> Dict[str, object]:
    """Metrics and trace trees as one JSON-ready document."""
    return {
        "metrics": STATE.metrics.snapshot(),
        "trace": [root.to_dict() for root in traces()],
    }


def profile() -> Profile:
    """Aggregate every collected trace tree into a :class:`Profile`."""
    return profile_traces(traces())


__all__ = [
    "Alert",
    "BudgetExceeded",
    "Counter",
    "Event",
    "Explanation",
    "Gauge",
    "GrowthMonitor",
    "Histogram",
    "JsonLinesSink",
    "Metrics",
    "NullSink",
    "ObsState",
    "Objective",
    "Profile",
    "ProfileEntry",
    "QuantileSketch",
    "REMEDY_CONJUNCTIVE",
    "REMEDY_LINEAR",
    "REMEDY_LOSSY",
    "RingBufferSink",
    "STATE",
    "Sink",
    "SloAlert",
    "SloEngine",
    "Span",
    "TeeSink",
    "Timer",
    "TraceSampler",
    "add_attrs",
    "aggregate",
    "capture",
    "chrome_trace",
    "chrome_trace_events",
    "current_shard",
    "current_span",
    "current_trace_id",
    "default_objectives",
    "disable",
    "enable",
    "enabled",
    "event",
    "explain_ask",
    "explain_refine",
    "isolated_observation",
    "labeled_gauge_lines",
    "metrics",
    "profile",
    "profile_traces",
    "prometheus_text",
    "reset",
    "reset_shard",
    "reset_trace_id",
    "set_shard",
    "set_trace_id",
    "snapshot",
    "span",
    "summary_metric_lines",
    "timed",
    "timer",
    "traces",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_chrome_trace",
]
