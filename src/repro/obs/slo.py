"""Declarative SLOs evaluated by a multi-window burn-rate engine.

An :class:`Objective` states a promise about the request stream —
*availability* ("99.9% of requests do not 5xx") or *latency* ("99% of
requests finish under 250ms").  The :class:`SloEngine` consumes every
finished request, buckets good/bad counts per second, and evaluates
**burn rate** — the ratio between the observed bad fraction and the
error budget (``1 - target``) — over several windows at once.  Burn
rate 1.0 means the budget is being spent exactly as provisioned; 10x
means it will be gone in a tenth of the window.

Alerting is multi-window in the SRE style: an alert fires only when
*every* window burns above the threshold (the long window proves it is
not a blip, the short window proves it is still happening) and resolves
— edge-triggered, like :class:`repro.obs.monitor.GrowthMonitor` — once
the short window cools down.

The paper-aware part: a burning *latency* objective carries a remedy
from the PR 3 catalogue (default :data:`REMEDY_LOSSY` — Section 3.2
forgetting shrinks the representation, which is what speeds reads up),
so the degrade hook can call ``Webhouse.apply_remedy`` and trade answer
completeness for restored tail latency.  Availability burns carry no
remedy: a 5xx storm is a bug, not a representation regime.

The clock is injectable so tests drive time deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .monitor import REMEDY_CONJUNCTIVE, REMEDY_LINEAR, REMEDY_LOSSY

KIND_AVAILABILITY = "availability"
KIND_LATENCY = "latency"

#: Multi-window defaults: short window for "still happening", long
#: window for "not a blip".  Seconds.
DEFAULT_WINDOWS = (60.0, 300.0)

#: A window must burn at this multiple of the provisioned rate to alert.
DEFAULT_BURN_THRESHOLD = 10.0

#: Minimum events in the short window before the engine will alert —
#: one unlucky request out of three is noise, not a burn.
DEFAULT_MIN_EVENTS = 10

_VALID_REMEDIES = (REMEDY_CONJUNCTIVE, REMEDY_LINEAR, REMEDY_LOSSY)


class Objective:
    """One promise about the request stream.

    ``target`` is the good fraction promised (0 < target < 1); the
    error budget is ``1 - target``.  Latency objectives also carry
    ``threshold_s`` — a request slower than that is *bad* even if it
    succeeded.  ``remedy`` names the paper degrade to recommend when
    this objective burns (latency defaults to lossy forgetting).
    """

    __slots__ = ("name", "kind", "target", "threshold_s", "remedy")

    def __init__(
        self,
        name: str,
        kind: str,
        target: float,
        threshold_s: Optional[float] = None,
        remedy: Optional[str] = None,
    ):
        if kind not in (KIND_AVAILABILITY, KIND_LATENCY):
            raise ValueError(f"kind must be availability|latency, got {kind!r}")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target!r}")
        if kind == KIND_LATENCY:
            if threshold_s is None or threshold_s <= 0:
                raise ValueError("latency objectives need a positive threshold_s")
            if remedy is None:
                remedy = REMEDY_LOSSY
        if remedy is not None and remedy not in _VALID_REMEDIES:
            raise ValueError(f"unknown remedy {remedy!r}; pick one of {_VALID_REMEDIES}")
        self.name = name
        self.kind = kind
        self.target = float(target)
        self.threshold_s = None if threshold_s is None else float(threshold_s)
        self.remedy = remedy

    @property
    def budget(self) -> float:
        """The provisioned bad fraction."""
        return 1.0 - self.target

    def is_bad(self, status: int, duration_s: float) -> bool:
        """Classify one finished request against this objective.

        Availability counts server failures (5xx, including shed 503s)
        as bad — client errors (4xx) spend no budget.  Latency counts
        any request over the threshold as bad regardless of status.
        """
        if self.kind == KIND_AVAILABILITY:
            return status >= 500
        return duration_s > self.threshold_s  # type: ignore[operator]

    @classmethod
    def parse(cls, spec: str) -> "Objective":
        """Parse ``"availability:99.9"`` / ``"latency:99:250ms"`` specs.

        The target is a percentage; latency specs add a threshold with
        an optional ``ms`` or ``s`` suffix (bare numbers mean seconds).
        An optional final ``:remedy`` overrides the degrade choice.
        """
        parts = [p.strip() for p in spec.split(":")]
        if len(parts) < 2:
            raise ValueError(
                f"objective spec needs kind:target, got {spec!r} "
                "(e.g. availability:99.9 or latency:99:250ms)"
            )
        kind = parts[0].lower()
        target = float(parts[1]) / 100.0
        threshold_s: Optional[float] = None
        remedy: Optional[str] = None
        rest = parts[2:]
        if kind == KIND_LATENCY:
            if not rest:
                raise ValueError(f"latency spec needs a threshold, got {spec!r}")
            raw = rest.pop(0).lower()
            if raw.endswith("ms"):
                threshold_s = float(raw[:-2]) / 1000.0
            elif raw.endswith("s"):
                threshold_s = float(raw[:-1])
            else:
                threshold_s = float(raw)
        if rest:
            remedy = rest.pop(0).lower()
        if rest:
            raise ValueError(f"trailing fields in objective spec {spec!r}")
        name = f"{kind}-{parts[1]}"
        return cls(name, kind, target, threshold_s, remedy)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "budget": self.budget,
            "threshold_s": self.threshold_s,
            "remedy": self.remedy,
        }

    def __repr__(self) -> str:
        threshold = (
            "" if self.threshold_s is None else f", threshold_s={self.threshold_s}"
        )
        return f"Objective({self.name!r}, target={self.target}{threshold})"


def default_objectives(slow_s: float = 0.25) -> List[Objective]:
    """The serve-mode defaults: 99.9% non-5xx, 99% under ``slow_s``."""
    return [
        Objective("availability-99.9", KIND_AVAILABILITY, 0.999),
        Objective("latency-99", KIND_LATENCY, 0.99, threshold_s=slow_s),
    ]


class SloAlert:
    """One edge-triggered burn event (``burn``) or recovery (``resolved``)."""

    __slots__ = ("kind", "objective", "burn_rates", "remedy", "message")

    def __init__(
        self,
        kind: str,
        objective: Objective,
        burn_rates: Dict[float, float],
        message: str,
    ):
        self.kind = kind  # "burn" | "resolved"
        self.objective = objective
        self.burn_rates = dict(burn_rates)
        self.remedy = objective.remedy
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "objective": self.objective.name,
            "burn_rates": {str(int(w)): rate for w, rate in self.burn_rates.items()},
            "remedy": self.remedy,
            "message": self.message,
        }

    def __repr__(self) -> str:
        rates = ", ".join(
            f"{int(w)}s={rate:.1f}x" for w, rate in sorted(self.burn_rates.items())
        )
        return f"SloAlert({self.kind!r}, {self.objective.name!r}, {rates})"


SloAlertCallback = Callable[[SloAlert], None]


class _Track:
    """Per-objective per-second good/bad buckets plus alert latch."""

    __slots__ = ("buckets", "burning", "good_total", "bad_total")

    def __init__(self) -> None:
        #: deque of [second, good, bad], oldest first
        self.buckets: Deque[List[float]] = deque()
        self.burning = False
        self.good_total = 0
        self.bad_total = 0


class SloEngine:
    """Feed finished requests in; get burn-rate state and alerts out.

    ``record(status, duration_s)`` classifies the request against every
    objective and re-evaluates; alerts fire (and later resolve) through
    the registered callbacks exactly once per episode.  ``clock`` is
    any monotonic-seconds callable — tests inject a fake one.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[Objective]] = None,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        min_events: int = DEFAULT_MIN_EVENTS,
        clock: Callable[[], float] = time.monotonic,
        alert_callbacks: Sequence[SloAlertCallback] = (),
        degrade_callback: Optional[SloAlertCallback] = None,
    ):
        if not windows:
            raise ValueError("need at least one window")
        self.objectives: List[Objective] = list(
            default_objectives() if objectives is None else objectives
        )
        self.windows: Tuple[float, ...] = tuple(sorted(float(w) for w in windows))
        if any(w <= 0 for w in self.windows):
            raise ValueError(f"windows must be positive, got {self.windows}")
        self.burn_threshold = float(burn_threshold)
        self.min_events = int(min_events)
        self._clock = clock
        self._callbacks: List[SloAlertCallback] = list(alert_callbacks)
        self._degrade = degrade_callback
        self._tracks: Dict[str, _Track] = {o.name: _Track() for o in self.objectives}
        self._alerts: List[SloAlert] = []
        self._lock = threading.Lock()

    # -- configuration ----------------------------------------------------------

    def on_alert(self, callback: SloAlertCallback) -> None:
        self._callbacks.append(callback)

    def set_degrade(self, callback: Optional[SloAlertCallback]) -> None:
        """Wire the degrade hook (e.g. to ``Webhouse.apply_remedy``)."""
        self._degrade = callback

    # -- feeding ----------------------------------------------------------------

    def record(self, status: int, duration_s: float) -> List[SloAlert]:
        """Classify one finished request; returns any alerts that fired."""
        now = self._clock()
        second = int(now)
        fired: List[SloAlert] = []
        with self._lock:
            for objective in self.objectives:
                track = self._tracks[objective.name]
                bad = objective.is_bad(status, duration_s)
                if bad:
                    track.bad_total += 1
                else:
                    track.good_total += 1
                if track.buckets and track.buckets[-1][0] == second:
                    track.buckets[-1][2 if bad else 1] += 1
                else:
                    track.buckets.append([second, 0 if bad else 1, 1 if bad else 0])
                self._prune(track, now)
                fired.extend(self._evaluate(objective, track, now))
        self._dispatch(fired)
        return fired

    def evaluate(self) -> List[SloAlert]:
        """Re-evaluate without new traffic (lets burns resolve by decay)."""
        now = self._clock()
        fired: List[SloAlert] = []
        with self._lock:
            for objective in self.objectives:
                track = self._tracks[objective.name]
                self._prune(track, now)
                fired.extend(self._evaluate(objective, track, now))
        self._dispatch(fired)
        return fired

    def _prune(self, track: _Track, now: float) -> None:
        horizon = now - self.windows[-1]
        while track.buckets and track.buckets[0][0] < horizon:
            track.buckets.popleft()

    def _window_counts(self, track: _Track, now: float, window: float) -> Tuple[int, int]:
        horizon = now - window
        good = bad = 0
        for second, g, b in reversed(track.buckets):
            if second < horizon:
                break
            good += g
            bad += b
        return int(good), int(bad)

    def _burn_rate(
        self, objective: Objective, track: _Track, now: float, window: float
    ) -> Tuple[float, int]:
        good, bad = self._window_counts(track, now, window)
        total = good + bad
        if total == 0:
            return 0.0, 0
        return (bad / total) / objective.budget, total

    def _evaluate(
        self, objective: Objective, track: _Track, now: float
    ) -> List[SloAlert]:
        rates: Dict[float, float] = {}
        short_total = 0
        burning_everywhere = True
        for window in self.windows:
            rate, total = self._burn_rate(objective, track, now, window)
            rates[window] = rate
            if window == self.windows[0]:
                short_total = total
            if rate < self.burn_threshold:
                burning_everywhere = False
        burning = burning_everywhere and short_total >= self.min_events

        fired: List[SloAlert] = []
        if burning and not track.burning:
            track.burning = True
            rendered = ", ".join(
                f"{int(w)}s at {rates[w]:.1f}x" for w in self.windows
            )
            remedy_note = (
                f"; recommend remedy: {objective.remedy}" if objective.remedy else ""
            )
            fired.append(
                SloAlert(
                    "burn",
                    objective,
                    rates,
                    f"SLO {objective.name} burning its error budget "
                    f"{self.burn_threshold:.0f}x+ across all windows "
                    f"({rendered}){remedy_note}",
                )
            )
        elif track.burning and rates[self.windows[0]] < self.burn_threshold:
            track.burning = False
            fired.append(
                SloAlert(
                    "resolved",
                    objective,
                    rates,
                    f"SLO {objective.name} burn resolved "
                    f"(short-window rate {rates[self.windows[0]]:.1f}x)",
                )
            )
        return fired

    def _dispatch(self, fired: List[SloAlert]) -> None:
        for alert in fired:
            self._alerts.append(alert)
            for callback in self._callbacks:
                callback(alert)
            if (
                alert.kind == "burn"
                and alert.remedy is not None
                and self._degrade is not None
            ):
                self._degrade(alert)

    # -- reading ----------------------------------------------------------------

    @property
    def alerts(self) -> Tuple[SloAlert, ...]:
        with self._lock:
            return tuple(self._alerts)

    def burning(self) -> List[str]:
        """Names of objectives currently in a burn episode."""
        with self._lock:
            return [name for name, track in self._tracks.items() if track.burning]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready engine state for ``/slo`` and the CLI."""
        now = self._clock()
        with self._lock:
            objectives = []
            for objective in self.objectives:
                track = self._tracks[objective.name]
                self._prune(track, now)
                rates = {}
                for window in self.windows:
                    rate, total = self._burn_rate(objective, track, now, window)
                    rates[str(int(window))] = {"burn_rate": rate, "events": total}
                lifetime = track.good_total + track.bad_total
                objectives.append(
                    {
                        **objective.to_dict(),
                        "burning": track.burning,
                        "windows": rates,
                        "lifetime": {
                            "good": track.good_total,
                            "bad": track.bad_total,
                            "bad_fraction": (
                                track.bad_total / lifetime if lifetime else 0.0
                            ),
                        },
                    }
                )
            return {
                "burn_threshold": self.burn_threshold,
                "min_events": self.min_events,
                "windows_s": list(self.windows),
                "objectives": objectives,
                "alerts": [alert.to_dict() for alert in self._alerts],
            }

    def __repr__(self) -> str:
        return (
            f"SloEngine(objectives={[o.name for o in self.objectives]}, "
            f"burning={self.burning()})"
        )


__all__ = [
    "DEFAULT_BURN_THRESHOLD",
    "DEFAULT_MIN_EVENTS",
    "DEFAULT_WINDOWS",
    "KIND_AVAILABILITY",
    "KIND_LATENCY",
    "Objective",
    "SloAlert",
    "SloAlertCallback",
    "SloEngine",
    "default_objectives",
]
