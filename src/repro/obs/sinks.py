"""Event sinks — where finished spans and point events are delivered.

A sink is anything with an ``emit(event: dict) -> None`` method.  Events
are flat JSON-ready dicts (see ``docs/OBSERVABILITY.md`` for the
schema).  Three concrete sinks cover the use cases:

* :class:`NullSink` — swallows everything; the default, so that leaving
  instrumentation compiled into the hot paths costs one flag check;
* :class:`RingBufferSink` — keeps the last N events in memory for tests
  and interactive inspection;
* :class:`JsonLinesSink` — streams events as JSON lines to a file or
  file-like object (the ``python -m repro stats --trace FILE`` target).

:class:`TeeSink` fans one event out to several sinks.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, IO, List, Optional, Union

Event = Dict[str, object]


class Sink:
    """Protocol base: subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: Event) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self._buffer: Deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self) -> List[Event]:
        return list(self._buffer)

    def drain(self) -> List[Event]:
        events = list(self._buffer)
        self._buffer.clear()
        return events

    def __len__(self) -> int:
        return len(self._buffer)


class JsonLinesSink(Sink):
    """Writes one JSON object per line to a path or open stream."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self._stream.write(json.dumps(event, sort_keys=True, default=str))
        self._stream.write("\n")
        self.emitted += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class TeeSink(Sink):
    """Forwards every event to each of the wrapped sinks."""

    def __init__(self, *sinks: Sink):
        self._sinks = sinks

    def emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
