"""Global observability state: one slotted singleton, one flag.

Instrumented hot paths import :data:`STATE` and guard every piece of
bookkeeping with ``if STATE.enabled:`` — a single attribute load on a
slotted object — so that the disabled default (the :class:`NullSink`
configuration) is near-free.  Nothing below this flag check may format
attributes, compute sizes, or allocate.

The state owns:

* ``enabled`` — the master switch;
* ``metrics`` — the global :class:`~repro.obs.registry.Metrics` registry;
* ``sink`` — where finished spans / events are delivered;
* a *context-local* span stack (``contextvars``: each thread — and each
  copied context, e.g. an asyncio task — gets its own stack, so traces
  from concurrent requests never interleave and a span opened in one
  thread can never become the parent of a span opened in another), and
  a bounded list of finished root spans (``traces``).
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from typing import List, Optional

from .registry import Metrics
from .sinks import NullSink, Sink

#: The context-local stack of open spans.  A ``ContextVar`` rather than
#: ``threading.local`` so that span parentage follows Python's context
#: propagation rules: a fresh thread (or a request handled by a server
#: worker) starts with an empty stack, while code running in the same
#: context keeps the familiar nesting behaviour.
_SPAN_STACK: "ContextVar[Optional[List[object]]]" = ContextVar(
    "repro_obs_span_stack", default=None
)


class ObsState:
    __slots__ = ("enabled", "metrics", "sink", "traces", "max_traces", "_lock")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.metrics = Metrics()
        self.sink: Sink = NullSink()
        self.traces: List[object] = []  # finished root Spans, oldest first
        self.max_traces: int = 256
        self._lock = threading.Lock()

    @property
    def stack(self) -> List[object]:
        """This context's stack of open spans (created empty on demand)."""
        stack = _SPAN_STACK.get()
        if stack is None:
            stack = []
            _SPAN_STACK.set(stack)
        return stack

    def add_trace(self, span: object) -> None:
        with self._lock:
            self.traces.append(span)
            overflow = len(self.traces) - self.max_traces
            if overflow > 0:
                del self.traces[:overflow]

    def clear(self) -> None:
        """Drop collected metrics and traces (configuration is kept)."""
        self.metrics.reset()
        with self._lock:
            self.traces.clear()


#: The process-wide observability state.
STATE = ObsState()
