"""Global observability state: one slotted singleton, one flag.

Instrumented hot paths import :data:`STATE` and guard every piece of
bookkeeping with ``if STATE.enabled:`` — a single attribute load on a
slotted object — so that the disabled default (the :class:`NullSink`
configuration) is near-free.  Nothing below this flag check may format
attributes, compute sizes, or allocate.

The state owns:

* ``enabled`` — the master switch;
* ``metrics`` — the global :class:`~repro.obs.registry.Metrics` registry;
* ``sink`` — where finished spans / events are delivered;
* a per-thread span stack (traces from concurrent threads never
  interleave) and a bounded list of finished root spans (``traces``).
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .registry import Metrics
from .sinks import NullSink, Sink


class ObsState:
    __slots__ = ("enabled", "metrics", "sink", "traces", "max_traces", "_local", "_lock")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.metrics = Metrics()
        self.sink: Sink = NullSink()
        self.traces: List[object] = []  # finished root Spans, oldest first
        self.max_traces: int = 256
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def stack(self) -> List[object]:
        """This thread's stack of open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def add_trace(self, span: object) -> None:
        with self._lock:
            self.traces.append(span)
            overflow = len(self.traces) - self.max_traces
            if overflow > 0:
                del self.traces[:overflow]

    def clear(self) -> None:
        """Drop collected metrics and traces (configuration is kept)."""
        self.metrics.reset()
        with self._lock:
            self.traces.clear()


#: The process-wide observability state.
STATE = ObsState()
