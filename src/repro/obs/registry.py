"""Named counters and histograms — the metrics half of ``repro.obs``.

A :class:`Metrics` registry owns :class:`Counter` and :class:`Histogram`
instances keyed by dotted names (``"refine.specializations"``,
``"matching.augmenting_paths"``).  Instruments are created lazily on
first use so call sites never need registration boilerplate, and
:meth:`Metrics.snapshot` renders the whole registry as plain dicts ready
for ``json.dumps``.

Histograms keep aggregate moments, a bounded window of recent
observations (``recent``) so ordered series — e.g. knowledge size after
each recorded query, the live view of Example 3.2's blowup — stay
readable without unbounded memory, and a mergeable
:class:`~repro.obs.sketch.QuantileSketch` so percentile queries see the
*whole* stream with a guaranteed relative-error bound.  ``recent`` is
for ordered-series inspection only; reading percentiles off it is
biased toward the newest window — use :meth:`Histogram.quantile`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from .sketch import DEFAULT_ACCURACY, SUMMARY_QUANTILES, QuantileSketch

Number = Union[int, float]

#: How many raw observations a histogram retains for series inspection.
RECENT_WINDOW = 1024


class Counter:
    """A monotonically increasing named count.

    ``inc`` holds a per-instrument lock: ``value += amount`` is a
    read-modify-write, and concurrent workloads (thread pools timing
    their own Refine steps) would otherwise lose increments.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A named value that can go up and down (current knowledge size,
    server uptime, in-flight requests).  Last-write-wins under a lock."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Aggregate moments, a bounded raw window, and a quantile sketch.

    ``observe`` updates five fields plus the sketch; the per-instrument
    lock keeps the moments mutually consistent under concurrent
    observation (the sketch carries its own lock).  Percentiles come
    from :meth:`quantile` — whole-stream, within ``relative_accuracy``
    — never from ``recent``, which only sees the newest window.
    """

    __slots__ = ("name", "count", "total", "min", "max", "recent", "sketch", "_lock")

    def __init__(
        self,
        name: str,
        window: int = RECENT_WINDOW,
        relative_accuracy: float = DEFAULT_ACCURACY,
    ):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.recent: Deque[Number] = deque(maxlen=window)
        self.sketch = QuantileSketch(relative_accuracy)
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.recent.append(value)
        self.sketch.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Whole-stream quantile from the sketch (None when empty)."""
        return self.sketch.quantile(q)

    def quantiles(self) -> Dict[str, Optional[float]]:
        """The standard summary quantiles, JSON-ready."""
        return {f"p{int(q * 100)}": self.sketch.quantile(q) for q in SUMMARY_QUANTILES}

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "recent": list(self.recent),
            "quantiles": self.quantiles(),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class Metrics:
    """A registry of named counters and histograms.

    One global instance lives on :data:`repro.obs.state.STATE`;
    components that want private books (e.g. per-:class:`Webhouse`
    statistics) instantiate their own.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- access -----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            # lock only the miss path: two racing creators must agree on
            # one instrument or increments on the loser are lost
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def inc(self, name: str, amount: Number = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str) -> Number:
        """Current value of a counter (0 when never incremented)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str) -> Number:
        """Current value of a gauge (0 when never set)."""
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else 0

    def series(self, name: str) -> List[Number]:
        """Recent observations of a histogram (empty when unknown)."""
        instrument = self._histograms.get(name)
        return list(instrument.recent) if instrument is not None else []

    def quantile(self, name: str, q: float) -> Optional[float]:
        """Whole-stream histogram quantile (None when unknown/empty)."""
        instrument = self._histograms.get(name)
        return instrument.quantile(q) if instrument is not None else None

    def counters(self) -> Dict[str, Number]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def merge_counts(self, book: Dict[str, Number]) -> None:
        """Fold a counter **delta** book into this registry.

        The cross-process merge half of the telemetry plane: shard
        workers push the counter increments accrued since their last
        response (:mod:`repro.cluster.proc`), and the router folds them
        here so fleet-wide ``/metrics`` totals include worker-side
        engine work.  Deltas — never absolute snapshots — keep the fold
        idempotent-free and respawn-safe: a fresh worker simply starts
        a new delta stream.
        """
        for name, amount in book.items():
            if amount:
                self.counter(name).inc(amount)

    def gauges(self) -> Dict[str, Number]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Dict[str, object]]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}

    # -- lifecycle --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as JSON-ready plain data."""
        document: Dict[str, object] = {
            "counters": self.counters(),
            "histograms": self.histograms(),
        }
        if self._gauges:
            document["gauges"] = self.gauges()
        return document

    def reset(self) -> None:
        """Drop every instrument (identity of the registry is preserved)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )
