"""EXPLAIN for the paper's two workhorse operations.

``explain_refine(...)`` runs one Refine step (Theorem 3.4) and
``explain_ask(...)`` one incomplete-tree query evaluation (q(T),
Theorem 3.14) under an *isolated* observability capture — a private
metrics registry, sink, and trace list swapped into ``STATE`` for the
duration — and assembles a structured :class:`Explanation`: the phases
hit (the span tree, flattened), specialization counts, bipartite
matching sizes, condition/emptiness fixpoint rounds, and the
knowledge-size delta.  Rendered as aligned text (:meth:`Explanation.render`)
or JSON (:meth:`Explanation.to_json`).

Isolation means EXPLAIN never pollutes the caller's metrics or traces
and works identically whether observability was on or off.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import PSQuery
    from ..core.tree import DataTree
    from ..incomplete.incomplete_tree import IncompleteTree

from .registry import Metrics
from .sinks import RingBufferSink
from .spans import Span, span
from .state import STATE


@contextmanager
def isolated_observation() -> Iterator[Metrics]:
    """Collect into a private registry/sink/trace list, restore after."""
    previous = (STATE.enabled, STATE.sink, STATE.metrics, STATE.traces)
    metrics = Metrics()
    STATE.metrics = metrics
    STATE.sink = RingBufferSink()
    STATE.traces = []
    STATE.enabled = True
    try:
        yield metrics
    finally:
        STATE.enabled, STATE.sink, STATE.metrics, STATE.traces = previous


class Explanation:
    """Structured account of one explained operation."""

    __slots__ = ("operation", "inputs", "phases", "work", "result")

    def __init__(
        self,
        operation: str,
        inputs: Dict[str, object],
        phases: List[Dict[str, object]],
        work: Dict[str, object],
        result: Dict[str, object],
    ):
        self.operation = operation
        self.inputs = inputs
        #: flattened span tree: [{"phase", "depth", "seconds", "attrs"}, ...]
        self.phases = phases
        #: counters / series collected during the operation
        self.work = work
        self.result = result

    def to_dict(self) -> Dict[str, object]:
        return {
            "operation": self.operation,
            "inputs": dict(self.inputs),
            "phases": [dict(p) for p in self.phases],
            "work": dict(self.work),
            "result": dict(self.result),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def render(self) -> str:
        """Aligned, human-readable text — the EXPLAIN output."""
        lines = [f"EXPLAIN {self.operation}"]
        lines.append("inputs:")
        for key, value in self.inputs.items():
            lines.append(f"  {key:<28} {_fmt(value)}")
        lines.append("phases:")
        for phase in self.phases:
            indent = "  " * (1 + int(phase["depth"]))  # type: ignore[call-overload]
            attrs = phase.get("attrs") or {}
            attr_text = "  ".join(f"{k}={_fmt(v)}" for k, v in attrs.items())
            seconds = float(phase["seconds"])  # type: ignore[arg-type]
            lines.append(
                f"{indent}{phase['phase']:<{max(4, 40 - len(indent))}}"
                f" {seconds:>10.6f}s  {attr_text}".rstrip()
            )
        lines.append("work:")
        for key, value in self.work.items():
            lines.append(f"  {key:<28} {_fmt(value)}")
        lines.append("result:")
        for key, value in self.result.items():
            lines.append(f"  {key:<28} {_fmt(value)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Explanation({self.operation!r}, {len(self.phases)} phases)"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _flatten_phases(root: Span) -> List[Dict[str, object]]:
    phases: List[Dict[str, object]] = []

    def walk(node: Span, depth: int) -> None:
        phases.append(
            {
                "phase": node.name,
                "depth": depth,
                "seconds": node.duration,
                "attrs": dict(node.attrs),
            }
        )
        for child in node.children:
            walk(child, depth + 1)

    for child in root.children:
        walk(child, 0)
    return phases


def _collect_work(metrics: Metrics) -> Dict[str, object]:
    work: Dict[str, object] = dict(metrics.counters())
    for name, series in (
        ("matching.matching_size", "matching_sizes"),
        ("matching.bfs_phases", "matching_bfs_phases"),
        ("emptiness.fixpoint_rounds", "emptiness_fixpoint_rounds"),
        ("certainty.nodes_processed", "certainty_nodes_processed"),
    ):
        values = metrics.series(name)
        if values:
            work[series] = values
    # drop the per-span timing histograms: phase timings already carry them
    return {k: v for k, v in sorted(work.items()) if not k.startswith("span.")}


def explain_refine(
    current: "IncompleteTree",
    query: "PSQuery",
    answer: "DataTree",
    alphabet: Iterable[str],
    normalize: bool = True,
) -> Tuple[Explanation, "IncompleteTree"]:
    """EXPLAIN one Refine step; returns ``(explanation, refined_tree)``.

    The step actually runs (EXPLAIN ANALYZE, not EXPLAIN): the returned
    tree is the real refinement, so callers can explain *and* keep the
    result without paying twice.
    """
    from ..refine.refine import refine

    input_size = current.size()
    input_symbols = len(current.type.symbols())
    inputs: Dict[str, object] = {
        "knowledge_size": input_size,
        "knowledge_symbols": input_symbols,
        "data_nodes": len(current.data_node_ids()),
        "query_nodes": query.size(),
        "query_linear": query.is_linear(),
        "answer_nodes": len(answer),
    }
    with isolated_observation() as metrics:
        with span("explain.refine") as sp:
            refined = refine(current, query, answer, alphabet, normalize=normalize)
        assert sp is not None
        phases = _flatten_phases(sp)
    result_size = refined.size()
    result = {
        "knowledge_size": result_size,
        "knowledge_symbols": len(refined.type.symbols()),
        "size_delta": result_size - input_size,
        "growth_factor": (result_size / input_size) if input_size else float("inf"),
        "empty": refined.is_empty(),
        "seconds": sp.duration,
    }
    explanation = Explanation(
        "refine (one Refine step, Theorem 3.4)",
        inputs,
        phases,
        _collect_work(metrics),
        result,
    )
    return explanation, refined


def explain_ask(
    incomplete: "IncompleteTree", query: "PSQuery"
) -> Tuple[Explanation, "IncompleteTree"]:
    """EXPLAIN one q(T) evaluation; returns ``(explanation, answers)``.

    ``answers`` is the incomplete tree of all possible answers
    (Theorem 3.14) — the construction that is worst-case exponential in
    |Σ|, which is exactly what ``symbols_generated`` makes visible.
    """
    from ..answering.query_incomplete import query_incomplete

    input_size = incomplete.size()
    inputs: Dict[str, object] = {
        "knowledge_size": input_size,
        "knowledge_symbols": len(incomplete.type.symbols()),
        "data_nodes": len(incomplete.data_node_ids()),
        "query_nodes": query.size(),
        "query_linear": query.is_linear(),
    }
    with isolated_observation() as metrics:
        with span("explain.ask") as sp:
            answers = query_incomplete(incomplete, query)
        assert sp is not None
        phases = _flatten_phases(sp)
    result_size = answers.size()
    result = {
        "answer_size": result_size,
        "answer_symbols": len(answers.type.symbols()),
        "symbols_generated": metrics.value("query_incomplete.symbols_generated"),
        "allows_empty_answer": answers.allows_empty,
        "blowup_factor": (result_size / input_size) if input_size else float("inf"),
        "seconds": sp.duration,
    }
    explanation = Explanation(
        "ask (incomplete-tree query q(T), Theorem 3.14)",
        inputs,
        phases,
        _collect_work(metrics),
        result,
    )
    return explanation, answers


__all__ = ["Explanation", "explain_ask", "explain_refine", "isolated_observation"]
