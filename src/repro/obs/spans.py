"""Nestable timing spans producing a structured trace tree.

``with span("refine.step", step=3) as sp:`` opens a timed region.  Spans
nest: a span opened while another is active becomes its child, so one
``refine.sequence`` span ends up holding one ``refine.step`` child per
query/answer pair, each with its own attributes (specialization counts,
result sizes).  Closed root spans are appended to ``STATE.traces`` and
every closed span is also:

* emitted to the active sink as a flat ``{"type": "span", ...}`` event
  (depth-annotated, so a JSONL file can be re-assembled into a tree), and
* observed into the histogram ``span.<name>.seconds`` — spans double as
  wall-time metrics without a separate ``timed()`` call.

When observability is disabled ``span()`` returns a shared no-op context
manager and yields ``None`` — call sites write
``if sp is not None: sp.attrs[...] = ...`` for any attribute whose
computation is not free.

Span parentage is *context-local* (``contextvars``, see
:mod:`repro.obs.state`): a span opened in one thread can never become
the parent of a span opened in another.  A request-scoped **trace id**
rides the same mechanism — :func:`set_trace_id` binds an id to the
current context and every span closed while it is bound carries it as
the ``trace_id`` attribute (and in its emitted sink event), so flat
JSONL logs and Chrome traces can be correlated back to one request.
The ops plane (:mod:`repro.ops.trace`) manages this per HTTP request.
"""

from __future__ import annotations

import time
from contextvars import ContextVar, Token
from typing import Dict, List, Optional

from .sinks import NullSink
from .state import STATE

#: The context-local trace id stamped onto every span closed while set.
_TRACE_ID: "ContextVar[Optional[str]]" = ContextVar(
    "repro_obs_trace_id", default=None
)

#: The context-local shard index stamped onto every span closed while
#: set — the cluster layer (:mod:`repro.cluster`) binds it around every
#: per-shard operation so profiles and flight-recorder traces can
#: attribute engine work to shards.
_SHARD: "ContextVar[Optional[int]]" = ContextVar("repro_obs_shard", default=None)


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: Optional[str]) -> "Token[Optional[str]]":
    """Bind a trace id to the current context; returns the reset token."""
    return _TRACE_ID.set(trace_id)


def reset_trace_id(token: "Token[Optional[str]]") -> None:
    """Restore the trace-id binding captured by :func:`set_trace_id`."""
    _TRACE_ID.reset(token)


def current_shard() -> Optional[int]:
    """The shard index bound to the current context, if any."""
    return _SHARD.get()


def set_shard(shard: Optional[int]) -> "Token[Optional[int]]":
    """Bind a shard index to the current context; returns the reset token."""
    return _SHARD.set(shard)


def reset_shard(token: "Token[Optional[int]]") -> None:
    """Restore the shard binding captured by :func:`set_shard`."""
    _SHARD.reset(token)


#: Per-span-name cache of the ``span.<name>.seconds`` metric string —
#: the close path runs for every span and f-string formatting is a
#: measurable slice of the always-on overhead budget.
_METRIC_NAMES: Dict[str, str] = {}


class Span:
    """One timed region of a trace tree.

    A span is its own context manager (no wrapper allocation on the
    hot path): ``with span("name") as sp`` enters it, and closing
    stamps context-local attributes, files it under its parent (or the
    trace list), and feeds the span metrics/sink.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "events")

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.events: List[Dict[str, object]] = []

    @property
    def duration(self) -> float:
        """Seconds elapsed (live spans measure up to now)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready nested rendering (the trace-tree schema)."""
        rendered: Dict[str, object] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            rendered["attrs"] = dict(self.attrs)
        if self.events:
            rendered["events"] = list(self.events)
        if self.children:
            rendered["children"] = [child.to_dict() for child in self.children]
        return rendered

    def find(self, name: str) -> List["Span"]:
        """All descendants (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"

    def __enter__(self) -> "Span":
        STATE.stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object = None, exc: object = None, tb: object = None) -> bool:
        self.end = ended = time.perf_counter()
        attrs = self.attrs
        if exc_type is not None:
            # close-and-propagate: the span is marked errored so profiles
            # and traces show where exceptions went, but it still lands in
            # its parent / the trace list like any other span
            attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        trace_id = _TRACE_ID.get()
        if trace_id is not None:
            attrs.setdefault("trace_id", trace_id)
        shard = _SHARD.get()
        if shard is not None:
            attrs.setdefault("shard", shard)
        stack = STATE.stack
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            STATE.add_trace(self)
        name = self.name
        metric = _METRIC_NAMES.get(name)
        if metric is None:
            metric = _METRIC_NAMES[name] = f"span.{name}.seconds"
        duration = ended - self.start
        STATE.metrics.observe(metric, duration)
        sink = STATE.sink
        if sink.__class__ is not NullSink:
            sink.emit(
                {
                    "type": "span",
                    "name": name,
                    "duration_s": duration,
                    "depth": len(stack),
                    "attrs": dict(attrs),
                }
            )
        return False


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpan()


def span(name: str, **attrs: object):
    """Open a timed span (no-op yielding ``None`` when disabled)."""
    if not STATE.enabled:
        return _NULL
    return Span(name, attrs)


def current_span() -> Optional[Span]:
    """The innermost open span of this context, if any."""
    if not STATE.enabled:
        return None
    stack = STATE.stack
    return stack[-1] if stack else None  # type: ignore[return-value]


def add_attrs(**attrs: object) -> None:
    """Attach attributes to the innermost open span (no-op when disabled)."""
    active = current_span()
    if active is not None:
        active.attrs.update(attrs)


def event(name: str, **attrs: object) -> None:
    """Record a point event on the current span and the sink."""
    if not STATE.enabled:
        return
    record: Dict[str, object] = {"type": "event", "name": name}
    if attrs:
        record["attrs"] = attrs
    active = current_span()
    if active is not None:
        entry: Dict[str, object] = {"name": name}
        if attrs:
            entry["attrs"] = dict(attrs)
        active.events.append(entry)
    STATE.sink.emit(record)
