"""Shared wall-clock helpers (the one place timing code lives).

``timed(fn)`` is the micro-benchmark helper previously duplicated in
``benchmarks/series.py``; ``timer()`` is its context-manager sibling for
timing a block without wrapping it in a closure.  Both are deliberately
independent of the enabled flag — benchmarks always want the number —
while :func:`~repro.obs.spans.span` is the instrumented counterpart.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


def timed(fn: Callable[[], object]) -> float:
    """Seconds taken by one call of ``fn``."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class Timer:
    """Result object of :func:`timer`; ``seconds`` is set on exit."""

    __slots__ = ("start", "seconds")

    def __init__(self) -> None:
        self.start = 0.0
        self.seconds: float = 0.0


@contextmanager
def timer() -> Iterator[Timer]:
    """``with timer() as t: ...`` then read ``t.seconds``."""
    clock = Timer()
    clock.start = time.perf_counter()
    try:
        yield clock
    finally:
        clock.seconds = time.perf_counter() - clock.start
