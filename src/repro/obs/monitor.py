"""Knowledge-growth monitoring: regime classification, alerts, budgets.

The paper's operational tension: each Refine step is PTIME (Theorems
3.4/3.5) but the incomplete-tree representation can double per recorded
query (Example 3.2) — and the paper names three remedies: conjunctive
trees (Section 3.2, Corollary 3.9), restriction to linear queries
(Lemma 3.12), and lossy forgetting (Proposition 3.13 / Section 3.2).
A :class:`GrowthMonitor` watches the knowledge-size series as it is
produced (``Webhouse.record`` feeds it), classifies the growth regime
over a sliding window — ``flat`` / ``linear`` / ``superlinear`` — and
fires :class:`Alert` callbacks carrying the recommended remedy, so an
operator (or an automatic degrade hook) can act *before* the session
melts.

Budgets add hard enforcement: crossing ``warn_budget`` fires a warning
alert once; crossing ``hard_budget`` either warns, raises
:class:`BudgetExceeded`, or invokes the ``degrade_callback`` (which
``Webhouse.guard`` wires to :meth:`Webhouse.apply_remedy`), depending on
``on_hard``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

Number = float

# -- the paper's three remedies, by stable name ----------------------------------

#: Switch to conjunctive incomplete trees (Refine⁺, Corollary 3.9):
#: representation linear in the history, emptiness becomes NP-hard.
REMEDY_CONJUNCTIVE = "conjunctive"
#: Restrict to linear queries and minimize per step (Lemma 3.12).
REMEDY_LINEAR = "linear"
#: Lossy forgetting: coarsen specializations (Section 3.2 heuristics).
REMEDY_LOSSY = "lossy"

#: Classification labels.
REGIME_WARMUP = "warming-up"
REGIME_FLAT = "flat"
REGIME_LINEAR = "linear"
REGIME_SUPERLINEAR = "superlinear"


class Alert:
    """One monitor finding: what happened, how bad, what to do."""

    __slots__ = ("kind", "regime", "remedy", "size", "step", "window", "message")

    def __init__(
        self,
        kind: str,
        regime: str,
        remedy: str,
        size: Number,
        step: int,
        window: Sequence[Number],
        message: str,
    ):
        self.kind = kind  # "regime" | "budget_warn" | "budget_hard"
        self.regime = regime
        self.remedy = remedy
        self.size = size
        self.step = step
        self.window = tuple(window)
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "regime": self.regime,
            "remedy": self.remedy,
            "size": self.size,
            "step": self.step,
            "window": list(self.window),
            "message": self.message,
        }

    def __repr__(self) -> str:
        return f"Alert({self.kind!r}, regime={self.regime!r}, remedy={self.remedy!r}, size={self.size})"


class BudgetExceeded(RuntimeError):
    """Raised when the hard knowledge budget is crossed under ``on_hard="raise"``."""

    def __init__(self, alert: Alert):
        super().__init__(alert.message)
        self.alert = alert


AlertCallback = Callable[[Alert], None]


class GrowthMonitor:
    """Classify the knowledge-size series and alert with a remedy.

    The classifier looks at the last ``window`` sizes.  With fewer than
    ``min_points`` observations it reports ``warming-up``.  Otherwise,
    over the first differences ``d``:

    * **flat** — every ``|d_i|`` is within ``flat_tolerance`` of the
      current size (the representation has stabilized);
    * **superlinear** — the differences are non-decreasing and the last
      one exceeds ``delta_growth`` times the first (compounding growth —
      Example 3.2 shows here as deltas doubling per step);
    * **linear** — everything else (steady growth, bounded deltas).

    Remedy recommendation follows the paper: a superlinear regime on an
    all-linear query history means minimization was skipped → apply
    Lemma 3.12 (``linear``); with branching queries the structural fix
    is Refine⁺ (``conjunctive``); a budget breach without superlinear
    structure falls back to lossy forgetting (``lossy``).
    """

    def __init__(
        self,
        window: int = 8,
        min_points: int = 4,
        flat_tolerance: float = 0.05,
        delta_growth: float = 1.6,
        warn_budget: Optional[Number] = None,
        hard_budget: Optional[Number] = None,
        on_hard: str = "raise",
        alert_callbacks: Sequence[AlertCallback] = (),
        degrade_callback: Optional[AlertCallback] = None,
        degrade_on_superlinear: bool = False,
    ):
        if on_hard not in ("warn", "raise", "degrade"):
            raise ValueError(f"on_hard must be warn|raise|degrade, got {on_hard!r}")
        if on_hard == "degrade" and hard_budget is not None and degrade_callback is None:
            raise ValueError("on_hard='degrade' needs a degrade_callback")
        self.window = int(window)
        self.min_points = max(3, int(min_points))
        self.flat_tolerance = float(flat_tolerance)
        self.delta_growth = float(delta_growth)
        self.warn_budget = warn_budget
        self.hard_budget = hard_budget
        self.on_hard = on_hard
        self.degrade_on_superlinear = bool(degrade_on_superlinear)
        self._callbacks: List[AlertCallback] = list(alert_callbacks)
        self._degrade = degrade_callback
        self._sizes: Deque[Number] = deque(maxlen=self.window)
        self._step = 0
        self._all_linear = True
        self._last_regime = REGIME_WARMUP
        self._warned_budget = False
        self._alerts: List[Alert] = []

    # -- configuration ----------------------------------------------------------

    def on_alert(self, callback: AlertCallback) -> None:
        """Register an additional alert callback."""
        self._callbacks.append(callback)

    def set_degrade(self, callback: AlertCallback) -> None:
        self._degrade = callback

    def seed(self, sizes: Sequence[Number], all_linear: bool = True) -> None:
        """Adopt an existing size series (e.g. when replacing a monitor
        mid-session) without firing alerts for the past."""
        for size in sizes:
            self._sizes.append(size)
        self._all_linear = bool(all_linear)
        self._last_regime = self.classification()

    # -- feeding ----------------------------------------------------------------

    def observe(self, size: Number, linear: Optional[bool] = None) -> List[Alert]:
        """Feed one knowledge size; returns the alerts fired (if any).

        ``linear`` tells the monitor whether the history producing this
        size consists of linear queries only (drives the remedy choice).
        Raises :class:`BudgetExceeded` when the hard budget is crossed
        and ``on_hard="raise"``.
        """
        self._step += 1
        if linear is not None:
            self._all_linear = self._all_linear and bool(linear)
        self._sizes.append(size)

        fired: List[Alert] = []
        regime = self.classification()
        if regime == REGIME_SUPERLINEAR and self._last_regime != REGIME_SUPERLINEAR:
            alert = self._make_alert(
                "regime",
                regime,
                self.recommend(regime),
                size,
                f"knowledge growth turned superlinear at size {size} "
                f"(step {self._step}); recommend remedy: {self.recommend(regime)}",
            )
            fired.append(alert)
        self._last_regime = regime

        if (
            self.warn_budget is not None
            and size >= self.warn_budget
            and not self._warned_budget
        ):
            self._warned_budget = True
            fired.append(
                self._make_alert(
                    "budget_warn",
                    regime,
                    self.recommend(regime),
                    size,
                    f"knowledge size {size} crossed warn budget {self.warn_budget}",
                )
            )

        hard_alert: Optional[Alert] = None
        if self.hard_budget is not None and size >= self.hard_budget:
            hard_alert = self._make_alert(
                "budget_hard",
                regime,
                self.recommend(regime, budget_breach=True),
                size,
                f"knowledge size {size} crossed hard budget {self.hard_budget} "
                f"(on_hard={self.on_hard})",
            )
            fired.append(hard_alert)

        degrade_alert = hard_alert if self.on_hard == "degrade" else None
        if degrade_alert is None and self.degrade_on_superlinear:
            degrade_alert = next((a for a in fired if a.kind == "regime"), None)

        for alert in fired:
            self._alerts.append(alert)
            for callback in self._callbacks:
                callback(alert)
        if degrade_alert is not None and self._degrade is not None:
            self._degrade(degrade_alert)
        if hard_alert is not None and self.on_hard == "raise":
            raise BudgetExceeded(hard_alert)
        return fired

    def reset_window(self) -> None:
        """Restart classification (e.g. right after a remedy was applied)."""
        self._sizes.clear()
        self._last_regime = REGIME_WARMUP
        self._warned_budget = False

    # -- reading ----------------------------------------------------------------

    @property
    def sizes(self) -> Tuple[Number, ...]:
        return tuple(self._sizes)

    @property
    def alerts(self) -> Tuple[Alert, ...]:
        """Every alert fired so far (survives ``reset_window``)."""
        return tuple(self._alerts)

    def classification(self) -> str:
        """The current growth regime over the sliding window."""
        sizes = list(self._sizes)
        if len(sizes) < self.min_points:
            return REGIME_WARMUP
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        slack = max(1.0, self.flat_tolerance * abs(sizes[-1]))
        if all(abs(d) <= slack for d in deltas):
            return REGIME_FLAT
        non_decreasing = all(b >= a for a, b in zip(deltas, deltas[1:]))
        compounding = deltas[-1] >= self.delta_growth * max(deltas[0], 1.0)
        if non_decreasing and compounding and deltas[-1] > 0:
            return REGIME_SUPERLINEAR
        return REGIME_LINEAR

    def recommend(self, regime: Optional[str] = None, budget_breach: bool = False) -> str:
        """The paper remedy matching the current situation."""
        regime = regime if regime is not None else self.classification()
        if regime == REGIME_SUPERLINEAR:
            return REMEDY_LINEAR if self._all_linear else REMEDY_CONJUNCTIVE
        if budget_breach:
            # growing past budget without superlinear structure: trade
            # accuracy for size (graceful loss)
            return REMEDY_LOSSY
        return REMEDY_CONJUNCTIVE if not self._all_linear else REMEDY_LINEAR

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready monitor state."""
        return {
            "regime": self.classification(),
            "recommendation": self.recommend(),
            "steps_observed": self._step,
            "window": list(self._sizes),
            "all_linear_history": self._all_linear,
            "warn_budget": self.warn_budget,
            "hard_budget": self.hard_budget,
            "on_hard": self.on_hard,
            "alerts": [alert.to_dict() for alert in self._alerts],
        }

    def _make_alert(
        self, kind: str, regime: str, remedy: str, size: Number, message: str
    ) -> Alert:
        return Alert(kind, regime, remedy, size, self._step, self._sizes, message)

    def __repr__(self) -> str:
        return (
            f"GrowthMonitor(regime={self.classification()!r}, "
            f"steps={self._step}, alerts={len(self._alerts)})"
        )


__all__ = [
    "Alert",
    "AlertCallback",
    "BudgetExceeded",
    "GrowthMonitor",
    "REGIME_FLAT",
    "REGIME_LINEAR",
    "REGIME_SUPERLINEAR",
    "REGIME_WARMUP",
    "REMEDY_CONJUNCTIVE",
    "REMEDY_LINEAR",
    "REMEDY_LOSSY",
]
