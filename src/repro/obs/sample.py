"""Head + tail trace sampling for the always-on flight recorder.

With tracing on by default, recording *every* trace would let healthy
high-volume traffic churn the interesting ones out of the completed
ring.  The :class:`TraceSampler` makes two decisions per request:

* **head** — a deterministic hash of the trace id against ``head_rate``
  decides whether an ordinary healthy trace is kept.  Deterministic so
  the same trace id always gets the same verdict (a retried scrape or a
  multi-shard fan-out agrees with itself) and so tests are exact;
* **tail** — after the request finishes, traces that matched a *keep
  rule* are retained regardless of the head decision: errored (5xx or a
  span marked errored), shed (429/503 backpressure), and slow (duration
  over ``slow_s`` — the tail the sketches say matters).

The sampler returns a *reason* string (``"head"``, ``"error"``,
``"shed"``, ``"slow"``) or ``None`` for *drop*; the ops layer stamps
the reason onto the trace root so Chrome-trace dumps show why each
trace survived, and keeps per-reason books for ``/metrics``.

``head_rate=1.0`` (the default) keeps everything — sampling is a
pressure valve to turn, not a default loss.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, Optional

#: Statuses that mean load shedding / backpressure rather than failure.
SHED_STATUSES = (429, 503)

#: Default slow-trace threshold, seconds (also the serve ``--slow-ms``
#: default and the latency objective's threshold).
DEFAULT_SLOW_S = 0.25

REASON_HEAD = "head"
REASON_ERROR = "error"
REASON_SHED = "shed"
REASON_SLOW = "slow"

_HASH_SPACE = 2 ** 32


class TraceSampler:
    """Decide, per finished request, whether its trace is recorded.

    >>> sampler = TraceSampler(head_rate=0.0, slow_s=0.1)
    >>> sampler.decide("deadbeef", status=200, duration_s=0.01)  # dropped
    >>> sampler.decide("deadbeef", status=500, duration_s=0.01)
    'error'
    >>> sampler.decide("deadbeef", status=200, duration_s=0.5)
    'slow'
    """

    __slots__ = ("head_rate", "slow_s", "_kept", "_dropped", "_by_reason", "_lock")

    def __init__(self, head_rate: float = 1.0, slow_s: float = DEFAULT_SLOW_S):
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError(f"head_rate must be in [0, 1], got {head_rate!r}")
        if slow_s <= 0:
            raise ValueError(f"slow_s must be positive, got {slow_s!r}")
        self.head_rate = float(head_rate)
        self.slow_s = float(slow_s)
        self._kept = 0
        self._dropped = 0
        self._by_reason: Dict[str, int] = {}
        self._lock = threading.Lock()

    def head_decision(self, trace_id: str) -> bool:
        """The deterministic hash draw for an otherwise-ordinary trace."""
        if self.head_rate >= 1.0:
            return True
        if self.head_rate <= 0.0:
            return False
        draw = zlib.crc32(trace_id.encode("utf-8")) % _HASH_SPACE
        return draw < self.head_rate * _HASH_SPACE

    def decide(
        self,
        trace_id: str,
        status: int,
        duration_s: float,
        errored: bool = False,
    ) -> Optional[str]:
        """The keep reason for this finished request, or ``None`` to drop.

        Tail rules trump the head decision.  Shed statuses classify as
        backpressure even when the span tree carries an error mark (a
        refused request is operationally different from a failed one).
        """
        reason: Optional[str] = None
        if status in SHED_STATUSES:
            reason = REASON_SHED
        elif errored or status >= 500:
            reason = REASON_ERROR
        elif duration_s > self.slow_s:
            reason = REASON_SLOW
        elif self.head_decision(trace_id):
            reason = REASON_HEAD
        with self._lock:
            if reason is None:
                self._dropped += 1
            else:
                self._kept += 1
                self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
        return reason

    def stats(self) -> Dict[str, object]:
        """JSON-ready books: totals and per-reason keep counts."""
        with self._lock:
            total = self._kept + self._dropped
            return {
                "head_rate": self.head_rate,
                "slow_s": self.slow_s,
                "kept": self._kept,
                "dropped": self._dropped,
                "keep_fraction": self._kept / total if total else 1.0,
                "by_reason": dict(sorted(self._by_reason.items())),
            }

    def __repr__(self) -> str:
        books = self.stats()
        return (
            f"TraceSampler(head_rate={self.head_rate}, slow_s={self.slow_s}, "
            f"kept={books['kept']}, dropped={books['dropped']})"
        )


__all__ = [
    "DEFAULT_SLOW_S",
    "REASON_ERROR",
    "REASON_HEAD",
    "REASON_SHED",
    "REASON_SLOW",
    "SHED_STATUSES",
    "TraceSampler",
]
