"""Span-tree aggregation: per-name profiles and hot paths.

PR 1's spans record *where time went* one call at a time; this module
turns a batch of finished trace trees into the operator's view: per
span-name totals (calls, total/self seconds, child breakdown), per
*call-path* totals (``refine.sequence > refine.step > refine.intersect``),
and a flame-style text rendering.  The aggregation is the analysis half
of the paper's cost story: Theorem 3.4 says each Refine step is PTIME in
its input — the profile shows the input (and so the step time) growing
across a query sequence, which is Example 3.2's blowup as a flame graph.

Typical usage::

    with obs.capture():
        ...workload...
    prof = obs.profile()           # aggregate obs.traces()
    print(prof.render())           # flame-style text
    prof.hot_paths(5)              # heaviest call paths
    prof.to_dict()                 # JSON-ready
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import Span

#: A call path: span names from the root down to one span.
PathKey = Tuple[str, ...]


class ProfileEntry:
    """Aggregate statistics for one span name."""

    __slots__ = ("name", "calls", "total_s", "self_s", "min_s", "max_s", "errors", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self.errors = 0
        #: child span name -> (calls, total seconds) spent directly below
        self.children: Dict[str, Tuple[int, float]] = {}

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "errors": self.errors,
            "children": {
                name: {"calls": calls, "total_s": seconds}
                for name, (calls, seconds) in sorted(self.children.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"ProfileEntry({self.name!r}, calls={self.calls}, "
            f"total={self.total_s:.6f}s, self={self.self_s:.6f}s)"
        )


class Profile:
    """Aggregated view over a batch of finished span trees."""

    __slots__ = ("entries", "paths", "roots_seen", "wall_s")

    def __init__(self) -> None:
        #: span name -> aggregate entry
        self.entries: Dict[str, ProfileEntry] = {}
        #: call path -> (calls, total seconds, self seconds)
        self.paths: Dict[PathKey, Tuple[int, float, float]] = {}
        self.roots_seen = 0
        #: sum of root-span durations — the profiled wall clock
        self.wall_s = 0.0

    # -- building ---------------------------------------------------------------

    def add(self, root: Span) -> None:
        """Fold one finished trace tree into the aggregates."""
        self.roots_seen += 1
        self.wall_s += root.duration
        self._walk(root, ())

    def _walk(self, span: Span, prefix: PathKey) -> float:
        duration = span.duration
        child_total = 0.0
        path = prefix + (span.name,)
        for child in span.children:
            child_total += self._walk(child, path)
        self_s = max(0.0, duration - child_total)

        entry = self.entries.get(span.name)
        if entry is None:
            entry = self.entries[span.name] = ProfileEntry(span.name)
        entry.calls += 1
        entry.total_s += duration
        entry.self_s += self_s
        if entry.min_s is None or duration < entry.min_s:
            entry.min_s = duration
        if entry.max_s is None or duration > entry.max_s:
            entry.max_s = duration
        if "error" in span.attrs:
            entry.errors += 1
        for child in span.children:
            calls, seconds = entry.children.get(child.name, (0, 0.0))
            entry.children[child.name] = (calls + 1, seconds + child.duration)

        calls, total, self_acc = self.paths.get(path, (0, 0.0, 0.0))
        self.paths[path] = (calls + 1, total + duration, self_acc + self_s)
        return duration

    # -- reading ----------------------------------------------------------------

    def entry(self, name: str) -> Optional[ProfileEntry]:
        return self.entries.get(name)

    def hot_paths(self, top: int = 10, by: str = "self") -> List[Tuple[PathKey, int, float, float]]:
        """The heaviest call paths: ``(path, calls, total_s, self_s)``.

        ``by="self"`` ranks by time spent *in* the path's last frame
        (exclusive of children) — the flame-graph notion of hot;
        ``by="total"`` ranks by inclusive time.
        """
        index = 3 if by == "self" else 2
        ranked = sorted(
            ((path, calls, total, self_s) for path, (calls, total, self_s) in self.paths.items()),
            key=lambda row: row[index],
            reverse=True,
        )
        return ranked[: max(0, top)]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering of the whole profile."""
        return {
            "roots": self.roots_seen,
            "wall_s": self.wall_s,
            "by_name": {
                name: entry.to_dict() for name, entry in sorted(self.entries.items())
            },
            "hot_paths": [
                {
                    "path": " > ".join(path),
                    "calls": calls,
                    "total_s": total,
                    "self_s": self_s,
                }
                for path, calls, total, self_s in self.hot_paths(top=len(self.paths))
            ],
        }

    # -- rendering --------------------------------------------------------------

    def render(self, width: int = 28, bar_width: int = 20) -> str:
        """Flame-style text: the call-path tree, widest frames first.

        Each line shows one call path (indented by depth), its share of
        the profiled wall clock as a bar, total/self seconds, and calls.
        """
        if not self.paths:
            return "(no spans recorded)"
        lines = [
            f"{'span':<{width + 12}}  {'bar':<{bar_width}}  "
            f"{'total_s':>9}  {'self_s':>9}  {'calls':>6}"
        ]
        total_base = self.wall_s or max(t for _, t, _ in self.paths.values())

        def emit(path: PathKey) -> None:
            calls, total, self_s = self.paths[path]
            depth = len(path) - 1
            label = "  " * depth + path[-1]
            share = min(1.0, total / total_base) if total_base else 0.0
            bar = "█" * max(1 if total > 0 else 0, round(share * bar_width))
            lines.append(
                f"{label:<{width + 12}}  {bar:<{bar_width}}  "
                f"{total:>9.6f}  {self_s:>9.6f}  {calls:>6}"
            )
            children = sorted(
                (p for p in self.paths if len(p) == len(path) + 1 and p[: len(path)] == path),
                key=lambda p: self.paths[p][1],
                reverse=True,
            )
            for child in children:
                emit(child)

        roots = sorted(
            (p for p in self.paths if len(p) == 1),
            key=lambda p: self.paths[p][1],
            reverse=True,
        )
        for root in roots:
            emit(root)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Profile({len(self.entries)} span names, {self.roots_seen} roots, "
            f"{self.wall_s:.6f}s)"
        )


def aggregate(roots: Iterable[Span]) -> Profile:
    """Aggregate a batch of finished root spans into one :class:`Profile`."""
    prof = Profile()
    for root in roots:
        prof.add(root)
    return prof


def profile_traces(roots: Optional[Sequence[Span]] = None) -> Profile:
    """Profile the given roots, or everything in ``STATE.traces``."""
    if roots is None:
        from .state import STATE

        roots = list(STATE.traces)  # type: ignore[arg-type]
    return aggregate(roots)


__all__ = ["Profile", "ProfileEntry", "aggregate", "profile_traces"]
