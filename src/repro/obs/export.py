"""Standard exporters: Prometheus text exposition and Chrome trace JSON.

Two renderings of what ``repro.obs`` collects, in formats existing
tooling already understands:

* :func:`prometheus_text` — the metrics registry as Prometheus text
  exposition format (version 0.0.4): counters become ``*_total``
  counter families, histograms become summaries (``_count`` / ``_sum``)
  plus ``_min`` / ``_max`` gauges.  :func:`validate_prometheus_text` is
  a strict structural checker (used by tests and CI) so exports stay
  scrape-able without requiring the ``prometheus_client`` package.
* :func:`chrome_trace` — finished span trees as Chrome ``trace_event``
  JSON (complete ``"X"`` events with microsecond timestamps), loadable
  in ``chrome://tracing`` / Perfetto.  :func:`validate_chrome_trace`
  checks the structural schema.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .registry import Metrics
from .sketch import SUMMARY_QUANTILES, QuantileSketch
from .spans import Span

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_VALID_TYPES = frozenset(["counter", "gauge", "histogram", "summary", "untyped"])


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Dotted registry name -> legal Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{namespace}_{cleaned}" if namespace else cleaned
    if not _NAME_RE.match(full):
        full = "_" + full
    return full


def _fmt_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def summary_metric_lines(
    family: str, help_text: str, sketch: QuantileSketch
) -> List[str]:
    """A quantile sketch as one Prometheus summary family.

    Emits ``family{quantile="0.5"}`` … samples plus ``_count`` and
    ``_sum``, the exposition shape for client-computed percentiles.
    Empty sketches still declare the family (count/sum zero) so scrape
    dashboards see the series exists.
    """
    lines = [f"# HELP {family} {help_text}", f"# TYPE {family} summary"]
    for q in SUMMARY_QUANTILES:
        value = sketch.quantile(q)
        if value is None:
            continue
        lines.append(f'{family}{{quantile="{q}"}} {_fmt_value(value)}')
    lines.append(f"{family}_count {sketch.count}")
    lines.append(f"{family}_sum {_fmt_value(sketch.sum)}")
    return lines


def labeled_gauge_lines(
    family: str,
    help_text: str,
    samples: Sequence[Dict[str, object]],
) -> List[str]:
    """One gauge family with labelled samples (exemplar-style series).

    Each sample dict needs a ``"value"``; every other key becomes a
    label (values stringified and escaped).  Used for the exemplar
    trace-id series: the labels carry ``trace_id`` so a scrape links a
    quantile family to a concrete flight-recorder trace.
    """
    lines = [f"# HELP {family} {help_text}", f"# TYPE {family} gauge"]
    for sample in samples:
        labels = {k: str(v) for k, v in sample.items() if k != "value"}
        lines.append(
            f"{family}{_render_labels(labels)} {_fmt_value(sample['value'])}"
        )
    return lines


def _cache_metric_lines(namespace: str) -> List[str]:
    """Perf-cache hit/miss/eviction counters as exposition lines.

    Mirrors :func:`repro.perf.cache_stats` so ``/metrics`` and ``python
    -m repro export`` report cache behaviour next to the obs registry
    (the always-on per-table books, not the obs mirror counters, so the
    numbers are exact even when obs was enabled mid-run).  Imported
    lazily — ``repro.perf`` depends on ``repro.obs``, not vice versa.
    """
    from ..perf import STATE as _PERF

    lines: List[str] = []
    enabled_family = sanitize_metric_name("cache.enabled", namespace)
    lines.append(f"# HELP {enabled_family} repro perf caches switch (1=on)")
    lines.append(f"# TYPE {enabled_family} gauge")
    lines.append(f"{enabled_family} {1 if _PERF.enabled else 0}")
    for table, cache in sorted(_PERF.caches.items()):
        for suffix, value in (
            ("hits", cache.hits),
            ("misses", cache.misses),
            ("evictions", cache.evictions),
        ):
            family = sanitize_metric_name(f"cache.{table}.{suffix}", namespace) + "_total"
            lines.append(f"# HELP {family} repro perf cache {table} {suffix}")
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family} {_fmt_value(value)}")
        size_family = sanitize_metric_name(f"cache.{table}.size", namespace)
        lines.append(f"# HELP {size_family} repro perf cache {table} live entries")
        lines.append(f"# TYPE {size_family} gauge")
        lines.append(f"{size_family} {len(cache)}")
    return lines


def prometheus_text(
    metrics: Optional[Metrics] = None,
    namespace: str = "repro",
    include_caches: bool = True,
) -> str:
    """Render a metrics registry in Prometheus text exposition format.

    With ``include_caches`` (the default) the :mod:`repro.perf` memo
    tables contribute ``<namespace>_cache_<table>_{hits,misses,evictions}_total``
    counters and per-table size gauges, so cache behaviour is scrape-able
    alongside the registry.
    """
    if metrics is None:
        from .state import STATE

        metrics = STATE.metrics
    lines: List[str] = []
    if include_caches:
        lines.extend(_cache_metric_lines(namespace))
    for name, value in metrics.counters().items():
        if include_caches and name.startswith("cache."):
            # the perf books above are the exact source for these; the
            # obs mirror counters would emit duplicate families
            continue
        family = sanitize_metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {family} repro counter {name}")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_fmt_value(value)}")
    for name, value in metrics.gauges().items():
        family = sanitize_metric_name(name, namespace)
        lines.append(f"# HELP {family} repro gauge {name}")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt_value(value)}")
    for name, summary in metrics.histograms().items():
        family = sanitize_metric_name(name, namespace)
        lines.append(f"# HELP {family} repro histogram {name}")
        lines.append(f"# TYPE {family} summary")
        quantiles = summary.get("quantiles") or {}
        for q in SUMMARY_QUANTILES:
            value = quantiles.get(f"p{int(q * 100)}")
            if value is None:
                continue
            lines.append(f'{family}{{quantile="{q}"}} {_fmt_value(value)}')
        lines.append(f"{family}_count {_fmt_value(summary['count'])}")
        lines.append(f"{family}_sum {_fmt_value(summary['total'])}")
        for bound, suffix in ((summary["min"], "min"), (summary["max"], "max")):
            if bound is None:
                continue
            gauge = f"{family}_{suffix}"
            lines.append(f"# HELP {gauge} repro histogram {name} {suffix}")
            lines.append(f"# TYPE {gauge} gauge")
            lines.append(f"{gauge} {_fmt_value(bound)}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_prometheus_text(text: str) -> Dict[str, float]:
    """Strict structural check of a text-exposition document.

    Returns ``{sample_key: value}`` where the key is the bare sample
    name for unlabelled samples and ``name{labels}`` for labelled ones
    (two samples of one family with different labels are distinct, as
    Prometheus treats them).  Raises :class:`ValueError` on the first
    malformed line, unknown TYPE, duplicate (name, labels) pair, or
    sample whose family was not declared with ``# TYPE`` beforehand
    (the ordering Prometheus's own parser enforces).
    """
    samples: Dict[str, float] = {}
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            family = parts[2]
            if not _NAME_RE.match(family):
                raise ValueError(f"line {lineno}: bad metric name {family!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    raise ValueError(f"line {lineno}: bad TYPE {raw!r}")
                if family in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {family!r}")
                typed[family] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value in {raw!r}") from exc
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no preceding # TYPE")
        key = name + (match.group("labels") or "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    return samples


# -- Chrome trace_event ----------------------------------------------------------


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace_events(
    roots: Iterable[Span], pid: int = 1, tid: int = 1
) -> List[Dict[str, object]]:
    """Flatten span trees into complete (``"ph": "X"``) trace events.

    Timestamps are ``perf_counter`` microseconds — arbitrary epoch but
    mutually consistent, which is all the trace viewer needs.
    """
    events: List[Dict[str, object]] = []

    def walk(node: Span) -> None:
        end = node.end if node.end is not None else node.start
        events.append(
            {
                "name": node.name,
                "cat": "repro",
                "ph": "X",
                "ts": node.start * 1e6,
                "dur": max(0.0, end - node.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {key: _json_safe(val) for key, val in node.attrs.items()},
            }
        )
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    return events


def chrome_trace(roots: Optional[Sequence[Span]] = None) -> Dict[str, object]:
    """The Chrome trace-event JSON object for the given (or all) traces."""
    if roots is None:
        from .state import STATE

        roots = list(STATE.traces)  # type: ignore[arg-type]
    return {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "format": "trace_event"},
    }


def write_chrome_trace(
    target: Union[str, Path], roots: Optional[Sequence[Span]] = None
) -> int:
    """Write the trace JSON to ``target``; returns the event count."""
    document = chrome_trace(roots)
    Path(target).write_text(
        json.dumps(document, sort_keys=True, default=str), encoding="utf-8"
    )
    return len(document["traceEvents"])  # type: ignore[arg-type]


def validate_chrome_trace(document: object) -> int:
    """Structural schema check; returns the event count or raises ValueError."""
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {position} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(f"event {position} misses required field {field!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"event {position}: name must be a string")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"event {position}: ts must be a number")
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)):
                raise ValueError(f"event {position}: X event needs numeric dur")
        args = event.get("args", {})
        if not isinstance(args, dict):
            raise ValueError(f"event {position}: args must be an object")
    return len(events)


__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "labeled_gauge_lines",
    "prometheus_text",
    "summary_metric_lines",
    "sanitize_metric_name",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_chrome_trace",
]
