"""Workloads: the paper's catalog example, random generators, and the
blowup families of Section 3.2."""

from .blowup import (
    BLOWUP_ALPHABET,
    linear_adversarial_queries,
    linear_nested_queries,
    pair_queries,
    probe_queries_for_pairs,
)
from .catalog import (
    CATALOG_ALPHABET,
    catalog_type,
    demo_catalog,
    generate_catalog,
    query1,
    query2,
    query3,
    query4,
    query5,
)
from .generators import random_history, random_ps_query, random_tree

__all__ = [
    "BLOWUP_ALPHABET",
    "CATALOG_ALPHABET",
    "catalog_type",
    "demo_catalog",
    "generate_catalog",
    "linear_adversarial_queries",
    "linear_nested_queries",
    "pair_queries",
    "probe_queries_for_pairs",
    "query1",
    "query2",
    "query3",
    "query4",
    "query5",
    "random_history",
    "random_ps_query",
    "random_tree",
]
