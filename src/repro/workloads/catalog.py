"""The paper's running catalog example (Figures 1-9, Examples 2.1/3.1/3.4).

Provides the catalog tree type, Queries 1-5, the demo document whose
query answers are those of Figure 6, and a synthetic catalog generator
for benchmarks.

The demo document extends Figure 6's visible data with the products the
examples reason about implicitly: the Olympus camera (returned by Query
2 but not Query 1, so its price must be ≥ 200), an expensive camera
without pictures (invisible to both queries — the "there may be more
cameras" of Example 3.4), and a non-electronics product.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.conditions import Cond
from ..core.query import PSQuery, pattern, subtree
from ..core.tree import DataTree, NodeSpec, node
from ..core.treetype import TreeType

#: Element names of the catalog schema.
CATALOG_ALPHABET = (
    "catalog",
    "product",
    "name",
    "price",
    "cat",
    "subcat",
    "picture",
)


def catalog_type() -> TreeType:
    """Figure 1's tree type."""
    return TreeType.parse(
        """
        root: catalog
        catalog -> product+
        product -> name price cat picture*
        cat     -> subcat
        """
    )


def query1() -> PSQuery:
    """Query 1 (Figure 2): name, price and subcategories of electronics
    products with price less than $200."""
    return PSQuery(
        pattern(
            "catalog",
            children=[
                pattern(
                    "product",
                    children=[
                        pattern("name"),
                        pattern("price", Cond.lt(200)),
                        pattern("cat", Cond.eq("elec"), [pattern("subcat")]),
                    ],
                )
            ],
        )
    )


def query2() -> PSQuery:
    """Query 2 (Figure 3): name and picture of all cameras (inside
    electronics) whose picture appears in the catalog."""
    return PSQuery(
        pattern(
            "catalog",
            children=[
                pattern(
                    "product",
                    children=[
                        pattern("name"),
                        pattern("picture"),
                        pattern(
                            "cat",
                            Cond.eq("elec"),
                            [pattern("subcat", Cond.eq("camera"))],
                        ),
                    ],
                )
            ],
        )
    )


def query3() -> PSQuery:
    """Query 3 (Figure 4): name, price, pictures of cameras costing less
    than $100 with at least one picture."""
    return PSQuery(
        pattern(
            "catalog",
            children=[
                pattern(
                    "product",
                    children=[
                        pattern("name"),
                        pattern("price", Cond.lt(100)),
                        pattern("picture"),
                        pattern(
                            "cat",
                            Cond.eq("elec"),
                            [pattern("subcat", Cond.eq("camera"))],
                        ),
                    ],
                )
            ],
        )
    )


def query4() -> PSQuery:
    """Query 4 (Figure 5): list all cameras inside electronics."""
    return PSQuery(
        pattern(
            "catalog",
            children=[
                pattern(
                    "product",
                    children=[
                        pattern("name"),
                        pattern(
                            "cat",
                            Cond.eq("elec"),
                            [pattern("subcat", Cond.eq("camera"))],
                        ),
                    ],
                )
            ],
        )
    )


def query5() -> PSQuery:
    """Query 5 (Example 3.4): name and price of cameras costing ≥ $200.

    The price condition is written as ``not (< 200)`` — in the paper's
    value domain (Q only) this is the same as ``>= 200``, and it is the
    exact complement of Query 1's filter, which is what the example's
    reasoning relies on.  (In this library's two-sorted domain a bare
    ``>= 200`` would exclude hypothetical string-valued prices that
    ``not (< 200)`` admits.)
    """
    return PSQuery(
        pattern(
            "catalog",
            children=[
                pattern(
                    "product",
                    children=[
                        pattern("name"),
                        pattern("price", ~Cond.lt(200)),
                        pattern(
                            "cat",
                            Cond.eq("elec"),
                            [pattern("subcat", Cond.eq("camera"))],
                        ),
                    ],
                )
            ],
        )
    )


def _product(
    pid: str,
    name: str,
    price: float,
    cat: str,
    sub: str,
    pictures: Optional[List[str]] = None,
) -> NodeSpec:
    children = [
        node(f"{pid}-name", "name", name),
        node(f"{pid}-price", "price", price),
        node(f"{pid}-cat", "cat", cat, [node(f"{pid}-subcat", "subcat", sub)]),
    ]
    for i, pic in enumerate(pictures or []):
        children.append(node(f"{pid}-pic{i}", "picture", pic))
    return node(pid, "product", 0, children)


def demo_catalog() -> DataTree:
    """The document behind Figure 6's answers (plus the hidden products
    Example 3.4 reasons about)."""
    return DataTree.build(
        node(
            "cat0",
            "catalog",
            0,
            [
                _product("p-canon", "Canon", 120, "elec", "camera", ["c.jpg"]),
                _product("p-nikon", "Nikon", 199, "elec", "camera"),
                _product("p-sony", "Sony", 175, "elec", "cdplayer"),
                _product("p-olympus", "Olympus", 250, "elec", "camera", ["o.jpg"]),
                _product("p-leica", "Leica", 800, "elec", "camera"),
                _product("p-chair", "Chair", 49, "furniture", "seating"),
            ],
        )
    )


#: Categories/subcategories used by the synthetic generator.
_CATEGORIES = {
    "elec": ("camera", "cdplayer", "tv", "laptop"),
    "furniture": ("seating", "tables"),
    "garden": ("tools", "plants"),
}


def generate_catalog(
    n_products: int, seed: int = 0, camera_fraction: float = 0.3
) -> DataTree:
    """A synthetic catalog of ``n_products`` satisfying Figure 1's type.

    Prices are spread over [10, 1000); roughly ``camera_fraction`` of the
    products are electronics cameras; pictures appear on ~60% of
    products (0-3 each).  Deterministic for a given seed.
    """
    rng = random.Random(seed)
    products = []
    for i in range(n_products):
        pid = f"p{i}"
        if rng.random() < camera_fraction:
            cat, sub = "elec", "camera"
        else:
            cat = rng.choice(sorted(_CATEGORIES))
            sub = rng.choice(_CATEGORIES[cat])
        price = rng.randrange(10, 1000)
        pictures = [f"{pid}-{j}.jpg" for j in range(rng.choice((0, 0, 1, 1, 2, 3)))]
        products.append(
            _product(pid, f"Item{i}", price, cat, sub, pictures)
        )
    return DataTree.build(node("cat0", "catalog", 0, products))
