"""Blowup families (Example 3.2 and friends) for experiment E6/E8.

Three query families with empty answers over the alphabet
``{root, a, b}``:

* :func:`pair_queries` — Example 3.2's ``root → {a = i, b = i}``:
  plain Refine doubles per step (2^n specializations), conjunctive
  trees stay linear;
* :func:`linear_nested_queries` — linear path queries with nested
  per-level conditions: Lemma 3.12's benign case (constant after
  minimization);
* :func:`linear_adversarial_queries` — linear queries whose per-level
  conditions are mutually independent, making downstream behaviour
  genuinely context-dependent (see EXPERIMENTS.md E6's discussion of
  the Lemma 3.12 proof sketch).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.conditions import Cond
from ..core.query import PSQuery, linear_query, pattern
from ..core.tree import DataTree

BLOWUP_ALPHABET = ("root", "a", "b")

QueryAnswer = Tuple[PSQuery, DataTree]


def pair_queries(n: int) -> List[QueryAnswer]:
    """Example 3.2: q_i = root → {a = i, b = i}, all answers empty."""
    history = []
    for i in range(1, n + 1):
        query = PSQuery(
            pattern(
                "root",
                children=[pattern("a", Cond.eq(i)), pattern("b", Cond.eq(i))],
            )
        )
        history.append((query, DataTree.empty()))
    return history


def linear_nested_queries(n: int) -> List[QueryAnswer]:
    """Linear root/a(< 10·i)/b queries: nested conditions, empty answers."""
    return [
        (
            linear_query(["root", "a", "b"], [None, Cond.lt(10 * i), None]),
            DataTree.empty(),
        )
        for i in range(1, n + 1)
    ]


def linear_adversarial_queries(n: int) -> List[QueryAnswer]:
    """Linear chains root/a/a/... with one condition per query at its own
    depth plus a final leaf condition: alive-sets are independent per
    level, the hard case for polynomial maintenance."""
    history = []
    depth = n + 1
    for i in range(1, n + 1):
        labels = ["root"] + ["a"] * depth
        conds = [None] * (depth + 1)
        conds[i] = Cond.gt(0)
        conds[depth] = Cond.eq(i)
        history.append((linear_query(labels, conds), DataTree.empty()))
    return history


def probe_queries_for_pairs(n: int) -> List[QueryAnswer]:
    """Example 3.3's rescue: ``root/a`` and ``root/b`` with the values
    actually present (here: none), shrinking the Example 3.2 tree."""
    return [
        (linear_query(["root", "a"]), DataTree.empty()),
        (linear_query(["root", "b"]), DataTree.empty()),
    ]
