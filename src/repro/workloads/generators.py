"""Random workload generators for tests and benchmarks.

Deterministic given a seed.  Trees are generated to *satisfy* a given
tree type; ps-queries are generated to be well-formed over a type
(labels follow the type's parent/child structure, so queries are never
trivially empty by shape).

Every generator takes ``seed`` as either an int (a fresh
``random.Random(seed)`` is created — the historical behaviour, kept
byte-identical) or an explicit :class:`random.Random` instance, so
callers running randomized sweeps can thread one RNG through many calls
without collisions between derived integer seeds.  No generator touches
the module-global ``random`` state.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.conditions import Cond
from ..core.multiplicity import Mult
from ..core.query import PSQuery, QueryNode, pattern, subtree
from ..core.tree import DataTree, NodeSpec, node
from ..core.treetype import TreeType

#: A reproducible randomness source: an integer seed or a live RNG.
Seed = Union[int, random.Random]


def _rng(seed: Seed) -> random.Random:
    """An RNG for ``seed``: pass ints through ``random.Random`` (exactly
    the historical sequences), use ``random.Random`` instances as-is."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_tree(
    tree_type: TreeType,
    seed: Seed = 0,
    max_depth: int = 5,
    max_children_per_entry: int = 2,
    values: Sequence[object] = (0, 1, 2, 5, 10),
) -> DataTree:
    """A random data tree satisfying the type.

    Depth overruns are resolved by preferring minimal counts; types
    whose required chains exceed ``max_depth`` raise ``ValueError``.
    """
    rng = _rng(seed)
    counter = [0]

    def grow(label: str, depth: int) -> NodeSpec:
        if depth > max_depth:
            raise ValueError(f"type requires depth beyond {max_depth}")
        counter[0] += 1
        ident = f"g{counter[0]}"
        atom = tree_type.atom(label)
        children: List[NodeSpec] = []
        for child_label, mult in atom.items():
            low = mult.min_count
            high = mult.max_count
            if high is None:
                high = max(low, max_children_per_entry)
            count = rng.randint(low, high) if depth < max_depth else low
            for _ in range(count):
                children.append(grow(child_label, depth + 1))
        return node(ident, label, rng.choice(list(values)), children)

    root_label = rng.choice(sorted(tree_type.roots))
    return DataTree.build(grow(root_label, 1))


def random_ps_query(
    tree_type: TreeType,
    seed: Seed = 0,
    max_depth: int = 4,
    cond_probability: float = 0.5,
    bar_probability: float = 0.15,
    values: Sequence[object] = (0, 1, 2, 5, 10),
) -> PSQuery:
    """A random well-formed ps-query following the type's structure."""
    rng = _rng(seed)

    def random_cond() -> Cond:
        if rng.random() >= cond_probability:
            return Cond.true()
        value = rng.choice(list(values))
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        if isinstance(value, str) and op not in ("=", "!="):
            op = "="
        return Cond.atom(op, value)

    def grow(label: str, depth: int) -> QueryNode:
        atom = tree_type.atom(label)
        child_labels = list(atom.symbols)
        rng.shuffle(child_labels)
        children: List[QueryNode] = []
        if depth < max_depth and child_labels:
            picked = child_labels[: rng.randint(0, min(2, len(child_labels)))]
            for child_label in picked:
                if rng.random() < bar_probability:
                    children.append(subtree(child_label, random_cond()))
                else:
                    children.append(grow(child_label, depth + 1))
        return pattern(label, random_cond(), children)

    root_label = rng.choice(sorted(tree_type.roots))
    return PSQuery(grow(root_label, 1))


def random_history(
    tree_type: TreeType,
    document: DataTree,
    n_queries: int,
    seed: Seed = 0,
    **query_kwargs,
) -> List[Tuple[PSQuery, DataTree]]:
    """``n_queries`` random queries evaluated on a fixed document.

    With an int seed each query gets the historical derived seed
    ``seed*1000 + i``; with an RNG instance the queries simply continue
    consuming its stream (no derived-seed collisions across calls).
    """
    history = []
    rng = seed if isinstance(seed, random.Random) else None
    for i in range(n_queries):
        query_seed: Seed = rng if rng is not None else seed * 1000 + i
        query = random_ps_query(tree_type, seed=query_seed, **query_kwargs)
        history.append((query, query.evaluate(document)))
    return history
