"""Command-line entry point.

::

    python -m repro demo                      # the paper's catalog scenario
    python -m repro blowup [n]                # Example 3.2 size table
    python -m repro xml FILE                  # parse & pretty-print a document
    python -m repro stats [--trace FILE] [n]  # run the catalog workload under
                                              # observability; dump metrics and
                                              # the span trace tree as JSON (and
                                              # raw events as JSONL to FILE)
"""

from __future__ import annotations

import sys
from pathlib import Path


def _demo() -> int:
    from .mediator.source import InMemorySource
    from .mediator.webhouse import Webhouse
    from .workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        demo_catalog,
        query1,
        query2,
        query3,
        query4,
    )

    tree_type = catalog_type()
    document = demo_catalog()
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    print("asking Query 1 (cheap electronics) and Query 2 (pictured cameras)...")
    webhouse.ask(source, query1())
    webhouse.ask(source, query2())
    print(f"knowledge size: {webhouse.size()}")
    print(f"Query 3 answerable locally: {webhouse.can_answer(query3())}")
    sure, more = webhouse.answer_with_caveats(query4())
    names = sorted(
        sure.value(n) for n in sure.node_ids() if sure.label(n) == "name"
    )
    print(f"cameras known for sure: {names}; may be more: {more}")
    answer, plan = webhouse.complete_and_answer(source, query4())
    names = sorted(
        answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
    )
    print(f"after completion ({len(plan)} local queries): {names}")
    return 0


def _blowup(n: int) -> int:
    from .refine.conjunctive import refine_plus_sequence
    from .refine.refine import refine_sequence
    from .workloads.blowup import BLOWUP_ALPHABET, pair_queries

    print(f"{'n':>3}  {'plain':>8}  {'conjunctive':>11}")
    for i in range(1, n + 1):
        history = pair_queries(i)
        plain = refine_sequence(BLOWUP_ALPHABET, history).size()
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history).size()
        print(f"{i:>3}  {plain:>8}  {conj:>11}")
    return 0


def _stats(args: list[str]) -> int:
    """Run the catalog workload under observability, dump JSON.

    The output document has three top-level keys: ``webhouse`` (the
    warehouse's own :meth:`Webhouse.stats`), ``metrics`` (global
    counters/histograms, including the per-record knowledge-size series)
    and ``trace`` (the span trees).  With ``--trace FILE`` the raw event
    stream is additionally written to FILE as JSON lines.
    """
    import json

    from . import obs
    from .mediator.source import InMemorySource
    from .mediator.webhouse import Webhouse
    from .core.tree import DataTree, node
    from .workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        generate_catalog,
        query1,
        query2,
        query3,
        query4,
    )

    trace_file = None
    args = list(args)
    while "--trace" in args:
        position = args.index("--trace")
        if position + 1 >= len(args):
            print("usage: python -m repro stats [--trace FILE] [n]", file=sys.stderr)
            return 2
        trace_file = args[position + 1]
        del args[position : position + 2]
    if args and not (args[0].isdigit() and int(args[0]) > 0):
        print("usage: python -m repro stats [--trace FILE] [n]", file=sys.stderr)
        return 2
    products = int(args[0]) if args else 10

    ring = obs.RingBufferSink()
    jsonl = obs.JsonLinesSink(trace_file) if trace_file is not None else None
    sink = obs.TeeSink(ring, jsonl) if jsonl is not None else ring

    tree_type = catalog_type()
    document = generate_catalog(products, seed=products)
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)

    obs.reset()
    with obs.capture(sink):
        webhouse.ask(source, query1())
        webhouse.ask(source, query2())
        webhouse.can_answer(query3())
        webhouse.possible_answers(query4())
        # a structured prefix check, so the matching counters light up
        probe = DataTree.build(
            node(
                "cat0",
                "catalog",
                0,
                [node("ghost", "product", 0, [node("gp", "price", 999)])],
            )
        )
        webhouse.is_possible_prefix(probe)
        webhouse.is_certain_prefix(probe)
        webhouse.complete_and_answer(source, query4())
        payload = {
            "workload": {"name": "catalog", "products": products},
            "webhouse": webhouse.stats(),
        }
    payload.update(obs.snapshot())
    if jsonl is not None:
        jsonl.close()
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return 0


def _xml(path: str) -> int:
    from .core.xml_io import tree_from_xml

    tree = tree_from_xml(Path(path).read_text())
    print(tree.pretty())
    return 0


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    command = argv[1]
    if command == "demo":
        return _demo()
    if command == "blowup":
        n = int(argv[2]) if len(argv) > 2 else 8
        return _blowup(n)
    if command == "stats":
        return _stats(argv[2:])
    if command == "xml":
        if len(argv) < 3:
            print("usage: python -m repro xml FILE", file=sys.stderr)
            return 2
        return _xml(argv[2])
    print(f"unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
