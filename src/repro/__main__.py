"""Command-line entry point.

::

    python -m repro demo                      # the paper's catalog scenario
    python -m repro blowup [n]                # Example 3.2 size table
    python -m repro xml FILE                  # parse & pretty-print a document
    python -m repro stats [--trace FILE] [--profile] [--caches] [--slo] [n]
                                              # run the catalog workload under
                                              # observability; dump metrics and
                                              # the span trace tree as JSON (and
                                              # raw events as JSONL to FILE);
                                              # --profile adds the aggregated
                                              # span profile to the document;
                                              # --caches runs with the perf
                                              # caches enabled and adds their
                                              # hit/miss statistics; --slo
                                              # evaluates the workload's trace
                                              # roots against the serve-mode
                                              # SLO objectives
    python -m repro profile [--json] [--top K] [n]
                                              # same workload, rendered as a
                                              # flame-style span profile with
                                              # the top-K hot call paths
    python -m repro explain refine|ask [--json] [n]
                                              # structured EXPLAIN of one
                                              # Refine step (Theorem 3.4) or
                                              # one q(T) evaluation (Thm 3.14)
    python -m repro export [--prometheus [FILE]] [--chrome FILE] [n]
                                              # run the workload and export
                                              # metrics in Prometheus text
                                              # format and/or the trace as
                                              # Chrome trace_event JSON
    python -m repro slo [--objective SPEC]... [--requests N] [--errors N]
                        [--slow-ms MS] [--degrade-on-burn] [n]
                                              # drive the in-process ops
                                              # pipeline (asks + injected 5xx)
                                              # and print the SLO burn-rate
                                              # state, sampler books and
                                              # latency quantiles (/slo JSON);
                                              # --objective overrides the
                                              # defaults, e.g. availability:99
                                              # or latency:95:100ms:lossy
    python -m repro session SUBCOMMAND ...    # durable mediator sessions that
                                              # survive across invocations:
                                              #   create NAME [--products N] [--seed N]
                                              #   list | info NAME | delete NAME
                                              #   ask NAME QUERY | answer NAME QUERY
                                              #   compact NAME
                                              # all accept --root DIR (default
                                              # $REPRO_SESSION_ROOT or
                                              # ./.repro-sessions); QUERY is one
                                              # of q1..q4 or a path like
                                              # 'catalog/product/price[<300]'
    python -m repro serve [--host H] [--port P] [--session NAME]
                          [--root DIR] [--products N] [--seed N]
                          [--shards N] [--backend thread|process]
                          [--no-caches] [--request-log FILE]
                          [--flight-ring N] [--slow-ms MS] [--head-rate R]
                          [--degrade-on-burn] [--once]
                                              # live ops plane (docs/OPS.md):
                                              # /healthz /statusz /metrics
                                              # /profile /sessions /ask?q=...
                                              # /slo /debug/flightrecorder
                                              # /debug/requests /debug/error;
                                              # --once probes every endpoint
                                              # and exits nonzero on failure;
                                              # --shards N > 1 serves a
                                              # sharded webhouse pool
                                              # (docs/CLUSTER.md): /ask takes
                                              # session=KEY (routed) or none
                                              # (fleet-wide union);
                                              # --backend process hosts each
                                              # shard in a worker process
                                              # (multi-core data plane);
                                              # --flight-ring sizes the trace
                                              # ring, --slow-ms the slow-trace
                                              # / latency-SLO threshold,
                                              # --head-rate the healthy-trace
                                              # sampling rate, and
                                              # --degrade-on-burn lets a
                                              # burning latency SLO apply its
                                              # paper remedy to the engine;
                                              # --fault-plan SPEC arms a
                                              # deterministic fault plan
                                              # (docs/ROBUSTNESS.md), also
                                              # swappable live at
                                              # /debug/faults
    python -m repro chaos [--seed N] [--seeds A:B] [--soak SECONDS]
                          [--ops K] [--plan SPEC] [--root DIR] [--json]
                                              # seeded fault-injection chaos
                                              # cycles (docs/ROBUSTNESS.md):
                                              # record/crash/recover under a
                                              # deterministic fault plan,
                                              # asserting every recovery is
                                              # Theorem 3.5-equivalent to a
                                              # fault-free replay; exits
                                              # nonzero (and prints a one-line
                                              # repro) on any violation;
                                              # --soak runs seeds until the
                                              # time budget expires
"""

from __future__ import annotations

import os
import sys
from pathlib import Path


def _demo() -> int:
    from .mediator.source import InMemorySource
    from .mediator.webhouse import Webhouse
    from .workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        demo_catalog,
        query1,
        query2,
        query3,
        query4,
    )

    tree_type = catalog_type()
    document = demo_catalog()
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    print("asking Query 1 (cheap electronics) and Query 2 (pictured cameras)...")
    webhouse.ask(source, query1())
    webhouse.ask(source, query2())
    print(f"knowledge size: {webhouse.size()}")
    print(f"Query 3 answerable locally: {webhouse.can_answer(query3())}")
    sure, more = webhouse.answer_with_caveats(query4())
    names = sorted(
        sure.value(n) for n in sure.node_ids() if sure.label(n) == "name"
    )
    print(f"cameras known for sure: {names}; may be more: {more}")
    answer, plan = webhouse.complete_and_answer(source, query4())
    names = sorted(
        answer.value(n) for n in answer.node_ids() if answer.label(n) == "name"
    )
    print(f"after completion ({len(plan)} local queries): {names}")
    return 0


def _blowup(n: int) -> int:
    from .refine.conjunctive import refine_plus_sequence
    from .refine.refine import refine_sequence
    from .workloads.blowup import BLOWUP_ALPHABET, pair_queries

    print(f"{'n':>3}  {'plain':>8}  {'conjunctive':>11}")
    for i in range(1, n + 1):
        history = pair_queries(i)
        plain = refine_sequence(BLOWUP_ALPHABET, history).size()
        conj = refine_plus_sequence(BLOWUP_ALPHABET, history).size()
        print(f"{i:>3}  {plain:>8}  {conj:>11}")
    return 0


def _scripted_session(products: int):
    """The scripted catalog webhouse session every diagnostics command
    runs: acquisition, local answering, prefix checks, completion.

    Must run under an enabled obs capture; returns the webhouse (its
    stats and the global obs state carry the results).
    """
    from .mediator.source import InMemorySource
    from .mediator.webhouse import Webhouse
    from .core.tree import DataTree, node
    from .workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        generate_catalog,
        query1,
        query2,
        query3,
        query4,
    )

    tree_type = catalog_type()
    document = generate_catalog(products, seed=products)
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    webhouse.ask(source, query1())
    webhouse.ask(source, query2())
    webhouse.can_answer(query3())
    webhouse.possible_answers(query4())
    # a structured prefix check, so the matching counters light up
    probe = DataTree.build(
        node(
            "cat0",
            "catalog",
            0,
            [node("ghost", "product", 0, [node("gp", "price", 999)])],
        )
    )
    webhouse.is_possible_prefix(probe)
    webhouse.is_certain_prefix(probe)
    webhouse.complete_and_answer(source, query4())
    return webhouse


def _take_flag(args: list[str], flag: str) -> bool:
    if flag in args:
        args.remove(flag)
        return True
    return False


def _take_value(args: list[str], flag: str) -> "str | None":
    """Pop ``flag VALUE``; raises ValueError when the value is missing."""
    if flag not in args:
        return None
    position = args.index(flag)
    if position + 1 >= len(args):
        raise ValueError(f"{flag} needs a value")
    value = args[position + 1]
    del args[position : position + 2]
    return value


def _positional_products(args: list[str], usage: str) -> int:
    if any(a.startswith("-") for a in args) or len(args) > 1:
        raise ValueError(usage)
    if args and not (args[0].isdigit() and int(args[0]) > 0):
        raise ValueError(usage)
    return int(args[0]) if args else 10


def _stats(args: list[str]) -> int:
    """Run the catalog workload under observability, dump JSON.

    The output document has three top-level keys: ``webhouse`` (the
    warehouse's own :meth:`Webhouse.stats`), ``metrics`` (global
    counters/histograms, including the per-record knowledge-size series)
    and ``trace`` (the span trees).  With ``--trace FILE`` the raw event
    stream is additionally written to FILE as JSON lines; with
    ``--profile`` the aggregated span profile is added under
    ``profile``.  With ``--caches`` the workload runs with the
    :mod:`repro.perf` caches enabled and their hit/miss statistics are
    added under ``caches``.  With ``--slo`` every finished trace root is
    replayed into an :class:`~repro.obs.slo.SloEngine` against the
    serve-mode default objectives and the burn-rate snapshot is added
    under ``slo``.
    """
    import json
    from contextlib import nullcontext

    from . import obs
    from . import perf

    usage = "usage: python -m repro stats [--trace FILE] [--profile] [--caches] [--slo] [n]"
    args = list(args)
    try:
        with_profile = _take_flag(args, "--profile")
        with_caches = _take_flag(args, "--caches")
        with_slo = _take_flag(args, "--slo")
        trace_file = _take_value(args, "--trace")
        products = _positional_products(args, usage)
    except ValueError:
        print(usage, file=sys.stderr)
        return 2

    ring = obs.RingBufferSink()
    jsonl = obs.JsonLinesSink(trace_file) if trace_file is not None else None
    sink = obs.TeeSink(ring, jsonl) if jsonl is not None else ring

    obs.reset()
    if with_caches:
        perf.clear_caches()
    with obs.capture(sink), (perf.cached() if with_caches else nullcontext()):
        webhouse = _scripted_session(products)
        payload = {
            "workload": {"name": "catalog", "products": products},
            "webhouse": webhouse.stats(),
        }
        if with_caches:
            payload["caches"] = perf.cache_stats()
    payload.update(obs.snapshot())
    if with_profile:
        payload["profile"] = obs.profile_traces(obs.traces()).to_dict()
    if with_slo:
        from .obs.slo import SloEngine, default_objectives

        engine = SloEngine(default_objectives())
        for root in obs.traces():
            if root.end is not None:
                engine.record(200, max(0.0, root.end - root.start))
        payload["slo"] = engine.snapshot()
    if jsonl is not None:
        jsonl.close()
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return 0


def _profile_cmd(args: list[str]) -> int:
    """Aggregated span profile of the scripted workload."""
    import json

    from . import obs

    usage = "usage: python -m repro profile [--json] [--top K] [n]"
    args = list(args)
    try:
        as_json = _take_flag(args, "--json")
        top_text = _take_value(args, "--top")
        top = int(top_text) if top_text is not None else 10
        products = _positional_products(args, usage)
    except ValueError:
        print(usage, file=sys.stderr)
        return 2

    obs.reset()
    with obs.capture():
        _scripted_session(products)
        prof = obs.profile()
    if as_json:
        print(json.dumps(prof.to_dict(), indent=2, sort_keys=True, default=str))
        return 0
    print(f"# span profile — catalog workload, {products} products")
    print(prof.render())
    print(f"\n# top {top} hot paths (by self time)")
    for path, calls, total, self_s in prof.hot_paths(top):
        print(f"  {self_s:>9.6f}s self  {total:>9.6f}s total  x{calls:<4} {' > '.join(path)}")
    return 0


def _explain_cmd(args: list[str]) -> int:
    """EXPLAIN one Refine step or one q(T) evaluation."""
    from . import obs
    from .refine.refine import refine_sequence
    from .workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        generate_catalog,
        query1,
        query2,
        query4,
    )

    usage = "usage: python -m repro explain {refine|ask} [--json] [n]"
    args = list(args)
    try:
        as_json = _take_flag(args, "--json")
        if not args or args[0] not in ("refine", "ask"):
            raise ValueError(usage)
        operation = args.pop(0)
        products = _positional_products(args, usage)
    except ValueError:
        print(usage, file=sys.stderr)
        return 2

    document = generate_catalog(products, seed=products)
    history = [(query1(), query1().evaluate(document))]
    if operation == "refine":
        # the refine step needs a refinable (not type-intersected) operand
        knowledge = refine_sequence(CATALOG_ALPHABET, history)
        explanation, _ = obs.explain_refine(
            knowledge, query2(), query2().evaluate(document), CATALOG_ALPHABET
        )
    else:
        knowledge = refine_sequence(
            CATALOG_ALPHABET, history, tree_type=catalog_type()
        )
        explanation, _ = obs.explain_ask(knowledge, query4())
    print(explanation.to_json() if as_json else explanation.render())
    return 0


def _export_cmd(args: list[str]) -> int:
    """Run the scripted workload, export Prometheus text / Chrome trace.

    ``--prometheus`` without a FILE writes the text exposition to
    stdout; with a FILE it writes there.  ``--chrome FILE`` writes the
    trace-event JSON.  With neither flag, defaults to ``--prometheus``.
    """
    from pathlib import Path as _Path

    from . import obs

    usage = "usage: python -m repro export [--prometheus [FILE]] [--chrome FILE] [n]"
    args = list(args)
    try:
        chrome_file = _take_value(args, "--chrome")
        prometheus = _take_flag(args, "--prometheus")
        prometheus_file = None
        # optional FILE operand directly after --prometheus
        if prometheus and args and not args[0].isdigit():
            prometheus_file = args.pop(0)
        products = _positional_products(args, usage)
    except ValueError:
        print(usage, file=sys.stderr)
        return 2
    if not prometheus and chrome_file is None:
        prometheus = True

    obs.reset()
    with obs.capture():
        _scripted_session(products)
        roots = obs.traces()
        text = obs.prometheus_text()
    if prometheus:
        obs.validate_prometheus_text(text)
        if prometheus_file is not None:
            _Path(prometheus_file).write_text(text, encoding="utf-8")
            print(f"wrote prometheus text exposition to {prometheus_file}", file=sys.stderr)
        else:
            print(text, end="")
    if chrome_file is not None:
        count = obs.write_chrome_trace(chrome_file, roots)
        print(f"wrote {count} trace events to {chrome_file}", file=sys.stderr)
    return 0


def _parse_query_spec(spec: str):
    """``q1``..``q4`` or a slash path like ``catalog/product/price[<300]``.

    Thin wrapper over :func:`repro.core.parsing.parse_query_spec` with
    the catalog workload's named queries bound (the ops server binds
    the same map for its ``/ask`` endpoint).
    """
    from .core.parsing import parse_query_spec
    from .workloads import catalog

    named = {
        "q1": catalog.query1,
        "q2": catalog.query2,
        "q3": catalog.query3,
        "q4": catalog.query4,
    }
    return parse_query_spec(spec, named=named)


def _slo_cmd(args: list[str]) -> int:
    """Drive the in-process ops pipeline; print the ``/slo`` document.

    Builds the demo webhouse and an unbound :class:`OpsServer`, pushes
    ``--requests`` local asks (cycling q1..q4) plus ``--errors``
    injected 5xx through the same dispatch / finish_request pipeline
    the HTTP handler runs, then prints the ``/slo`` JSON.  With the
    default burn thresholds ``--errors 25`` is enough to trip the
    availability objective's burn alert.  ``--objective`` (repeatable)
    replaces the default objectives with parsed specs.
    """
    from . import obs
    from .obs.slo import Objective, SloEngine
    from .ops import OpsServer, demo_webhouse
    from .ops.server import drive_request

    usage = (
        "usage: python -m repro slo [--objective SPEC]... [--requests N] "
        "[--errors N] [--slow-ms MS] [--degrade-on-burn] [n]"
    )
    args = list(args)
    try:
        degrade = _take_flag(args, "--degrade-on-burn")
        specs: list[str] = []
        while True:
            spec = _take_value(args, "--objective")
            if spec is None:
                break
            specs.append(spec)
        requests = int(_take_value(args, "--requests") or "40")
        errors = int(_take_value(args, "--errors") or "0")
        slow_ms = float(_take_value(args, "--slow-ms") or "250")
        if requests < 0 or errors < 0 or slow_ms <= 0:
            raise ValueError(usage)
        products = _positional_products(args, usage)
        objectives = [Objective.parse(spec) for spec in specs]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2

    obs.enable(obs.RingBufferSink())
    webhouse, source = demo_webhouse(products)
    server = OpsServer(
        webhouse,
        source=source,
        slow_s=slow_ms / 1000.0,
        degrade_on_burn=degrade,
        slo=SloEngine(objectives) if objectives else None,
    )
    queries = ("q1", "q2", "q3", "q4")
    for index in range(requests):
        drive_request(server, f"/ask?q={queries[index % len(queries)]}")
    for _ in range(errors):
        drive_request(server, "/debug/error")
    status, body = drive_request(server, "/slo")
    print(body, end="")
    return 0 if status == 200 else 1


def _session_cmd(args: list[str]) -> int:
    """Durable sessions over the catalog workload (see docs/PERSISTENCE.md).

    The session's meta remembers the synthetic source (``--products``,
    ``--seed``), so every later invocation regenerates the same document
    and the journaled knowledge stays consistent with it.
    """
    import json

    from .mediator.source import InMemorySource
    from .mediator.webhouse import Webhouse
    from .store import SessionStore, StoreError
    from .workloads.catalog import CATALOG_ALPHABET, catalog_type, generate_catalog

    usage = (
        "usage: python -m repro session "
        "{create|list|ask|answer|compact|info|delete} [NAME] [QUERY] "
        "[--root DIR] [--products N] [--seed N]"
    )
    args = list(args)

    def take_option(flag: str, default: str | None) -> str | None:
        if flag not in args:
            return default
        position = args.index(flag)
        if position + 1 >= len(args):
            raise ValueError(f"{flag} needs a value")
        value = args[position + 1]
        del args[position : position + 2]
        return value

    try:
        root = take_option("--root", None) or os.environ.get(
            "REPRO_SESSION_ROOT", ".repro-sessions"
        )
        products = int(take_option("--products", "10") or "10")
        seed = int(take_option("--seed", "0") or "0")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    if not args:
        print(usage, file=sys.stderr)
        return 2
    subcommand, positional = args[0], args[1:]
    store = SessionStore(root)

    def open_source(webhouse: Webhouse) -> InMemorySource:
        workload = (webhouse.session.meta.get("extra") or {}).get("workload", {})
        document = generate_catalog(
            int(workload.get("products", products)),
            seed=int(workload.get("seed", seed)),
        )
        return InMemorySource(document, catalog_type())

    try:
        if subcommand == "create":
            if len(positional) != 1:
                raise ValueError("create needs exactly one session NAME")
            session = store.create(
                positional[0],
                CATALOG_ALPHABET,
                tree_type=catalog_type(),
                extra={"workload": {"name": "catalog", "products": products, "seed": seed}},
            )
            session.close()
            print(
                json.dumps(
                    {"created": positional[0], "root": store.root,
                     "products": products, "seed": seed}
                )
            )
            return 0
        if subcommand == "list":
            names = store.list_sessions()
            print(json.dumps({"root": store.root, "sessions": names}))
            return 0
        if subcommand == "delete":
            if len(positional) != 1:
                raise ValueError("delete needs exactly one session NAME")
            store.delete(positional[0])
            print(json.dumps({"deleted": positional[0]}))
            return 0
        if subcommand in ("ask", "answer", "compact", "info"):
            if not positional:
                raise ValueError(f"{subcommand} needs a session NAME")
            name = positional[0]
            webhouse = Webhouse.resume(store, name)
            try:
                if subcommand == "ask":
                    if len(positional) != 2:
                        raise ValueError("ask needs NAME and QUERY")
                    query = _parse_query_spec(positional[1])
                    answer = webhouse.ask(open_source(webhouse), query)
                    print(
                        json.dumps(
                            {
                                "session": name,
                                "answer_nodes": len(answer),
                                "knowledge_size": webhouse.size(),
                                "queries_recorded": len(webhouse.history),
                            }
                        )
                    )
                elif subcommand == "answer":
                    if len(positional) != 2:
                        raise ValueError("answer needs NAME and QUERY")
                    query = _parse_query_spec(positional[1])
                    sure, may_have_more = webhouse.answer_with_caveats(query)
                    print(
                        json.dumps(
                            {
                                "session": name,
                                "answerable": not may_have_more,
                                "sure_nodes": len(sure),
                                "may_have_more": may_have_more,
                                "queries_recorded": len(webhouse.history),
                            }
                        )
                    )
                elif subcommand == "compact":
                    webhouse.checkpoint()
                    print(json.dumps({"session": name, **webhouse.session.info()}))
                else:  # info
                    print(
                        json.dumps(
                            {**webhouse.session.info(), **webhouse.stats()},
                            sort_keys=True,
                        )
                    )
            finally:
                webhouse.detach()
            return 0
        print(f"unknown session subcommand {subcommand!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _serve_cmd(args: list[str]) -> int:
    """The live ops plane: serve a webhouse over HTTP (docs/OPS.md).

    Without ``--session`` an in-memory catalog webhouse is hosted
    (``--products``/``--seed`` shape it); with ``--session NAME`` the
    named durable session is resumed and held (its writer lock is taken
    for the lifetime of the server).  With ``--shards N`` (N > 1) a
    sharded webhouse pool is served instead (docs/CLUSTER.md): ``/ask``
    routes ``session=KEY`` through the consistent-hash ring and answers
    fleet-wide without one.  ``--backend process`` hosts each shard in
    its own spawned worker process (real CPU parallelism; implies
    cluster mode even at ``--shards 1``).  ``--once`` starts the
    server, probes every endpoint from inside the process — plus a
    process-backend spawn/route probe, catching wire-format drift —
    prints the report and exits nonzero on any failure, no sleep/poll
    loop needed.
    """
    import json

    from . import obs
    from . import perf
    from .ops import (
        FlightRecorder,
        OpsServer,
        RequestLog,
        demo_cluster,
        demo_webhouse,
        hosted_webhouse,
        self_check,
    )
    from .cluster import BACKENDS
    from .ops.server import _CLUSTER_PROBES, proc_self_check
    from .store import SessionStore, StoreError

    usage = (
        "usage: python -m repro serve [--host H] [--port P] [--session NAME] "
        "[--root DIR] [--products N] [--seed N] [--shards N] "
        "[--backend thread|process] [--no-caches] "
        "[--request-log FILE] [--flight-ring N] [--slow-ms MS] "
        "[--head-rate R] [--degrade-on-burn] [--fault-plan SPEC] [--once]"
    )
    args = list(args)
    try:
        once = _take_flag(args, "--once")
        no_caches = _take_flag(args, "--no-caches")
        degrade_on_burn = _take_flag(args, "--degrade-on-burn")
        host = _take_value(args, "--host") or "127.0.0.1"
        port = int(_take_value(args, "--port") or "0")
        session_name = _take_value(args, "--session")
        root = _take_value(args, "--root") or os.environ.get(
            "REPRO_SESSION_ROOT", ".repro-sessions"
        )
        products = int(_take_value(args, "--products") or "8")
        seed = _take_value(args, "--seed")
        shards = int(_take_value(args, "--shards") or "1")
        backend = _take_value(args, "--backend") or "thread"
        log_path = _take_value(args, "--request-log")
        flight_ring = int(_take_value(args, "--flight-ring") or "64")
        slow_ms = float(_take_value(args, "--slow-ms") or "250")
        head_rate = float(_take_value(args, "--head-rate") or "1.0")
        fault_spec = _take_value(args, "--fault-plan")
        if args:
            raise ValueError(usage)
        if shards < 1:
            raise ValueError("--shards needs a positive count")
        if backend not in BACKENDS:
            raise ValueError(f"--backend must be one of {'|'.join(BACKENDS)}")
        if flight_ring < 1:
            raise ValueError("--flight-ring needs a positive capacity")
        if slow_ms <= 0:
            raise ValueError("--slow-ms needs a positive threshold")
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError("--head-rate must be within [0, 1]")
        cluster_mode = shards > 1 or backend == "process"
        if cluster_mode and session_name is not None:
            raise ValueError(
                "--session hosts one durable session; it cannot be combined "
                "with --shards/--backend process (cluster sessions are "
                "keyed per request)"
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2

    fault_plan = None
    if fault_spec is not None:
        from .faults.plan import FaultError, FaultPlan

        try:
            fault_plan = FaultPlan.parse(fault_spec)
        except FaultError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    obs.enable(obs.RingBufferSink())
    if not no_caches:
        perf.enable_caches()
    store = SessionStore(root)
    webhouse = cluster = None
    try:
        if cluster_mode:
            cluster, source = demo_cluster(
                shards,
                products,
                seed=None if seed is None else int(seed),
                backend=backend,
            )
        elif session_name is not None:
            webhouse, source = hosted_webhouse(store, session_name)
        else:
            webhouse, source = demo_webhouse(
                products, seed=None if seed is None else int(seed)
            )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server = OpsServer(
        webhouse,
        source=source,
        store=store,
        session_name=session_name,
        host=host,
        port=port,
        recorder=FlightRecorder(capacity=flight_ring),
        request_log=RequestLog(path=log_path),
        cluster=cluster,
        slow_s=slow_ms / 1000.0,
        head_rate=head_rate,
        degrade_on_burn=degrade_on_burn,
        fault_plan=fault_plan,
    )
    try:
        if once:
            server.start()
            ok, report = self_check(
                server.url, probes=_CLUSTER_PROBES if cluster is not None else None
            )
            # always exercise the process backend too (spawn 2 workers,
            # route one /ask, check shard attribution) — CI's guard
            # against wire-format drift, even when serving threads
            proc_ok, proc_report = proc_self_check()
            ok = ok and proc_ok
            report = list(report) + list(proc_report)
            print(
                json.dumps(
                    {"url": server.url, "ok": ok, "probes": report},
                    indent=2,
                    sort_keys=True,
                )
            )
            server.stop()
            return 0 if ok else 1
        server._bind()
        mode = (
            f"{shards} shards, {backend} backend"
            if cluster is not None
            else "single engine"
        )
        print(
            f"repro ops plane listening on {server.url} ({mode})", file=sys.stderr
        )
        print(
            f"  endpoints: /healthz /statusz /metrics /profile /sessions "
            f"/ask?q=q1 /slo /debug/flightrecorder /debug/requests /debug/faults",
            file=sys.stderr,
        )
        server.serve_forever()
        return 0
    finally:
        if session_name is not None and webhouse is not None:
            webhouse.detach()
        if cluster is not None:
            cluster.close()


def _chaos_cmd(args: list[str]) -> int:
    """Seeded chaos cycles (docs/ROBUSTNESS.md): crash-recover under a
    deterministic fault plan, checking Theorem 3.5 equivalence after
    every recovery.  Exits 1 and prints each failing cycle's one-line
    repro command on any violation — paste it to replay the exact
    schedule.  ``--soak SECONDS`` keeps consuming seeds until the time
    budget runs out (the CI chaos-smoke job runs a 30s soak).
    """
    import json
    import tempfile
    import time as _time

    from .faults.chaos import run_chaos_cycle
    from .faults.plan import FaultError, FaultPlan

    usage = (
        "usage: python -m repro chaos [--seed N] [--seeds A:B] "
        "[--soak SECONDS] [--ops K] [--plan SPEC] [--root DIR] [--json]"
    )
    args = list(args)
    try:
        as_json = _take_flag(args, "--json")
        seed = _take_value(args, "--seed")
        seeds = _take_value(args, "--seeds")
        soak = _take_value(args, "--soak")
        ops = int(_take_value(args, "--ops") or "8")
        plan_spec = _take_value(args, "--plan")
        root = _take_value(args, "--root")
        if args:
            raise ValueError(usage)
        if sum(x is not None for x in (seed, seeds, soak)) > 1:
            raise ValueError("--seed, --seeds and --soak are mutually exclusive")
        if seeds is not None and ":" not in seeds:
            raise ValueError("--seeds wants a range like 0:50")
        if plan_spec is not None:
            FaultPlan.parse(plan_spec)  # validate early, reuse per cycle below
    except (ValueError, FaultError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2

    def cycle(seed_value: int, directory: str):
        plan = None if plan_spec is None else FaultPlan.parse(plan_spec)
        return run_chaos_cycle(seed_value, directory, ops=ops, plan=plan)

    results = []
    with tempfile.TemporaryDirectory() as tmp:
        directory = root if root is not None else tmp
        if seed is not None:
            results.append(cycle(int(seed), directory))
        elif seeds is not None:
            low, high = (int(part) for part in seeds.split(":", 1))
            for value in range(low, high):
                results.append(cycle(value, directory))
        elif soak is not None:
            budget = float(soak)
            started = _time.monotonic()
            value = 0
            while _time.monotonic() - started < budget:
                results.append(cycle(value, directory))
                value += 1
        else:
            results.extend(cycle(value, directory) for value in range(10))

    failures = [result for result in results if not result.ok]
    summary = {
        "cycles": len(results),
        "records": sum(r.records for r in results),
        "crashes": sum(r.crashes for r in results),
        "recoveries": sum(r.recoveries for r in results),
        "faults_fired": sum(r.faults_fired for r in results),
        "equivalence_checks": sum(r.checks for r in results),
        "violations": sum(len(r.violations) for r in results),
        "failures": [r.to_json() for r in failures],
        "ok": not failures,
    }
    if as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"chaos: {summary['cycles']} cycles, {summary['records']} records, "
            f"{summary['crashes']} crashes, {summary['faults_fired']} faults "
            f"fired, {summary['equivalence_checks']} equivalence checks, "
            f"{summary['violations']} violations"
        )
        for result in failures:
            print(f"FAIL seed={result.seed}: {result.violations[0]}")
            print(f"  repro: {result.repro()}")
    return 0 if not failures else 1


def _xml(path: str) -> int:
    from .core.xml_io import tree_from_xml

    tree = tree_from_xml(Path(path).read_text())
    print(tree.pretty())
    return 0


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    command = argv[1]
    if command == "demo":
        return _demo()
    if command == "blowup":
        n = int(argv[2]) if len(argv) > 2 else 8
        return _blowup(n)
    if command == "stats":
        return _stats(argv[2:])
    if command == "profile":
        return _profile_cmd(argv[2:])
    if command == "explain":
        return _explain_cmd(argv[2:])
    if command == "export":
        return _export_cmd(argv[2:])
    if command == "slo":
        return _slo_cmd(argv[2:])
    if command == "session":
        return _session_cmd(argv[2:])
    if command == "serve":
        return _serve_cmd(argv[2:])
    if command == "chaos":
        return _chaos_cmd(argv[2:])
    if command == "xml":
        if len(argv) < 3:
            print("usage: python -m repro xml FILE", file=sys.stderr)
            return 2
        return _xml(argv[2])
    print(f"unknown command {command!r}", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
