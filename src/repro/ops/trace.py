"""Request-scoped trace context for the ops plane.

One HTTP request (or one unit of background work) gets one **trace**: a
generated ``trace_id`` bound to the current ``contextvars`` context plus
a root span covering the whole request.  While the trace is open, every
span closed in the same context — Refine steps, matchings, fixpoint
rounds deep inside the engine — carries the trace id in its attributes
and sink events (see :mod:`repro.obs.spans`), so a slow ``/ask`` can be
correlated with its engine spans after the fact.

Because both the span stack and the trace id live in ``ContextVar``s,
concurrent requests served by different threads can never adopt each
other's spans or ids: each handler thread starts from an empty context.

Typical usage (what :mod:`repro.ops.server` does per request)::

    with request_trace("ops.request", method="GET", path="/ask") as t:
        ...                       # handle the request
        t.annotate(status=200)    # attach response attributes
    t.trace_id                    # -> "a3f9..." (response header)
    t.root                        # -> the finished root Span (or None
                                  #    when observability is disabled)
"""

from __future__ import annotations

import threading
import uuid
from typing import Dict, Optional

from ..obs.spans import Span, reset_trace_id, set_trace_id, span

#: Monotone per-process counter folded into generated ids so that ids
#: stay unique even if the clock or uuid source misbehaves.
_SEQ = 0
_SEQ_LOCK = threading.Lock()


def new_trace_id() -> str:
    """A fresh, process-unique, url-safe trace id (16 hex + sequence)."""
    global _SEQ
    with _SEQ_LOCK:
        _SEQ += 1
        seq = _SEQ
    return f"{uuid.uuid4().hex[:16]}-{seq:06x}"


class TraceHandle:
    """What :class:`request_trace` yields: the id plus the root span."""

    __slots__ = ("trace_id", "root")

    def __init__(self, trace_id: str, root: Optional[Span]):
        self.trace_id = trace_id
        self.root = root

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the trace root (no-op when disabled)."""
        if self.root is not None:
            self.root.attrs.update(attrs)

    @property
    def errored(self) -> bool:
        """Did the root span (or any descendant) record an error?"""
        if self.root is None:
            return False
        return _subtree_errored(self.root)

    @property
    def duration_s(self) -> Optional[float]:
        """Root span duration in seconds (None while open or disabled)."""
        if self.root is None or self.root.end is None:
            return None
        return max(0.0, self.root.end - self.root.start)

    def __repr__(self) -> str:
        return f"TraceHandle({self.trace_id!r}, root={self.root!r})"


def _subtree_errored(node: Span) -> bool:
    if "error" in node.attrs:
        return True
    return any(_subtree_errored(child) for child in node.children)


class request_trace:
    """Context manager opening one trace: bind an id, open a root span.

    The id is always generated and bound (responses carry a trace id
    even when observability is off); the root span exists only while
    collection is enabled.  The previous trace-id binding is restored on
    exit, so nested traces behave sanely.
    """

    __slots__ = ("_name", "_attrs", "_trace_id", "_token", "_span_cm", "_handle")

    def __init__(self, name: str = "ops.request", trace_id: Optional[str] = None, **attrs: object):
        self._name = name
        self._attrs: Dict[str, object] = dict(attrs)
        self._trace_id = trace_id or new_trace_id()
        self._token = None
        self._span_cm = None
        self._handle: Optional[TraceHandle] = None

    def __enter__(self) -> TraceHandle:
        self._token = set_trace_id(self._trace_id)
        self._span_cm = span(self._name, **self._attrs)
        root = self._span_cm.__enter__()
        self._handle = TraceHandle(self._trace_id, root)
        return self._handle

    def __exit__(self, exc_type: object = None, exc: object = None, tb: object = None) -> bool:
        try:
            assert self._span_cm is not None
            return bool(self._span_cm.__exit__(exc_type, exc, tb))
        finally:
            if self._token is not None:
                reset_trace_id(self._token)


__all__ = ["TraceHandle", "new_trace_id", "request_trace"]
