"""The admin/ops HTTP server: a live surface over a running mediator.

Zero dependencies — stdlib :mod:`http.server` with a threading mixin —
exposing the observability stack while requests are in flight:

==========================  ====================================================
``/healthz``                liveness probe (``ok``)
``/statusz``                engine + growth regime + session info, JSON
``/metrics``                Prometheus text exposition (registry + perf caches)
``/profile``                aggregated span profile, JSON
``/sessions``               durable-store listing (read-only peek, no locks)
``/ask?q=SPEC``             answer a path query over the hosted session
``/slo``                    SLO burn-rate state + sampler books, JSON
``/debug/flightrecorder``   retained traces as Chrome trace-event JSON
``/debug/requests``         recent structured request-log records, JSON
``/debug/error``            fault injection: fail with ``?status=`` (default 500)
==========================  ====================================================

Every request runs under a :class:`~repro.ops.trace.request_trace`: a
fresh ``trace_id`` is bound to the handler thread's context, stamped on
every engine span the request triggers, returned in the
``X-Repro-Trace-Id`` response header, written to the structured request
log, and the finished trace root lands in the
:class:`~repro.ops.flight.FlightRecorder` (errored traces retained
longest).  ``contextvars`` isolation means concurrent requests can never
adopt each other's spans.

Telemetry is always on: every finished request feeds the request log's
per-path quantile sketches and the :class:`~repro.obs.slo.SloEngine`'s
burn-rate windows regardless of the obs enabled flag, and the
:class:`~repro.obs.sample.TraceSampler` decides which traces reach the
flight recorder (errored/shed/slow always kept; healthy traffic subject
to the head rate).  ``/metrics`` adds whole-stream latency quantile
series and trace-id exemplars; with ``degrade_on_burn`` a burning
latency SLO applies its paper remedy to the hosted engine
(``Webhouse.apply_remedy`` — conjunctive / linear / lossy).

The hosted :class:`~repro.mediator.webhouse.Webhouse` is guarded by a
readers-writer lock (:class:`~repro.cluster.locks.RWLock`): local
answering, ``/statusz``, and ``/metrics`` share a read lock, only
``mode=fetch`` ingestion takes the write side — reads never block
reads, and a scrape storm cannot starve ingestion (writer-preferring).
The read endpoints over the obs state (profile, flight recorder) stay
lock-free with respect to the engine.

With ``cluster=`` (or ``repro serve --shards N``) the server fronts a
:class:`~repro.cluster.sharded.ShardedWebhouse` instead: ``/ask`` adds
a ``session=KEY`` parameter routed through the consistent-hash ring,
``/ask`` *without* a session answers fleet-wide (scatter-gather
certain-answer union), ``/statusz`` carries the per-shard rollup,
``/metrics`` exports ``repro_shard_*`` series, and an overloaded shard
surfaces as HTTP 503 with a ``Retry-After`` hint
(:class:`~repro.cluster.admission.ShardOverloaded`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..cluster import RWLock, ShardedWebhouse, ShardOverloaded
from ..core.parsing import parse_query_spec
from ..faults.inject import (
    FaultInjected,
    armed as _faults_armed,
    check_site as _check_site,
    fault_scope,
)
from ..faults.plan import FaultError, FaultPlan
from ..faults.policies import CircuitOpen, DeadlineExceeded
from ..mediator.source import InMemorySource
from ..mediator.webhouse import Webhouse
from ..obs.export import (
    labeled_gauge_lines,
    prometheus_text,
    sanitize_metric_name,
    summary_metric_lines,
)
from ..obs.profile import profile_traces
from ..obs.sample import DEFAULT_SLOW_S, TraceSampler
from ..obs.slo import SloAlert, SloEngine, default_objectives
from ..obs.state import STATE as _OBS
from .flight import FlightRecorder
from .reqlog import ALL_PATHS, RequestLog
from .trace import request_trace

#: JSON content type used by every structured endpoint.
_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"


class OpsError(Exception):
    """A request that cannot be served; carries the HTTP status."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ):
        super().__init__(message)
        self.status = status
        #: Extra response headers (e.g. ``Retry-After`` on a 503).
        self.headers: Dict[str, str] = dict(headers or {})


def _named_queries():
    from ..workloads.catalog import query1, query2, query3, query4

    return {"q1": query1, "q2": query2, "q3": query3, "q4": query4}


def demo_webhouse(products: int = 8, seed: Optional[int] = None) -> Tuple[Webhouse, InMemorySource]:
    """An in-memory catalog webhouse + source for sessionless serving.

    Pre-records Query 1 so the served knowledge is non-trivial from the
    first scrape.
    """
    from ..workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        generate_catalog,
        query1,
    )

    tree_type = catalog_type()
    # the default seed is one where Query 1 has a non-empty answer for
    # every reasonable catalog size, so /ask?q=q1 demos real knowledge
    document = generate_catalog(products, seed=7 if seed is None else seed)
    source = InMemorySource(document, tree_type)
    webhouse = Webhouse(CATALOG_ALPHABET, tree_type=tree_type)
    webhouse.ask(source, query1())
    return webhouse, source


def hosted_webhouse(store, name: str) -> Tuple[Webhouse, InMemorySource]:
    """Resume a durable session for serving, plus its regenerated source.

    The source is rebuilt from the workload parameters the session's
    meta remembers (:meth:`Webhouse.source_hint`), so ``mode=fetch``
    asks answer against the same document the journaled knowledge came
    from.
    """
    from ..workloads.catalog import catalog_type, generate_catalog

    webhouse = Webhouse.resume(store, name)
    hint = webhouse.source_hint()
    document = generate_catalog(
        int(hint.get("products", 10)), seed=int(hint.get("seed", 0))
    )
    return webhouse, InMemorySource(document, catalog_type())


def demo_cluster(
    shards: int = 4,
    products: int = 8,
    seed: Optional[int] = None,
    tenants: int = 0,
    backend: str = "thread",
) -> Tuple[ShardedWebhouse, InMemorySource]:
    """An in-memory sharded catalog pool + source for cluster serving.

    Pre-records Query 1 into session ``"demo"`` (the session the
    self-check probes), plus ``tenants`` extra sessions named
    ``tenant-N`` so several shards hold knowledge from the first
    scrape.  All sessions observe the same generated document — the
    Section 1 scenario — so fleet-wide ``/ask`` unions compose.
    ``backend="process"`` spawns one worker process per shard
    (:mod:`repro.cluster.proc`) instead of sharing this interpreter.
    """
    from ..workloads.catalog import (
        CATALOG_ALPHABET,
        catalog_type,
        generate_catalog,
        query1,
    )

    tree_type = catalog_type()
    document = generate_catalog(products, seed=7 if seed is None else seed)
    source = InMemorySource(document, tree_type)
    cluster = ShardedWebhouse(
        CATALOG_ALPHABET, tree_type=tree_type, shards=shards, backend=backend
    )
    cluster.ask("demo", source, query1())
    for tenant in range(tenants):
        cluster.ask(f"tenant-{tenant}", source, query1())
    return cluster, source


class _OpsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients (each urllib request opens a fresh connection) overflows
    # it, the kernel drops the SYN, and the client stalls a full
    # retransmit timeout (~1s) — visible as second-long outliers under
    # load.  Size the backlog for bursts instead.
    request_queue_size = 128
    ops: "OpsServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1.0"
    protocol_version = "HTTP/1.1"

    # the default handler logs every request to stderr; the ops plane
    # has its own structured request log
    def log_message(self, format: str, *args: object) -> None:
        pass

    def do_GET(self) -> None:
        self._handle()

    def do_HEAD(self) -> None:
        self._handle(send_body=False)

    def _handle(self, send_body: bool = True) -> None:
        ops: "OpsServer" = self.server.ops  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        started = time.perf_counter()
        status = 500
        extras: Dict[str, object] = {}
        extra_headers: Dict[str, str] = {}
        with request_trace(
            "ops.request", method=self.command, path=parsed.path
        ) as handle:
            try:
                status, body, ctype = ops.dispatch(
                    parsed.path, parse_qs(parsed.query), extras
                )
            except OpsError as exc:
                status = exc.status
                body = json.dumps({"error": str(exc), "status": status}) + "\n"
                ctype = _JSON
                extra_headers.update(exc.headers)
                handle.annotate(error=type(exc).__name__, error_message=str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                status = 500
                body = json.dumps({"error": str(exc), "status": 500}) + "\n"
                ctype = _JSON
                handle.annotate(error=type(exc).__name__, error_message=str(exc))
            handle.annotate(status=status)
            payload = body.encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.send_header("X-Repro-Trace-Id", handle.trace_id)
                for name, value in extra_headers.items():
                    self.send_header(name, value)
                self.end_headers()
                if send_body:
                    self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                handle.annotate(error="ClientDisconnected")
        ops.finish_request(
            self.command,
            parsed.path,
            status,
            time.perf_counter() - started,
            handle,
            extras,
        )


class OpsServer:
    """The live ops plane around one hosted :class:`Webhouse` — or, with
    ``cluster=``, a :class:`~repro.cluster.sharded.ShardedWebhouse`.

    ``start()`` binds and serves from a daemon thread (``port=0`` picks
    a free port); ``serve_forever()`` blocks instead.  All endpoint
    handlers run on the server's handler threads.  Single-engine mode
    guards the webhouse with ``self._engine_lock`` (a readers-writer
    lock: local answering and scrapes share, ingestion excludes);
    cluster mode delegates to the pool's per-shard locks and admission
    gates instead — the server itself holds no engine lock.
    """

    def __init__(
        self,
        webhouse: Optional[Webhouse] = None,
        source: Optional[InMemorySource] = None,
        store=None,
        session_name: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder: Optional[FlightRecorder] = None,
        request_log: Optional[RequestLog] = None,
        cluster: Optional[ShardedWebhouse] = None,
        slo: Optional[SloEngine] = None,
        sampler: Optional[TraceSampler] = None,
        slow_s: float = DEFAULT_SLOW_S,
        head_rate: float = 1.0,
        degrade_on_burn: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if webhouse is not None and cluster is not None:
            raise ValueError("pass either webhouse or cluster, not both")
        if webhouse is None and cluster is None:
            webhouse, source = demo_webhouse()
        self.webhouse = webhouse
        self.cluster = cluster
        self.source = source
        self.store = store
        self.session_name = session_name
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.request_log = request_log if request_log is not None else RequestLog()
        self.sampler = (
            sampler
            if sampler is not None
            else TraceSampler(head_rate=head_rate, slow_s=slow_s)
        )
        self.slo = (
            slo if slo is not None else SloEngine(default_objectives(slow_s))
        )
        self.degrade_on_burn = bool(degrade_on_burn)
        #: the installed fault plan; armed per dispatched request (the
        #: handler pool's threads see it through :func:`fault_scope`).
        #: Swap or clear it live via ``/debug/faults``.
        self.fault_plan = fault_plan
        #: remedies actually applied by a burning latency SLO, in order
        self.remedies_applied: list = []
        if self.degrade_on_burn:
            self.slo.set_degrade(self._degrade_for_burn)
        self._engine_lock = RWLock()
        self._host = host
        self._port = port
        self._httpd: Optional[_OpsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._routes = {
            "/healthz": self._handle_healthz,
            "/statusz": self._handle_statusz,
            "/metrics": self._handle_metrics,
            "/profile": self._handle_profile,
            "/sessions": self._handle_sessions,
            "/ask": self._handle_ask,
            "/slo": self._handle_slo,
            "/debug/flightrecorder": self._handle_flightrecorder,
            "/debug/requests": self._handle_requests,
            "/debug/error": self._handle_debug_error,
            "/debug/faults": self._handle_debug_faults,
        }

    # -- lifecycle --------------------------------------------------------------

    def _bind(self) -> None:
        if self._httpd is None:
            self._httpd = _OpsHTTPServer((self._host, self._port), _Handler)
            self._httpd.ops = self
            self._started_at = time.time()

    def start(self) -> "OpsServer":
        """Bind and serve from a daemon thread; returns self."""
        self._bind()
        assert self._httpd is not None
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-ops-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (Ctrl-C to stop)."""
        self._bind()
        assert self._httpd is not None
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.request_log.close()

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("server is not bound; call start()")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def uptime_s(self) -> float:
        return 0.0 if self._started_at is None else time.time() - self._started_at

    # -- request plumbing -------------------------------------------------------

    def dispatch(
        self, path: str, params: Dict[str, list], extras: Dict[str, object]
    ) -> Tuple[int, str, str]:
        """Route one request; returns ``(status, body, content_type)``.

        The installed fault plan (if any) is armed for the duration of
        the request, so injection sites anywhere below — the store, the
        cluster, or the ``ops.request`` site consulted right here — see
        it on this handler thread.  Injected failures surface as real
        HTTP statuses (5xx feeding the SLO burn engine), never as
        unhandled exceptions.
        """
        handler = self._routes.get(path.rstrip("/") or "/")
        if handler is None:
            raise OpsError(404, f"no such endpoint {path!r}")
        try:
            with fault_scope(self.fault_plan):
                if _faults_armed():
                    fault = _check_site("ops.request")
                    if fault is not None and fault.effect == "status":
                        raise OpsError(
                            fault.status, f"injected fault ({fault.rule.spec()})"
                        )
                return handler(params, extras)
        except ShardOverloaded as exc:
            # one hot shard degrades loudly; the rest of the fleet is fine
            raise OpsError(503, str(exc), headers={"Retry-After": "1"})
        except CircuitOpen as exc:
            raise OpsError(
                503, str(exc), headers={"Retry-After": f"{exc.cooldown_s:g}"}
            )
        except DeadlineExceeded as exc:
            raise OpsError(504, str(exc))
        except FaultInjected as exc:
            raise OpsError(500, str(exc))

    def finish_request(
        self,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        handle,
        extras: Dict[str, object],
    ) -> None:
        """Post-response bookkeeping: sampler, flight recorder, request
        log, SLO engine, metrics.

        The sampler decides whether the trace reaches the recorder
        (errored/shed/slow always kept, healthy traffic subject to the
        head rate); the request log's sketches and the SLO burn windows
        are fed unconditionally — always-on telemetry does not depend
        on the obs enabled flag.
        """
        errored = status >= 400 or handle.errored
        reason = self.sampler.decide(
            handle.trace_id, status, duration_s, errored=handle.errored
        )
        if reason is not None:
            self.recorder.record(handle.root, errored=errored, reason=reason)
        self.request_log.log(
            method, path, status, duration_s, handle.trace_id, **extras
        )
        self.slo.record(status, duration_s)
        if _OBS.enabled:
            endpoint = (path.strip("/") or "root").replace("/", ".")
            _OBS.metrics.inc("ops.http.requests")
            _OBS.metrics.inc(f"ops.http.status.{status // 100}xx")
            _OBS.metrics.observe(f"ops.http.{endpoint}.seconds", duration_s)

    def _degrade_for_burn(self, alert: SloAlert) -> None:
        """The SLO degrade hook: apply the alert's paper remedy.

        Wired only when ``degrade_on_burn`` is set.  Single-engine mode
        applies the remedy under the engine write lock; cluster mode
        applies it to every session engine, shard by shard (each
        representation shrinks independently — Theorem 3.5 keeps the
        sessions' knowledge separate).
        """
        remedy = alert.remedy
        if remedy is None:
            return
        if self.cluster is not None:
            for shard in self.cluster._shards:
                with shard.lock.write_locked():
                    for engine in shard.engines.values():
                        engine.apply_remedy(remedy)
        else:
            with self._engine_lock.write_locked():
                self.webhouse.apply_remedy(remedy)
        self.remedies_applied.append(remedy)
        if _OBS.enabled:
            _OBS.metrics.inc(f"ops.slo.degrade.{remedy}")

    # -- endpoints --------------------------------------------------------------

    def _handle_healthz(self, params, extras) -> Tuple[int, str, str]:
        return 200, "ok\n", _TEXT

    def _handle_statusz(self, params, extras) -> Tuple[int, str, str]:
        document = {
            "service": "repro-ops",
            "pid": __import__("os").getpid(),
            "uptime_s": round(self.uptime_s, 3),
            "session_name": self.session_name,
            "observability_enabled": _OBS.enabled,
            "caches": self._cache_summary(),
            "flight_recorder": self.recorder.stats(),
            "requests_logged": self.request_log.logged,
            "sampler": self.sampler.stats(),
            "slo_burning": self.slo.burning(),
        }
        if self.cluster is not None:
            document["cluster"] = self.cluster.stats_all()
            document["shards"] = self.cluster.shards
        else:
            with self._engine_lock.read_locked():
                stats = self.webhouse.stats()
                session = self.webhouse.session
                session_info = session.info() if session is not None else None
            document.update(
                webhouse=stats,
                engine=stats["engine"],
                growth_regime=stats["growth_regime"],
                session=session_info,
            )
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON

    def _cache_summary(self) -> Dict[str, object]:
        from .. import perf

        stats = perf.cache_stats()
        return {
            "enabled": stats["enabled"],
            "hits": sum(t["hits"] for t in stats["tables"].values()),
            "misses": sum(t["misses"] for t in stats["tables"].values()),
            "evictions": sum(t["evictions"] for t in stats["tables"].values()),
        }

    def _handle_metrics(self, params, extras) -> Tuple[int, str, str]:
        if _OBS.enabled:
            # point-in-time gauges refreshed per scrape
            _OBS.metrics.set_gauge("ops.uptime_seconds", round(self.uptime_s, 3))
            if self.cluster is not None:
                rollup = self.cluster.stats_all()
                _OBS.metrics.set_gauge("cluster.shards", rollup["shards"])
                _OBS.metrics.set_gauge("cluster.sessions", rollup["sessions"])
                _OBS.metrics.set_gauge(
                    "cluster.knowledge_size", rollup["knowledge_size"]
                )
                for stats in rollup["per_shard"]:
                    index = stats["shard"]
                    _OBS.metrics.set_gauge(
                        f"shard.{index}.sessions", stats["sessions"]
                    )
                    _OBS.metrics.set_gauge(
                        f"shard.{index}.knowledge_size", stats["knowledge_size"]
                    )
                    _OBS.metrics.set_gauge(
                        f"shard.{index}.queries_recorded",
                        stats["queries_recorded"],
                    )
                    admission = stats["admission"]
                    _OBS.metrics.set_gauge(
                        f"shard.{index}.in_flight", admission["in_flight"]
                    )
                    _OBS.metrics.set_gauge(
                        f"shard.{index}.admitted", admission["admitted"]
                    )
                    _OBS.metrics.set_gauge(f"shard.{index}.shed", admission["shed"])
                    worker = stats.get("worker")
                    if worker is not None:
                        _OBS.metrics.set_gauge(
                            f"shard.{index}.worker_restarts",
                            worker.get("restarts", 0),
                        )
            else:
                with self._engine_lock.read_locked():
                    _OBS.metrics.set_gauge(
                        "webhouse.knowledge_size_current", self.webhouse.size()
                    )
                    _OBS.metrics.set_gauge(
                        "webhouse.queries_recorded", len(self.webhouse.history)
                    )
        return 200, prometheus_text() + self._telemetry_lines(), _PROM

    def _telemetry_lines(self) -> str:
        """The always-on telemetry series appended to ``/metrics``.

        Whole-stream latency quantile summaries per request path (from
        the request log's sketches), trace-id exemplars, sampler and SLO
        books, and — in cluster mode — fleet latency quantiles merged
        from the per-shard sketches (``repro_cluster_ask_p99`` etc.).
        Everything here passes :func:`validate_prometheus_text`.
        """
        lines: list = []
        for family, sketch in sorted(self.request_log.latency_families().items()):
            if not sketch.count:
                continue
            token = family.strip("/").replace("/", ".") if family != ALL_PATHS else "all"
            name = sanitize_metric_name(f"http.{token or 'root'}.latency.seconds")
            lines.extend(
                summary_metric_lines(
                    name, f"whole-stream request latency for {family}", sketch
                )
            )
        exemplars = self.request_log.exemplars()
        if exemplars:
            lines.extend(
                labeled_gauge_lines(
                    "repro_http_exemplar_seconds",
                    "trace-id exemplars: slowest request per path, last 5xx",
                    exemplars,
                )
            )
        sampler = self.sampler.stats()
        for suffix, value in (("kept", sampler["kept"]), ("dropped", sampler["dropped"])):
            name = f"repro_trace_sampler_{suffix}_total"
            lines.append(f"# HELP {name} traces {suffix} by the sampler")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        lines.append("# HELP repro_slo_alerts_total SLO burn/resolve events fired")
        lines.append("# TYPE repro_slo_alerts_total counter")
        lines.append(f"repro_slo_alerts_total {len(self.slo.alerts)}")
        burning = set(self.slo.burning())
        lines.extend(
            labeled_gauge_lines(
                "repro_slo_burning",
                "1 while the objective is in a burn episode",
                [
                    {"objective": objective.name, "value": 1 if objective.name in burning else 0}
                    for objective in self.slo.objectives
                ],
            )
        )
        if self.cluster is not None:
            for op, sketch in sorted(self.cluster.merged_sketches().items()):
                if not sketch.count:
                    continue
                family = f"repro_cluster_{op}_seconds"
                lines.extend(
                    summary_metric_lines(
                        family, f"fleet latency for keyed {op} (merged sketches)", sketch
                    )
                )
                for q, suffix in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                    gauge = f"repro_cluster_{op}_{suffix}"
                    lines.append(
                        f"# HELP {gauge} fleet {suffix} latency for keyed {op}, seconds"
                    )
                    lines.append(f"# TYPE {gauge} gauge")
                    lines.append(f"{gauge} {sketch.quantile(q)!r}")
            # process backend: worker-side service time next to the
            # router-side round trips above (the gap is the wire hop)
            for op, sketch in sorted(self.cluster.worker_sketches().items()):
                if not sketch.count:
                    continue
                lines.extend(
                    summary_metric_lines(
                        f"repro_cluster_worker_{op}_seconds",
                        f"worker-side service time for keyed {op} (process backend)",
                        sketch,
                    )
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def _handle_profile(self, params, extras) -> Tuple[int, str, str]:
        profile = profile_traces(list(_OBS.traces))
        return 200, json.dumps(profile.to_dict(), sort_keys=True, default=str) + "\n", _JSON

    def _handle_sessions(self, params, extras) -> Tuple[int, str, str]:
        if self.store is None:
            document = {"root": None, "hosted": self.session_name, "sessions": []}
        else:
            document = {
                "root": self.store.root,
                "hosted": self.session_name,
                "sessions": [
                    self.store.peek(name) for name in self.store.list_sessions()
                ],
            }
        if self.cluster is not None:
            document["cluster_sessions"] = self.cluster.sessions()
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON

    def _handle_ask(self, params, extras) -> Tuple[int, str, str]:
        specs = params.get("q")
        if not specs or not specs[0]:
            raise OpsError(400, "missing query parameter q (q1..q4 or a slash path)")
        spec = specs[0]
        mode = (params.get("mode") or ["local"])[0]
        if mode not in ("local", "fetch"):
            raise OpsError(400, f"unknown mode {mode!r} (local|fetch)")
        try:
            query = parse_query_spec(spec, named=_named_queries())
        except ValueError as exc:
            raise OpsError(400, f"bad query {spec!r}: {exc}")
        if self.cluster is not None:
            document = self._ask_cluster(params, spec, mode, query)
        else:
            document = self._ask_single(spec, mode, query)
        extras["knowledge_size"] = document["knowledge_size"]
        extras["query"] = spec
        return 200, json.dumps(document, sort_keys=True) + "\n", _JSON

    def _ask_single(self, spec: str, mode: str, query) -> Dict[str, object]:
        """Legacy single-engine ``/ask``.

        Local answering is a pure read of the (prepared) knowledge, so
        it takes the shared side of the engine lock — concurrent local
        asks proceed in parallel and never block behind each other;
        only ``mode=fetch`` (which runs Refine) excludes.
        """
        if mode == "fetch":
            if self.source is None:
                raise OpsError(409, "no source attached; mode=fetch unavailable")
            with self._engine_lock.write_locked():
                answer = self.webhouse.ask(self.source, query)
                self.webhouse.prepare()
                return {
                    "query": spec,
                    "mode": mode,
                    "answer_nodes": len(answer),
                    "knowledge_size": self.webhouse.size(),
                    "queries_recorded": len(self.webhouse.history),
                    "engine": self.webhouse.engine,
                }
        with self._engine_lock.read_locked():
            sure, may_have_more = self.webhouse.answer_with_caveats(query)
            return {
                "query": spec,
                "mode": mode,
                "sure_nodes": len(sure),
                "may_have_more": may_have_more,
                "knowledge_size": self.webhouse.size(),
                "queries_recorded": len(self.webhouse.history),
                "engine": self.webhouse.engine,
            }

    def _ask_cluster(self, params, spec: str, mode: str, query) -> Dict[str, object]:
        """Cluster ``/ask``: routed by session key, or fleet-wide union.

        ``session=KEY`` answers (or, with ``mode=fetch``, ingests) for
        exactly one session, routed through the consistent-hash ring.
        Without a session, ``mode=local`` unions the certain answers of
        every session in the fleet; fleet-wide fetch is refused — there
        is no single session whose knowledge the answer would refine.
        """
        keys = params.get("session")
        if keys and keys[0]:
            key = keys[0]
            try:
                shard = self.cluster.shard_of(key)
            except ValueError as exc:
                raise OpsError(400, str(exc))
            if mode == "fetch":
                if self.source is None:
                    raise OpsError(409, "no source attached; mode=fetch unavailable")
                info = self.cluster.ask_info(key, self.source, query)
                return {
                    "query": spec,
                    "mode": mode,
                    "session": key,
                    "shard": shard,
                    "answer_nodes": len(info["answer"]),
                    "knowledge_size": info["knowledge_size"],
                    "queries_recorded": info["queries_recorded"],
                }
            info = self.cluster.answer_info(key, query)
            return {
                "query": spec,
                "mode": mode,
                "session": key,
                "shard": shard,
                "sure_nodes": len(info["sure"]),
                "may_have_more": info["may_have_more"],
                "knowledge_size": info["knowledge_size"],
                "queries_recorded": info["queries_recorded"],
            }
        if mode == "fetch":
            raise OpsError(400, "mode=fetch needs a session=KEY in cluster mode")
        sure, may_have_more = self.cluster.ask_all(query)
        return {
            "query": spec,
            "mode": mode,
            "scope": "fleet",
            "sessions": len(self.cluster),
            "shards": self.cluster.shards,
            "sure_nodes": len(sure),
            "may_have_more": may_have_more,
            "knowledge_size": self.cluster.size(),
        }

    def _handle_slo(self, params, extras) -> Tuple[int, str, str]:
        """Burn-rate state, sampler books, and latency quantiles, JSON."""
        document = {
            "slo": self.slo.snapshot(),
            "sampler": self.sampler.stats(),
            "degrade_on_burn": self.degrade_on_burn,
            "remedies_applied": list(self.remedies_applied),
            "latency": self.request_log.latency_summary(),
        }
        if self.cluster is not None:
            document["cluster_latency"] = {
                op: sketch.summary()
                for op, sketch in self.cluster.merged_sketches().items()
                if sketch.count
            }
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON

    def _handle_debug_error(self, params, extras) -> Tuple[int, str, str]:
        """Fault injection: fail deliberately so burn alerts are testable.

        ``?status=`` picks the failure code (5xx only; default 500).
        The CI slo-smoke job bursts this endpoint and asserts the
        availability objective trips a burn-rate alert end-to-end.
        """
        raw = (params.get("status") or ["500"])[0]
        try:
            status = int(raw)
        except ValueError:
            raise OpsError(400, f"bad status {raw!r}")
        if not 500 <= status <= 599:
            raise OpsError(400, f"status must be 5xx, got {status}")
        raise OpsError(status, "induced failure (debug/error fault injection)")

    def _handle_debug_faults(self, params, extras) -> Tuple[int, str, str]:
        """Inspect or live-swap the server's fault plan.

        * plain GET — report the installed plan and its per-rule books;
        * ``?plan=SPEC`` — parse and install a new plan (400 on a bad
          spec; the grammar is in docs/ROBUSTNESS.md);
        * ``?reset=1`` — rewind the installed plan's trigger state;
        * ``?disarm=1`` — remove the plan entirely.

        The mutation applies to requests dispatched after this one —
        including this response's own bookkeeping, which runs with the
        *previous* plan still armed.
        """
        if params.get("disarm"):
            self.fault_plan = None
        spec = (params.get("plan") or [None])[0]
        if spec:
            try:
                self.fault_plan = FaultPlan.parse(spec)
            except FaultError as exc:
                raise OpsError(400, f"bad fault plan: {exc}")
        if params.get("reset") and self.fault_plan is not None:
            self.fault_plan.reset()
        plan = self.fault_plan
        document = {
            "armed": plan is not None,
            "plan": None if plan is None else plan.spec(),
            "rules": [] if plan is None else plan.stats(),
            "fires": 0 if plan is None else plan.fires(),
        }
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON

    def _handle_flightrecorder(self, params, extras) -> Tuple[int, str, str]:
        document = self.recorder.chrome_trace(
            extra={"sampler": self.sampler.stats()}
        )
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON

    def _handle_requests(self, params, extras) -> Tuple[int, str, str]:
        limits = params.get("limit") or ["100"]
        try:
            limit = max(1, int(limits[0]))
        except ValueError:
            raise OpsError(400, f"bad limit {limits[0]!r}")
        document = {"requests": self.request_log.recent(limit)}
        return 200, json.dumps(document, sort_keys=True, default=str) + "\n", _JSON


def drive_request(server: OpsServer, path: str) -> Tuple[int, str]:
    """Run one request through the full in-process pipeline, no socket.

    Exactly what the HTTP handler does minus the framing: open a
    :class:`request_trace`, dispatch, then ``finish_request`` (sampler,
    flight recorder, request log, SLO engine).  The CLI ``slo`` command
    and the telemetry benchmarks use it to drive the always-on pipeline
    deterministically.  Returns ``(status, body)``.
    """
    parsed = urlsplit(path)
    extras: Dict[str, object] = {}
    started = time.perf_counter()
    status = 500
    with request_trace("ops.request", method="GET", path=parsed.path) as handle:
        try:
            status, body, _ = server.dispatch(
                parsed.path, parse_qs(parsed.query), extras
            )
        except OpsError as exc:
            status = exc.status
            body = json.dumps({"error": str(exc), "status": status}) + "\n"
            handle.annotate(error=type(exc).__name__, error_message=str(exc))
        handle.annotate(status=status)
    server.finish_request(
        "GET", parsed.path, status, time.perf_counter() - started, handle, extras
    )
    return status, body


# -- self-check ------------------------------------------------------------------

#: Endpoints ``self_check`` probes, with their validator kind.
_PROBES = (
    ("/healthz", "text"),
    ("/statusz", "json"),
    ("/metrics", "prometheus"),
    ("/profile", "json"),
    ("/sessions", "json"),
    ("/ask?q=q1", "json"),
    ("/slo", "json"),
    ("/debug/flightrecorder", "chrome"),
    ("/debug/requests", "json"),
    ("/debug/faults", "json"),
)

#: Extra probes for a cluster server: a routed ask (the ``demo``
#: session :func:`demo_cluster` pre-ingests) and an explicit fleet ask.
_CLUSTER_PROBES = _PROBES + (
    ("/ask?q=q1&session=demo", "json"),
    ("/ask?q=q1&session=demo&mode=fetch", "json"),
    ("/ask?q=q2", "json"),
)


def self_check(base_url: str, timeout: float = 5.0, probes=None):
    """Probe every endpoint of a live server and validate the payloads.

    Returns ``(ok, report)`` where ``report`` is one row per probe:
    ``{"endpoint", "status", "ok", "trace_id", "detail"}``.  Used by
    ``python -m repro serve --once`` so CI smoke tests need no
    sleep/poll loop — the server process checks itself and exits
    nonzero on any failure.  ``probes`` defaults to the single-engine
    probe set; cluster servers pass :data:`_CLUSTER_PROBES` (which adds
    routed and fleet-wide asks).
    """
    import urllib.request

    from ..obs.export import validate_chrome_trace, validate_prometheus_text

    report = []
    all_ok = True
    for endpoint, kind in (_PROBES if probes is None else probes):
        row = {"endpoint": endpoint, "status": 0, "ok": False, "trace_id": None, "detail": ""}
        try:
            with urllib.request.urlopen(base_url + endpoint, timeout=timeout) as resp:
                body = resp.read().decode("utf-8")
                row["status"] = resp.status
                row["trace_id"] = resp.headers.get("X-Repro-Trace-Id")
            if row["status"] != 200:
                raise ValueError(f"status {row['status']}")
            if not row["trace_id"]:
                raise ValueError("missing X-Repro-Trace-Id header")
            if kind == "json":
                json.loads(body)
            elif kind == "prometheus":
                samples = validate_prometheus_text(body)
                if not any(name.startswith("repro_cache_") for name in samples):
                    raise ValueError("no repro_cache_* series in /metrics")
            elif kind == "chrome":
                row["detail"] = f"{validate_chrome_trace(json.loads(body))} events"
            elif kind == "text" and "ok" not in body:
                raise ValueError(f"unexpected body {body!r}")
            row["ok"] = True
        except Exception as exc:
            row["detail"] = f"{type(exc).__name__}: {exc}"
            all_ok = False
        report.append(row)
    return all_ok, report


def proc_self_check():
    """Probe the process backend end to end, no socket required.

    Spawns a 2-shard :func:`demo_cluster` with ``backend="process"``,
    drives one routed ``/ask`` through the full in-process request
    pipeline, and asserts the response attributes the session to the
    shard the router computes — so ``serve --once`` (and CI) catches
    wire-format drift, spawn breakage, or routing skew before any real
    traffic does.  Returns ``(ok, report)`` shaped like
    :func:`self_check` rows.
    """
    row = {
        "endpoint": "proc:/ask?q=q1&session=demo",
        "status": 0,
        "ok": False,
        "trace_id": None,
        "detail": "",
    }
    cluster = None
    server = None
    try:
        cluster, source = demo_cluster(shards=2, backend="process")
        server = OpsServer(cluster=cluster, source=source)
        # drive_request minus the opaque trace: the probe row reports
        # the trace id the routed ask (and its worker hop) ran under
        started = time.perf_counter()
        with request_trace("ops.request", method="GET", path="/ask") as handle:
            status, body, _ = server.dispatch(
                "/ask", {"q": ["q1"], "session": ["demo"]}, {}
            )
            handle.annotate(status=status)
        server.finish_request(
            "GET", "/ask", status, time.perf_counter() - started, handle, {}
        )
        row["status"] = status
        row["trace_id"] = handle.trace_id
        if status != 200:
            raise ValueError(f"status {status}: {body.strip()}")
        document = json.loads(body)
        expected = cluster.shard_of("demo")
        if document.get("shard") != expected:
            raise ValueError(
                f"shard attribution {document.get('shard')!r} != router's {expected}"
            )
        if document.get("queries_recorded", 0) < 1:
            raise ValueError("worker lost the pre-recorded demo session")
        workers = cluster.worker_stats()
        if sorted(w["shard"] for w in workers) != [0, 1] or not all(
            w["alive"] for w in workers
        ):
            raise ValueError(f"worker fleet unhealthy: {workers}")
        row["detail"] = (
            f"shard {expected}, pids "
            f"{[w['pid'] for w in sorted(workers, key=lambda w: w['shard'])]}"
        )
        row["ok"] = True
    except Exception as exc:
        row["detail"] = f"{type(exc).__name__}: {exc}"
    finally:
        if server is not None:
            server.request_log.close()
        if cluster is not None:
            cluster.close()
    return row["ok"], [row]


__all__ = [
    "OpsError",
    "OpsServer",
    "demo_cluster",
    "demo_webhouse",
    "drive_request",
    "hosted_webhouse",
    "proc_self_check",
    "self_check",
]
