"""The flight recorder: a bounded ring of recently finished traces.

Serving systems for uncertain data have per-request cost that varies
wildly with representation structure — by the time an operator notices a
slow or failing ``/ask``, the interesting trace is gone unless someone
kept it.  The :class:`FlightRecorder` keeps it: the last ``capacity``
completed request traces ride a ring (oldest evicted first), while
**errored** traces go to a separate, much larger ring so that a burst of
healthy traffic cannot flush the evidence of a failure.

The recorder stores finished root :class:`~repro.obs.spans.Span` trees
(each carrying its request's ``trace_id``), and renders them as Chrome
``trace_event`` JSON on demand — ``/debug/flightrecorder`` returns a
document that loads directly into Perfetto / ``chrome://tracing`` and
passes :func:`repro.obs.export.validate_chrome_trace`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.export import chrome_trace_events
from ..obs.spans import Span


def _subtree_errored(node: Span) -> bool:
    if "error" in node.attrs:
        return True
    return any(_subtree_errored(child) for child in node.children)


class FlightRecorder:
    """Bounded retention of finished trace roots, errors kept longest.

    ``capacity`` bounds the completed-trace ring; ``errored_capacity``
    bounds the errored ring (generously — the contract is that every
    errored trace of a test run or an incident window is retained).
    """

    def __init__(self, capacity: int = 64, errored_capacity: int = 1024):
        if capacity <= 0 or errored_capacity <= 0:
            raise ValueError("flight recorder capacities must be positive")
        self.capacity = capacity
        self.errored_capacity = errored_capacity
        self._completed: Deque[Span] = deque(maxlen=capacity)
        self._errored: Deque[Span] = deque(maxlen=errored_capacity)
        self._recorded = 0
        self._recorded_errored = 0
        self._by_reason: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- recording --------------------------------------------------------------

    def record(
        self,
        root: Optional[Span],
        errored: Optional[bool] = None,
        reason: Optional[str] = None,
    ) -> None:
        """File one finished trace root (``None`` is a tolerated no-op,
        so call sites need no obs-enabled guard).

        ``errored`` overrides the classification; when omitted the tree
        is scanned for spans that closed with an ``error`` attribute.
        ``reason`` is the sampler's keep verdict (``head``/``error``/
        ``shed``/``slow``); it is stamped onto the root's attributes so
        Chrome-trace dumps show why each retained trace survived.
        """
        if root is None:
            return
        if errored is None:
            errored = _subtree_errored(root)
        if reason is not None:
            root.attrs["keep"] = reason
        with self._lock:
            self._recorded += 1
            if reason is not None:
                self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
            if errored:
                self._recorded_errored += 1
                self._errored.append(root)
            else:
                self._completed.append(root)

    def clear(self) -> None:
        with self._lock:
            self._completed.clear()
            self._errored.clear()

    # -- reading ----------------------------------------------------------------

    def completed(self) -> List[Span]:
        """Retained non-errored trace roots, oldest first."""
        with self._lock:
            return list(self._completed)

    def errored(self) -> List[Span]:
        """Retained errored trace roots, oldest first."""
        with self._lock:
            return list(self._errored)

    def roots(self) -> List[Span]:
        """Every retained root, merged and ordered by start time."""
        with self._lock:
            merged = list(self._completed) + list(self._errored)
        merged.sort(key=lambda node: node.start)
        return merged

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "recorded": self._recorded,
                "recorded_errored": self._recorded_errored,
                "retained_completed": len(self._completed),
                "retained_errored": len(self._errored),
                "capacity": self.capacity,
                "errored_capacity": self.errored_capacity,
                "recorded_by_reason": dict(sorted(self._by_reason.items())),
            }

    def chrome_trace(
        self, extra: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """The retained traces as one Chrome trace-event document.

        Each trace root gets its own ``tid`` so concurrent requests
        render as parallel tracks; errored traces are offset into a
        separate tid band (>= 1000) for quick visual triage.
        """
        with self._lock:
            rows: List[Tuple[Span, bool]] = [(r, False) for r in self._completed]
            rows += [(r, True) for r in self._errored]
        rows.sort(key=lambda row: row[0].start)
        events: List[Dict[str, object]] = []
        completed_tid, errored_tid = 1, 1000
        for root, was_errored in rows:
            if was_errored:
                tid, errored_tid = errored_tid, errored_tid + 1
            else:
                tid, completed_tid = completed_tid, completed_tid + 1
            events.extend(chrome_trace_events([root], pid=1, tid=tid))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.ops.flight",
                "format": "trace_event",
                **{key: str(val) for key, val in self.stats().items()},
                **{key: str(val) for key, val in (extra or {}).items()},
            },
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._completed) + len(self._errored)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"FlightRecorder({stats['retained_completed']}/{self.capacity} completed, "
            f"{stats['retained_errored']}/{self.errored_capacity} errored)"
        )


__all__ = ["FlightRecorder"]
