"""Structured JSONL request log for the ops plane.

One record per finished HTTP request: method, path, status, duration,
the request's ``trace_id`` (the same id returned in the
``X-Repro-Trace-Id`` header and stamped on every engine span), and any
endpoint extras — for ``/ask`` that includes the knowledge size touched,
so a knowledge-growth incident can be read straight off the log.

Records go to a bounded in-memory ring (served at ``/debug/requests``)
and, when a path is configured, to an append-only JSON-lines file.  The
file handle is guarded by a lock: handler threads log concurrently.

The log is also the always-on latency books for the SLO layer: every
record feeds a per-path (and an all-paths) mergeable
:class:`~repro.obs.sketch.QuantileSketch`, and the slowest trace per
path plus the most recent 5xx are retained as **exemplars** — labelled
trace-id series on ``/metrics`` that link a quantile family to a
concrete flight-recorder trace.  These books are independent of the
``repro.obs`` enabled flag: quantiles must survive an operator turning
span collection off.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from ..obs.sketch import DEFAULT_ACCURACY, QuantileSketch

#: The key under which the cross-path latency sketch is kept.
ALL_PATHS = "all"


def _family(path: str) -> str:
    """Normalize a request path to its metric family (drop the query)."""
    return path.split("?", 1)[0] or "/"


class RequestLog:
    """Bounded ring + optional JSONL file of per-request records."""

    def __init__(
        self,
        capacity: int = 1024,
        path: Optional[Union[str, Path]] = None,
        relative_accuracy: float = DEFAULT_ACCURACY,
    ):
        if capacity <= 0:
            raise ValueError("request log capacity must be positive")
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stream = None
        self.path = None if path is None else str(path)
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
        self.logged = 0
        self.relative_accuracy = relative_accuracy
        #: per-path-family latency sketches, plus the ALL_PATHS rollup
        self._sketches: Dict[str, QuantileSketch] = {
            ALL_PATHS: QuantileSketch(relative_accuracy)
        }
        #: per-path slowest request seen (trace-id exemplars)
        self._slowest: Dict[str, Dict[str, object]] = {}
        #: the most recent 5xx record
        self._last_error: Optional[Dict[str, object]] = None

    def log(
        self,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        trace_id: str,
        **extras: object,
    ) -> Dict[str, object]:
        """Append one request record; returns the record."""
        record: Dict[str, object] = {
            "ts": time.time(),
            "method": method,
            "path": path,
            "status": int(status),
            "duration_ms": round(duration_s * 1000.0, 3),
            "trace_id": trace_id,
        }
        if extras:
            record.update(extras)
        family = _family(path)
        with self._lock:
            self._ring.append(record)
            self.logged += 1
            sketch = self._sketches.get(family)
            if sketch is None:
                sketch = self._sketches[family] = QuantileSketch(
                    self.relative_accuracy
                )
            slowest = self._slowest.get(family)
            if slowest is None or duration_s > slowest["duration_s"]:  # type: ignore[operator]
                self._slowest[family] = {
                    "path": family,
                    "trace_id": trace_id,
                    "status": int(status),
                    "duration_s": duration_s,
                }
            if status >= 500:
                self._last_error = {
                    "path": family,
                    "trace_id": trace_id,
                    "status": int(status),
                    "duration_s": duration_s,
                }
            if self._stream is not None:
                self._stream.write(json.dumps(record, sort_keys=True, default=str))
                self._stream.write("\n")
                self._stream.flush()
        # the sketches lock themselves; observe outside the ring lock
        sketch.observe(duration_s)
        self._sketches[ALL_PATHS].observe(duration_s)
        return record

    def recent(self, limit: int = 100) -> List[Dict[str, object]]:
        """The newest ``limit`` records, oldest first."""
        with self._lock:
            rows = list(self._ring)
        return rows[-max(0, limit):]

    # -- latency books -----------------------------------------------------------

    def latency(self, family: str = ALL_PATHS) -> Optional[QuantileSketch]:
        """The latency sketch for one path family (None when unseen)."""
        with self._lock:
            return self._sketches.get(_family(family) if family != ALL_PATHS else family)

    def latency_families(self) -> Dict[str, QuantileSketch]:
        """Every path family's sketch (live objects, locked internally)."""
        with self._lock:
            return dict(self._sketches)

    def latency_summary(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready whole-stream latency quantiles per path family."""
        with self._lock:
            sketches = dict(self._sketches)
        return {family: sketches[family].summary() for family in sorted(sketches)}

    def exemplars(self) -> List[Dict[str, object]]:
        """Trace-id exemplars: slowest request per path, last 5xx.

        Each row carries ``value`` (seconds) plus label fields — the
        shape :func:`repro.obs.export.labeled_gauge_lines` renders.
        """
        with self._lock:
            rows = [
                {
                    "kind": "slowest",
                    "path": row["path"],
                    "trace_id": row["trace_id"],
                    "status": row["status"],
                    "value": row["duration_s"],
                }
                for _, row in sorted(self._slowest.items())
            ]
            if self._last_error is not None:
                rows.append(
                    {
                        "kind": "last_error",
                        "path": self._last_error["path"],
                        "trace_id": self._last_error["trace_id"],
                        "status": self._last_error["status"],
                        "value": self._last_error["duration_s"],
                    }
                )
        return rows

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.flush()
                self._stream.close()
                self._stream = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return f"RequestLog({len(self)} retained, {self.logged} logged, path={self.path!r})"


__all__ = ["ALL_PATHS", "RequestLog"]
