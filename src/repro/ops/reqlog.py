"""Structured JSONL request log for the ops plane.

One record per finished HTTP request: method, path, status, duration,
the request's ``trace_id`` (the same id returned in the
``X-Repro-Trace-Id`` header and stamped on every engine span), and any
endpoint extras — for ``/ask`` that includes the knowledge size touched,
so a knowledge-growth incident can be read straight off the log.

Records go to a bounded in-memory ring (served at ``/debug/requests``)
and, when a path is configured, to an append-only JSON-lines file.  The
file handle is guarded by a lock: handler threads log concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union


class RequestLog:
    """Bounded ring + optional JSONL file of per-request records."""

    def __init__(self, capacity: int = 1024, path: Optional[Union[str, Path]] = None):
        if capacity <= 0:
            raise ValueError("request log capacity must be positive")
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stream = None
        self.path = None if path is None else str(path)
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
        self.logged = 0

    def log(
        self,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        trace_id: str,
        **extras: object,
    ) -> Dict[str, object]:
        """Append one request record; returns the record."""
        record: Dict[str, object] = {
            "ts": time.time(),
            "method": method,
            "path": path,
            "status": int(status),
            "duration_ms": round(duration_s * 1000.0, 3),
            "trace_id": trace_id,
        }
        if extras:
            record.update(extras)
        with self._lock:
            self._ring.append(record)
            self.logged += 1
            if self._stream is not None:
                self._stream.write(json.dumps(record, sort_keys=True, default=str))
                self._stream.write("\n")
                self._stream.flush()
        return record

    def recent(self, limit: int = 100) -> List[Dict[str, object]]:
        """The newest ``limit`` records, oldest first."""
        with self._lock:
            rows = list(self._ring)
        return rows[-max(0, limit):]

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.flush()
                self._stream.close()
                self._stream = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return f"RequestLog({len(self)} retained, {self.logged} logged, path={self.path!r})"


__all__ = ["RequestLog"]
