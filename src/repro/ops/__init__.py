"""repro.ops — the live operations plane.

Everything PRs 1 and 3 collect (`repro.obs` metrics, spans, profiles,
growth regimes) and PR 4 counts (`repro.perf` cache books) was pull-
after-the-fact: inspectable in-process, after the workload finished.
This package puts a **live surface** on a running mediator:

* :class:`~repro.ops.server.OpsServer` — a zero-dependency
  ``http.server`` admin plane (``python -m repro serve``) with
  ``/healthz``, ``/statusz``, ``/metrics`` (Prometheus), ``/profile``,
  ``/sessions``, ``/ask`` and ``/debug/flightrecorder``;
* :class:`~repro.ops.trace.request_trace` — request-scoped trace
  context: a generated ``trace_id`` bound via ``contextvars``, stamped
  on every engine span the request triggers and returned in the
  ``X-Repro-Trace-Id`` header;
* :class:`~repro.ops.flight.FlightRecorder` — a bounded ring retaining
  the last N completed request traces plus every errored trace,
  dumpable as Chrome trace-event JSON;
* :class:`~repro.ops.reqlog.RequestLog` — structured JSONL request log
  (method, path, status, duration, trace id, knowledge sizes touched).

See ``docs/OPS.md`` for endpoint payloads and curl examples.
"""

from __future__ import annotations

from .flight import FlightRecorder
from .reqlog import RequestLog
from .server import (
    OpsError,
    OpsServer,
    demo_cluster,
    demo_webhouse,
    drive_request,
    hosted_webhouse,
    proc_self_check,
    self_check,
)
from .trace import TraceHandle, new_trace_id, request_trace

__all__ = [
    "FlightRecorder",
    "OpsError",
    "OpsServer",
    "RequestLog",
    "TraceHandle",
    "demo_cluster",
    "demo_webhouse",
    "drive_request",
    "hosted_webhouse",
    "new_trace_id",
    "proc_self_check",
    "request_trace",
    "self_check",
]
