"""repro — Representing and Querying XML with Incomplete Information.

A full reproduction of Abiteboul, Segoufin & Vianu (PODS 2001): data
trees with persistent node ids, simplified DTDs, prefix-selection
queries, the incomplete-tree representation system, Algorithm Refine and
its blowup countermeasures, querying of incomplete trees, the mediator
machinery, and the Section 4 extension constructions.

Quickstart::

    from repro import (
        Cond, DataTree, PSQuery, TreeType, Webhouse, InMemorySource,
        node, pattern,
    )

    tt = TreeType.parse("root: catalog\\ncatalog -> product+ ...")
    source = InMemorySource(document, tt)
    wh = Webhouse(tt.alphabet, tree_type=tt)
    wh.ask(source, some_query)                   # acquire knowledge
    wh.can_answer(other_query)                   # Corollary 3.15
    wh.possible_answers(other_query)             # Theorem 3.14
    wh.complete_and_answer(source, other_query)  # Theorem 3.19
"""

from .answering import (
    certain_answer_prefix,
    certainly_nonempty,
    fully_answerable,
    possible_answer_prefix,
    possibly_nonempty,
    query_incomplete,
)
from .core import (
    Atom,
    Cond,
    DataTree,
    Disjunction,
    IdFactory,
    IntervalSet,
    Mult,
    PSQuery,
    QueryNode,
    StringSet,
    TreeType,
    ValueSet,
    as_value,
    linear_query,
    node,
    parse_cond,
    parse_query,
    pattern,
    subtree,
    tree_from_xml,
    tree_to_xml,
)
from .incomplete import (
    ConditionalTreeType,
    DataNode,
    IncompleteTree,
    certain_prefix,
    enumerate_trees,
    incomplete_equivalent,
    possible_prefix,
)
from . import obs
from .cluster import Router, ShardedWebhouse, ShardOverloaded
from .mediator import InMemorySource, LocalQuery, Webhouse, completion_plan
from .store import Session, SessionStore
from .refine import (
    ConjunctiveIncompleteTree,
    forget_specializations,
    intersect,
    intersect_with_tree_type,
    inverse_incomplete,
    merge_equivalent_symbols,
    probing_queries,
    refine,
    refine_linear_sequence,
    refine_plus_sequence,
    refine_sequence,
    universal_incomplete,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Cond",
    "ConditionalTreeType",
    "ConjunctiveIncompleteTree",
    "DataNode",
    "DataTree",
    "Disjunction",
    "IdFactory",
    "IncompleteTree",
    "InMemorySource",
    "IntervalSet",
    "LocalQuery",
    "Mult",
    "PSQuery",
    "QueryNode",
    "Router",
    "Session",
    "SessionStore",
    "ShardOverloaded",
    "ShardedWebhouse",
    "StringSet",
    "TreeType",
    "ValueSet",
    "Webhouse",
    "as_value",
    "certain_answer_prefix",
    "certain_prefix",
    "certainly_nonempty",
    "completion_plan",
    "enumerate_trees",
    "forget_specializations",
    "fully_answerable",
    "incomplete_equivalent",
    "intersect",
    "intersect_with_tree_type",
    "inverse_incomplete",
    "linear_query",
    "merge_equivalent_symbols",
    "node",
    "obs",
    "parse_cond",
    "parse_query",
    "pattern",
    "possible_answer_prefix",
    "possible_prefix",
    "possibly_nonempty",
    "probing_queries",
    "query_incomplete",
    "refine",
    "refine_linear_sequence",
    "refine_plus_sequence",
    "refine_sequence",
    "subtree",
    "tree_from_xml",
    "tree_to_xml",
    "universal_incomplete",
]
