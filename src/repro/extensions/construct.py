"""Queries with constructed answers (Section 4).

A construction query has a *body* — an extended pattern binding
variables — and a *head* describing the answer tree via Skolem terms in
the spirit of XML-QL: each head node carries a label and a Skolem
function over a subset of the body variables; for every binding of the
body, head nodes are instantiated, and instances with equal Skolem
terms are identified.

The paper's counting example (one ``a`` per X-binding, one ``b`` per
Y-binding, hence equally many of each) is expressible directly; it is
the witness that incomplete trees stop being a strong representation
system under branching + construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.values import Value
from .extended_query import ENode, ExtendedQuery, Mode


@dataclass(frozen=True)
class HeadNode:
    """A head template node: label, Skolem function name, argument vars."""

    label: str
    skolem: str
    args: Tuple[str, ...] = ()
    value_var: Optional[str] = None  # copy this variable's value, default 0
    children: Tuple["HeadNode", ...] = ()


def head(
    label: str,
    skolem: str,
    args: Sequence[str] = (),
    value_var: Optional[str] = None,
    children: Sequence[HeadNode] = (),
) -> HeadNode:
    return HeadNode(label, skolem, tuple(args), value_var, tuple(children))


class ConstructionQuery:
    """body → head query with Skolem-term answer construction."""

    def __init__(self, body: ExtendedQuery, head_root: HeadNode):
        self._body = body
        self._head = head_root

    @property
    def body(self) -> ExtendedQuery:
        return self._body

    def bindings(self, tree: DataTree) -> List[Dict[str, Value]]:
        """All distinct variable bindings of the body."""
        seen: Set[Tuple[Tuple[str, Value], ...]] = set()
        result: List[Dict[str, Value]] = []
        for binding in _body_bindings(self._body, tree):
            key = tuple(sorted(binding.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                result.append(binding)
        return result

    def evaluate(self, tree: DataTree) -> DataTree:
        """Instantiate the head over every body binding."""
        bindings = self.bindings(tree)
        if not bindings:
            return DataTree.empty()
        # node id = rendered Skolem term; identical terms are identified
        records: Dict[NodeId, Tuple[str, Value, Optional[NodeId]]] = {}
        root_id: Optional[NodeId] = None

        def term(h: HeadNode, binding: Dict[str, Value]) -> NodeId:
            args = ",".join(repr(binding.get(a)) for a in h.args)
            return f"{h.skolem}({args})"

        def instantiate(
            h: HeadNode, binding: Dict[str, Value], parent: Optional[NodeId]
        ) -> NodeId:
            node_id = term(h, binding)
            value: Value = binding.get(h.value_var, 0) if h.value_var else 0
            from ..core.values import as_value

            value = as_value(value)
            existing = records.get(node_id)
            if existing is not None:
                if existing[0] != h.label or existing[2] != parent:
                    raise ValueError(
                        f"Skolem term {node_id!r} instantiated inconsistently"
                    )
            records[node_id] = (h.label, value, parent)
            for child in h.children:
                instantiate(child, binding, node_id)
            return node_id

        for binding in bindings:
            rid = instantiate(self._head, binding, None)
            if root_id is None:
                root_id = rid
            elif root_id != rid:
                raise ValueError("head root must use a constant Skolem term")

        children_map: Dict[NodeId, List[NodeId]] = {nid: [] for nid in records}
        for nid, (_l, _v, parent) in records.items():
            if parent is not None:
                children_map[parent].append(nid)

        def build(nid: NodeId) -> NodeSpec:
            label, value, _parent = records[nid]
            return node(nid, label, value, [build(c) for c in sorted(children_map[nid])])

        assert root_id is not None
        return DataTree.build(build(root_id))


def _body_bindings(
    query: ExtendedQuery, tree: DataTree
) -> Iterator[Dict[str, Value]]:
    if tree.is_empty():
        return
    for binding, _image in query._match(query.root, tree.root, tree, {}):
        yield binding
