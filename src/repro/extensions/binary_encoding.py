"""Unranked ↔ binary tree encoding (Section 4, k-pebble machinery).

k-pebble transducers operate on binary trees; unranked ordered trees
are mapped to binary form by the standard first-child / next-sibling
encoding the paper cites [34].  Missing children become ``#`` leaf
markers so every internal node is properly binary.

Data values are dropped in the encoding — the basic k-pebble machine of
the paper ignores them (Remark 4.4 sketches the extension, which we
realize separately by refining labels with condition-class markers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.tree import DataTree, NodeId, NodeSpec, node

#: Label of the nil leaf marker.
NIL = "#"


@dataclass(frozen=True)
class Bin:
    """A binary tree node (``left``/``right`` None only on ``#`` leaves)."""

    label: str
    left: Optional["Bin"] = None
    right: Optional["Bin"] = None

    def is_nil(self) -> bool:
        return self.label == NIL

    def size(self) -> int:
        total = 1
        if self.left is not None:
            total += self.left.size()
        if self.right is not None:
            total += self.right.size()
        return total

    def labels(self) -> set:
        result = {self.label}
        if self.left is not None:
            result |= self.left.labels()
        if self.right is not None:
            result |= self.right.labels()
        return result


def nil() -> Bin:
    return Bin(NIL)


def bin_node(label: str, left: Optional[Bin] = None, right: Optional[Bin] = None) -> Bin:
    return Bin(label, left if left is not None else nil(), right if right is not None else nil())


def encode(tree: DataTree) -> Bin:
    """First-child/next-sibling encoding of an unranked tree.

    Children keep the order stored in the tree (our model is unordered,
    but the stored order is deterministic, which is what matters here).
    """
    if tree.is_empty():
        return nil()

    def enc_list(nodes: Tuple[NodeId, ...], index: int) -> Bin:
        if index >= len(nodes):
            return nil()
        current = nodes[index]
        return Bin(
            tree.label(current),
            enc_list(tree.children(current), 0),
            enc_list(nodes, index + 1),
        )

    return enc_list((tree.root,), 0)


def decode(binary: Bin, id_prefix: str = "d") -> DataTree:
    """Inverse of :func:`encode` (values become 0)."""
    if binary.is_nil():
        return DataTree.empty()
    counter = [0]

    def dec(current: Bin) -> List[NodeSpec]:
        """Decode a sibling list starting at ``current``."""
        specs: List[NodeSpec] = []
        while current is not None and not current.is_nil():
            ident = f"{id_prefix}{counter[0]}"
            counter[0] += 1
            children = dec(current.left) if current.left is not None else []
            specs.append(node(ident, current.label, 0, children))
            current = current.right  # type: ignore[assignment]
        return specs

    roots = dec(binary)
    if len(roots) != 1:
        raise ValueError("binary tree does not encode a single-rooted tree")
    return DataTree.build(roots[0])
