"""The order discussion of Section 4 ("Node ids and order").

The paper's closing example: a flat ordered input contains ``a`` and
``b`` elements; query q₁ retrieved the ``a``'s in order, q₂ the
``b``'s.  Can q₃ ("all elements, in order") be answered?

* If the input type is ``a* b*``, yes — concatenate.
* If it is ``(a + b)*``, no — the interleaving is unknown.

This module makes the criterion executable for flat ordered documents:
given the per-label subsequences and a regular expression describing
the allowed label sequences (a :class:`~repro.extensions.paths.PathExpr`),
:func:`merge_ordered_answers` reconstructs the full ordered list when
the consistent interleaving is *unique*, and reports ambiguity
otherwise.  The paper's wrapper fix — sources exposing element *ranks* —
is :func:`merge_by_rank`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .paths import PathExpr, sym


@dataclass(frozen=True)
class OrderedElement:
    """An element of a flat ordered document: label + node id."""

    label: str
    node_id: str
    rank: Optional[int] = None  # position in the source, when exposed


class AmbiguousInterleaving(Exception):
    """Raised when several interleavings are consistent with the type."""


def interleavings_consistent_with(
    expr: PathExpr, sequences: Sequence[Sequence[OrderedElement]], limit: int = 2
) -> List[Tuple[OrderedElement, ...]]:
    """Up to ``limit`` distinct interleavings of the per-label sequences
    whose label word lies in L(expr).

    Each input sequence holds the elements of one label in source
    order; interleavings preserve those relative orders (that is what
    per-label answers tell us).
    """
    results: List[Tuple[OrderedElement, ...]] = []

    def rec(positions: Tuple[int, ...], states: FrozenSet[int], acc):
        if len(results) >= limit:
            return
        if all(p == len(seq) for p, seq in zip(positions, sequences)):
            if expr.accepting(states):
                results.append(tuple(acc))
            return
        for i, seq in enumerate(sequences):
            p = positions[i]
            if p >= len(seq):
                continue
            element = seq[p]
            advanced = expr.step(states, element.label)
            if not advanced:
                continue
            rec(
                positions[:i] + (p + 1,) + positions[i + 1 :],
                advanced,
                acc + [element],
            )

    rec(tuple(0 for _ in sequences), expr.start_states(), [])
    return results


def merge_ordered_answers(
    expr: PathExpr, sequences: Sequence[Sequence[OrderedElement]]
) -> Tuple[OrderedElement, ...]:
    """The unique type-consistent interleaving, or raise.

    Raises ``ValueError`` when no interleaving is consistent (the
    answers contradict the type) and :class:`AmbiguousInterleaving` when
    more than one is — the paper's ``(a + b)*`` situation, where q₃
    cannot be answered from q₁ and q₂.
    """
    found = interleavings_consistent_with(expr, sequences, limit=2)
    if not found:
        raise ValueError("no interleaving consistent with the input type")
    if len(found) > 1:
        raise AmbiguousInterleaving(
            "several interleavings are consistent; order information is lost"
        )
    return found[0]


def merge_by_rank(
    sequences: Sequence[Sequence[OrderedElement]],
) -> Tuple[OrderedElement, ...]:
    """The paper's wrapper remedy: when sources expose element ranks,
    answers merge regardless of the type."""
    elements: List[OrderedElement] = []
    for seq in sequences:
        for element in seq:
            if element.rank is None:
                raise ValueError(f"element {element.node_id!r} has no rank")
            elements.append(element)
    ranks = [e.rank for e in elements]
    if len(set(ranks)) != len(ranks):
        raise ValueError("duplicate ranks across answers")
    return tuple(sorted(elements, key=lambda e: e.rank))  # type: ignore[arg-type,return-value]


def words_type(*labels_star: str) -> PathExpr:
    """Convenience: ``words_type('a', 'b')`` builds ``a* b*``."""
    expr: Optional[PathExpr] = None
    for label in labels_star:
        piece = sym(label).star()
        expr = piece if expr is None else expr.then(piece)
    if expr is None:
        raise ValueError("need at least one label")
    return expr


def any_of_star(*labels: str) -> PathExpr:
    """Convenience: ``any_of_star('a', 'b')`` builds ``(a | b)*``."""
    expr: Optional[PathExpr] = None
    for label in labels:
        piece = sym(label)
        expr = piece if expr is None else expr.alt(piece)
    if expr is None:
        raise ValueError("need at least one label")
    return expr.star()
