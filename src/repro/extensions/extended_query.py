"""Extended tree-pattern queries (Section 4).

The paper probes the tractability frontier with query features beyond
ps-queries: *branching* (several same-label siblings), *optional*
subtrees, *negated* subtrees, and *data joins* (variables compared
across pattern nodes with = / ≠).  This module implements their
evaluation on data trees — the paper's negative results (Theorems 4.1,
4.5-4.7) show these features defeat the incomplete-information
machinery, so evaluation is all there is to implement, and the
reductions in :mod:`repro.reductions` are built on it.

Semantics follow the paper: a valuation maps the *required* pattern
nodes into the tree (root to root, edges to edges, labels/conditions
respected; NOT necessarily injective); optional subtrees may extend the
valuation; a negated subtree must admit *no* extension of the valuation;
variable constraints compare the data values bound at pattern nodes.
The answer is the prefix of all nodes in the image of some valuation
(with optional matches included and bar subtrees extracted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, NodeId
from ..core.values import Value, values_equal


class Mode(Enum):
    """How a pattern subtree participates in matching."""

    REQUIRED = "required"
    OPTIONAL = "optional"  # the paper's "?" subtrees
    NEGATED = "negated"  # the paper's "¬" subtrees


@dataclass(frozen=True)
class ENode:
    """One node of an extended pattern.

    ``var`` names the data value bound at this node for join
    constraints.  ``extract`` marks bar subtrees.  Unlike ps-queries,
    siblings may repeat labels (branching).
    """

    label: str
    cond: Cond = field(default_factory=Cond.true)
    var: Optional[str] = None
    mode: Mode = Mode.REQUIRED
    extract: bool = False
    children: Tuple["ENode", ...] = ()


def enode(
    label: str,
    cond: Optional[Cond] = None,
    var: Optional[str] = None,
    mode: Mode = Mode.REQUIRED,
    extract: bool = False,
    children: Sequence[ENode] = (),
) -> ENode:
    """Build an extended pattern node."""
    return ENode(
        label,
        cond if cond is not None else Cond.true(),
        var,
        mode,
        extract,
        tuple(children),
    )


def optional(node: ENode) -> ENode:
    """Mark a subtree optional."""
    return ENode(node.label, node.cond, node.var, Mode.OPTIONAL, node.extract, node.children)


def negated(node: ENode) -> ENode:
    """Mark a subtree negated."""
    return ENode(node.label, node.cond, node.var, Mode.NEGATED, node.extract, node.children)


@dataclass(frozen=True)
class VarConstraint:
    """``left <op> right`` between variables, with op ∈ {'=', '!='}."""

    left: str
    op: str
    right: str

    def holds(self, binding: Dict[str, Value]) -> Optional[bool]:
        """None when some variable is unbound (optional subtree skipped)."""
        if self.left not in binding or self.right not in binding:
            return None
        equal = values_equal(binding[self.left], binding[self.right])
        return equal if self.op == "=" else not equal


class ExtendedQuery:
    """An extended tree-pattern query with join constraints."""

    def __init__(self, root: ENode, constraints: Sequence[VarConstraint] = ()):
        self._root = root
        self._constraints = tuple(constraints)

    @property
    def root(self) -> ENode:
        return self._root

    @property
    def constraints(self) -> Tuple[VarConstraint, ...]:
        return self._constraints

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, tree: DataTree) -> DataTree:
        """The answer prefix (empty when no valuation exists)."""
        if tree.is_empty():
            return DataTree.empty()
        keep: Set[NodeId] = set()
        matched_any = False
        for image in self._valuations(tree):
            matched_any = True
            keep |= image
        if not matched_any:
            return DataTree.empty()
        # close upward (images are already prefixes, but optional parts
        # attach below required images; defensive closure keeps this robust)
        closed: Set[NodeId] = set()
        for node_id in keep:
            closed.update(tree.path_to(node_id))
        return tree.restrict(closed)

    def matches(self, tree: DataTree) -> bool:
        for _image in self._valuations(tree):
            return True
        return False

    def is_empty_on(self, tree: DataTree) -> bool:
        return not self.matches(tree)

    # -- valuation enumeration ----------------------------------------------------

    def _valuations(self, tree: DataTree) -> Iterator[Set[NodeId]]:
        """Yield the node image of each complete valuation (with every
        compatible completion of optional subtrees merged per valuation)."""
        for binding, image in self._match(self._root, tree.root, tree, {}):
            # a negated subtree check may depend on constraints: already done
            yield image

    def _match(
        self,
        pattern: ENode,
        node_id: NodeId,
        tree: DataTree,
        binding: Dict[str, Value],
    ) -> Iterator[Tuple[Dict[str, Value], Set[NodeId]]]:
        """Match a required pattern node at a specific tree node."""
        if pattern.label != tree.label(node_id):
            return
        value = tree.value(node_id)
        if not pattern.cond.accepts(value):
            return
        new_binding = binding
        if pattern.var is not None:
            if pattern.var in binding:
                if not values_equal(binding[pattern.var], value):
                    return
            else:
                new_binding = dict(binding)
                new_binding[pattern.var] = value
        if not self._constraints_ok(new_binding):
            return

        base_image: Set[NodeId] = (
            set(tree.descendants(node_id)) if pattern.extract else {node_id}
        )
        yield from self._match_children(
            list(pattern.children), node_id, tree, new_binding, base_image
        )

    def _match_children(
        self,
        patterns: List[ENode],
        node_id: NodeId,
        tree: DataTree,
        binding: Dict[str, Value],
        image: Set[NodeId],
    ) -> Iterator[Tuple[Dict[str, Value], Set[NodeId]]]:
        if not patterns:
            yield binding, image
            return
        head, rest = patterns[0], patterns[1:]
        children = tree.children(node_id)
        if head.mode is Mode.REQUIRED:
            for child in children:
                for b2, img2 in self._match(head, child, tree, binding):
                    yield from self._match_children(
                        rest, node_id, tree, b2, image | img2
                    )
        elif head.mode is Mode.OPTIONAL:
            if _binds_vars(head):
                # optional subtrees that bind variables must thread their
                # bindings: enumerate individual extensions plus the skip
                for child in children:
                    for b2, img2 in self._match(
                        _required_version(head), child, tree, binding
                    ):
                        yield from self._match_children(
                            rest, node_id, tree, b2, image | img2
                        )
            else:
                # no bindings involved: all matches of the optional subtree
                # join the answer for this valuation at once
                optional_image: Set[NodeId] = set()
                for child in children:
                    for _b2, img2 in self._match(
                        _required_version(head), child, tree, binding
                    ):
                        optional_image |= img2
                if optional_image:
                    yield from self._match_children(
                        rest, node_id, tree, binding, image | optional_image
                    )
            # the skipped case (valuation undefined on the optional subtree)
            yield from self._match_children(rest, node_id, tree, binding, image)
        else:  # NEGATED: no child may match under the current binding
            probe = _required_version(head)
            for child in children:
                for _b2, _img2 in self._match(probe, child, tree, binding):
                    return  # negation violated: this valuation dies
            yield from self._match_children(rest, node_id, tree, binding, image)

    def _constraints_ok(self, binding: Dict[str, Value]) -> bool:
        return all(c.holds(binding) is not False for c in self._constraints)


def _binds_vars(pattern: ENode) -> bool:
    if pattern.var is not None:
        return True
    return any(_binds_vars(child) for child in pattern.children)


def _required_version(pattern: ENode) -> ENode:
    return ENode(
        pattern.label,
        pattern.cond,
        pattern.var,
        Mode.REQUIRED,
        pattern.extract,
        pattern.children,
    )
