"""Data values for k-pebble machines (Remark 4.4).

The basic k-pebble transducer ignores data values.  The paper's remark:
since a finite set of conditions induces finitely many equivalence
classes of data values, the classes can be folded into the alphabet and
a classical machine simulates value tests.

:func:`condition_classes` computes the classes (the Lemma 2.3 partition
cells); :func:`refine_labels` rewrites a data tree over the refined
alphabet ``label#class``; :func:`class_of` maps a value to its class
index so transitions can be generated per class.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.conditions import Cond, ValueSet, interval_partition
from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.values import Value


def condition_classes(conds: Sequence[Cond]) -> Tuple[ValueSet, ...]:
    """The equivalence classes of data values w.r.t. the conditions.

    Every condition is constantly true or false on each class; the
    classes partition the whole value domain.
    """
    return interval_partition(tuple(conds))


def class_of(value: Value, classes: Sequence[ValueSet]) -> int:
    """The index of the class containing ``value``."""
    for index, cell in enumerate(classes):
        if cell.contains(value):
            return index
    raise ValueError(f"value {value!r} not covered by the classes")  # pragma: no cover


def refined_label(label: str, class_index: int) -> str:
    return f"{label}#{class_index}"


def refine_labels(tree: DataTree, conds: Sequence[Cond]) -> DataTree:
    """Rewrite a data tree over the condition-refined alphabet.

    Each node's label becomes ``label#i`` where i is its value's class.
    The result carries the information every condition test needs, so a
    value-blind k-pebble machine over the refined alphabet simulates an
    extended machine with value tests (Remark 4.4).
    """
    if tree.is_empty():
        return tree
    classes = condition_classes(conds)

    def build(node_id: NodeId) -> NodeSpec:
        index = class_of(tree.value(node_id), classes)
        return node(
            node_id,
            refined_label(tree.label(node_id), index),
            tree.value(node_id),
            [build(child) for child in tree.children(node_id)],
        )

    return DataTree.build(build(tree.root))


def refined_alphabet(labels: Sequence[str], conds: Sequence[Cond]) -> List[str]:
    """All refined labels a machine over the classes may see."""
    classes = condition_classes(conds)
    return [
        refined_label(label, index)
        for label in labels
        for index in range(len(classes))
    ]
