"""Branching ps-queries and the n! blowup example (Section 4).

Branching lifts the ps-query restriction that sibling pattern nodes
carry distinct labels.  Incomplete trees remain a strong representation
system under branching, but q(T) can become exponential in |T| even for
a fixed alphabet: the paper's example queries n same-label children
with n distinct values against n indistinguishable specializations —
the answer representation must describe all n! assignments.

This module provides the example's generators plus a direct measurement
helper used by experiment E15: the number of distinct answers (up to
isomorphism over data nodes), which grows factorially.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, node
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.enumerate import canonical_form, enumerate_trees
from ..incomplete.incomplete_tree import DataNode, IncompleteTree
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.values import as_value
from .extended_query import ENode, ExtendedQuery, enode


def blowup_incomplete_tree(n: int) -> IncompleteTree:
    """The paper's incomplete tree (a): root with data nodes a1..an, all
    specializations of ``a``, children unconstrained b's."""
    nodes = {"r": DataNode("root", as_value(0))}
    sigma = {"t-r": "r", "t-b": "b"}
    cond = {"t-r": Cond.eq(0)}
    mu = {
        "t-b": Disjunction.leaf(),
    }
    root_entries = []
    for i in range(1, n + 1):
        name = f"a{i}"
        nodes[name] = DataNode("a", as_value(i))
        symbol = f"t-{name}"
        sigma[symbol] = name
        cond[symbol] = Cond.eq(i)
        mu[symbol] = Disjunction.single(Atom([("t-b", Mult.STAR)]))
        root_entries.append((symbol, Mult.ONE))
    mu["t-r"] = Disjunction.single(Atom(root_entries))
    tau = ConditionalTreeType(["t-r"], mu, cond, sigma)
    return IncompleteTree(nodes, tau)


def blowup_query(n: int) -> ExtendedQuery:
    """The branching query (b): root with n children a, the i-th asking
    for a b-child with value i."""
    children = [
        enode("a", children=[enode("b", Cond.eq(i))]) for i in range(1, n + 1)
    ]
    return ExtendedQuery(enode("root", children=children))


def count_possible_answers(n: int, max_trees: int = 2_000_000) -> int:
    """Distinct answers of the branching query over rep of the blowup
    tree, restricting b-values to {1..n} (the only relevant ones).

    Grows like the number of ways to distribute the n required b-values
    over the n distinguishable data nodes a1..an — factorially many
    answer shapes, which is experiment E15's measured series.
    """
    incomplete = blowup_incomplete_tree(n)
    query = blowup_query(n)
    # each a_i needs at most n b-children (values 1..n) to realize any answer
    budget = 2 + n + n * n
    answers: Set[object] = set()
    anchored = list(incomplete.data_node_ids())
    for tree in enumerate_trees(
        incomplete,
        max_nodes=budget,
        values_per_cond=0,
        extra_values=list(range(1, n + 1)),
        max_trees=max_trees,
        per_mult_cap=n,
    ):
        answer = query.evaluate(tree)
        answers.add(canonical_form(answer, anchored))
    return len(answers)
