"""Regular path expressions (Section 4, Theorem 4.7).

Queries extended with recursive path expressions label pattern *edges*
with regular languages over element names: an edge matches a downward
path whose label sequence (excluding the source node, including the
target) belongs to the language.

The engine is a classic Thompson construction: :class:`PathExpr` builds
an ε-NFA; evaluation walks the tree advancing NFA state sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, NodeId
from ..core.values import Value, values_equal

#: NFA transition label: an element name, None for ε, or ANY for wildcard.
ANY = "\x00any"


class PathExpr:
    """A regular expression over element names.

    Combinators: :func:`sym`, :meth:`then`, :meth:`alt`, :meth:`star`,
    :func:`any_star`.  Compiled lazily to an ε-NFA.
    """

    def __init__(self, kind: str, parts: Tuple["PathExpr", ...] = (), symbol: str = "", raw=None):
        # kind ∈ {'sym','concat','union','star','eps','any','raw'}
        self._kind = kind
        self._parts = parts
        self._symbol = symbol
        self._raw = raw  # ('raw' kind): (start, accepts, edges) over hashable states
        self._nfa: Optional[Tuple[int, int, List[Tuple[int, Optional[str], int]]]] = None

    # -- combinators ---------------------------------------------------------

    def then(self, other: "PathExpr") -> "PathExpr":
        return PathExpr("concat", (self, other))

    def alt(self, other: "PathExpr") -> "PathExpr":
        return PathExpr("union", (self, other))

    def star(self) -> "PathExpr":
        return PathExpr("star", (self,))

    # -- compilation ------------------------------------------------------------

    def _compile(self):
        if self._nfa is not None:
            return self._nfa
        counter = [0]
        edges: List[Tuple[int, Optional[str], int]] = []

        def fresh() -> int:
            counter[0] += 1
            return counter[0]

        def build(expr: "PathExpr") -> Tuple[int, int]:
            start, end = fresh(), fresh()
            if expr._kind == "sym":
                edges.append((start, expr._symbol, end))
            elif expr._kind == "any":
                edges.append((start, ANY, end))
            elif expr._kind == "eps":
                edges.append((start, None, end))
            elif expr._kind == "concat":
                prev = start
                for part in expr._parts:
                    s, e = build(part)
                    edges.append((prev, None, s))
                    prev = e
                edges.append((prev, None, end))
            elif expr._kind == "union":
                for part in expr._parts:
                    s, e = build(part)
                    edges.append((start, None, s))
                    edges.append((e, None, end))
            elif expr._kind == "star":
                s, e = build(expr._parts[0])
                edges.append((start, None, end))
                edges.append((start, None, s))
                edges.append((e, None, s))
                edges.append((e, None, end))
            elif expr._kind == "raw":
                raw_start, raw_accepts, raw_edges = expr._raw
                remap: Dict[object, int] = {}

                def state_of(name: object) -> int:
                    if name not in remap:
                        remap[name] = fresh()
                    return remap[name]

                for u, label, v in raw_edges:
                    edges.append((state_of(u), label, state_of(v)))
                edges.append((start, None, state_of(raw_start)))
                for acc in raw_accepts:
                    edges.append((state_of(acc), None, end))
            else:  # pragma: no cover
                raise ValueError(expr._kind)
            return start, end

        start, end = build(self)
        self._nfa = (start, end, edges)
        return self._nfa

    def _closure(self, states: Set[int], edges) -> FrozenSet[int]:
        eps: Dict[int, List[int]] = {}
        for u, label, v in edges:
            if label is None:
                eps.setdefault(u, []).append(v)
        stack = list(states)
        seen = set(states)
        while stack:
            u = stack.pop()
            for v in eps.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return frozenset(seen)

    def start_states(self) -> FrozenSet[int]:
        start, _end, edges = self._compile()
        return self._closure({start}, edges)

    def step(self, states: FrozenSet[int], symbol: str) -> FrozenSet[int]:
        _start, _end, edges = self._compile()
        moved = {
            v
            for u, label, v in edges
            if u in states and (label == symbol or label == ANY)
        }
        return self._closure(moved, edges)

    def accepting(self, states: FrozenSet[int]) -> bool:
        _start, end, _edges = self._compile()
        return end in states

    def matches(self, word: Sequence[str]) -> bool:
        states = self.start_states()
        for symbol in word:
            states = self.step(states, symbol)
            if not states:
                return False
        return self.accepting(states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._kind == "sym":
            return self._symbol
        if self._kind == "any":
            return "."
        if self._kind == "eps":
            return "ε"
        if self._kind == "concat":
            return "·".join(repr(p) for p in self._parts)
        if self._kind == "union":
            return "(" + "|".join(repr(p) for p in self._parts) + ")"
        return f"({self._parts[0]!r})*"


def sym(label: str) -> PathExpr:
    """A single element name."""
    return PathExpr("sym", symbol=label)


def from_graph(start, accepts, edges) -> PathExpr:
    """Wrap an explicit NFA (states are any hashables; edge labels are
    element names, None for ε) as a path expression.

    Used by the Theorem 4.7 reduction to express the leftmost/rightmost
    derivation paths of recursive grammars, whose first-child graphs are
    cyclic and hence awkward to write as syntax."""
    return PathExpr("raw", raw=(start, tuple(accepts), tuple(edges)))


def eps() -> PathExpr:
    return PathExpr("eps")


def any_sym() -> PathExpr:
    """Wildcard: any single element name (the paper's Σ)."""
    return PathExpr("any")


def any_star() -> PathExpr:
    """Σ* — the paper's ⋆ edge label."""
    return any_sym().star()


def seq(*parts: PathExpr) -> PathExpr:
    if not parts:
        return eps()
    result = parts[0]
    for part in parts[1:]:
        result = result.then(part)
    return result


def word(*labels: str) -> PathExpr:
    return seq(*(sym(label) for label in labels))


# -- path-pattern queries -------------------------------------------------------


@dataclass(frozen=True)
class RPNode:
    """A node of a regular-path pattern.

    ``edge`` is the path expression matched from the parent (ignored on
    the root); ``label`` optionally constrains the target's element
    name (redundant when the expression already fixes it); ``var``
    binds the target's value for join constraints.
    """

    edge: Optional[PathExpr] = None
    label: Optional[str] = None
    cond: Cond = field(default_factory=Cond.true)
    var: Optional[str] = None
    children: Tuple["RPNode", ...] = ()


def rpnode(
    edge: Optional[PathExpr] = None,
    label: Optional[str] = None,
    cond: Optional[Cond] = None,
    var: Optional[str] = None,
    children: Sequence[RPNode] = (),
) -> RPNode:
    return RPNode(edge, label, cond if cond is not None else Cond.true(), var, tuple(children))


@dataclass(frozen=True)
class RPConstraint:
    """``left <op> right`` with op ∈ {'=', '!='} between bound variables."""

    left: str
    op: str
    right: str


class RegularPathQuery:
    """A tree pattern with regular-path edges and value joins."""

    def __init__(self, root: RPNode, constraints: Sequence[RPConstraint] = ()):
        self._root = root
        self._constraints = tuple(constraints)

    def matches(self, tree: DataTree) -> bool:
        for _binding in self.bindings(tree):
            return True
        return False

    def is_empty_on(self, tree: DataTree) -> bool:
        return not self.matches(tree)

    def bindings(self, tree: DataTree) -> Iterator[Dict[str, Value]]:
        """All variable bindings of complete valuations."""
        if tree.is_empty():
            return
        root = self._root
        if root.label is not None and tree.label(tree.root) != root.label:
            return
        if not root.cond.accepts(tree.value(tree.root)):
            return
        binding: Dict[str, Value] = {}
        if root.var is not None:
            binding[root.var] = tree.value(tree.root)
        for complete in self._match_children(root, tree.root, tree, binding):
            if self._constraints_final(complete):
                yield complete

    def _targets(
        self, expr: PathExpr, source: NodeId, tree: DataTree
    ) -> Iterator[NodeId]:
        """Descendants reachable along a path matching ``expr``."""
        stack: List[Tuple[NodeId, FrozenSet[int]]] = [
            (source, expr.start_states())
        ]
        while stack:
            node_id, states = stack.pop()
            for child in tree.children(node_id):
                advanced = expr.step(states, tree.label(child))
                if not advanced:
                    continue
                if expr.accepting(advanced):
                    yield child
                stack.append((child, advanced))

    def _match_children(
        self,
        pattern: RPNode,
        node_id: NodeId,
        tree: DataTree,
        binding: Dict[str, Value],
    ) -> Iterator[Dict[str, Value]]:
        if not self._constraints_ok(binding):
            return
        if not pattern.children:
            yield binding
            return

        def rec(index: int, current: Dict[str, Value]) -> Iterator[Dict[str, Value]]:
            if index == len(pattern.children):
                yield current
                return
            child = pattern.children[index]
            assert child.edge is not None, "non-root pattern nodes need an edge"
            for target in self._targets(child.edge, node_id, tree):
                if child.label is not None and tree.label(target) != child.label:
                    continue
                value = tree.value(target)
                if not child.cond.accepts(value):
                    continue
                extended = current
                if child.var is not None:
                    if child.var in current:
                        if not values_equal(current[child.var], value):
                            continue
                    else:
                        extended = dict(current)
                        extended[child.var] = value
                if not self._constraints_ok(extended):
                    continue
                for deeper in self._match_children(child, target, tree, extended):
                    yield from rec(index + 1, deeper)

        yield from rec(0, binding)

    def _constraints_ok(self, binding: Dict[str, Value]) -> bool:
        """No constraint already violated (unbound vars are pending)."""
        for c in self._constraints:
            if c.left in binding and c.right in binding:
                equal = values_equal(binding[c.left], binding[c.right])
                if (c.op == "=") != equal:
                    return False
        return True

    def _constraints_final(self, binding: Dict[str, Value]) -> bool:
        """At a complete valuation all constraint variables are bound."""
        for c in self._constraints:
            if c.left not in binding or c.right not in binding:
                return False
        return self._constraints_ok(binding)
