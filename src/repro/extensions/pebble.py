"""k-pebble tree automata and transducers (Section 4, Milo-Suciu-Vianu).

A k-pebble machine walks a binary tree with up to k stack-disciplined
pebbles; pebble k (the newest) is the head.  Transitions fire on
(state, label under the head, presence of the older pebbles on the
head's node) and either move (down-left / down-right / up-left /
up-right / place / lift) or — for transducers — emit output nodes,
spawning independent branches for binary output.

The automaton's configuration space is finite (states × nodes^≤k), so
acceptance is decidable by graph search in PTIME for fixed k — that is
:meth:`PebbleAutomaton.accepts`.  *Emptiness*, in contrast, is
non-elementary (Theorem 4.3); :meth:`PebbleAutomaton.find_accepted`
offers only a bounded search over candidate trees, which is all an
implementation can honestly provide.

Theorem 4.2's maintenance result — the inputs consistent with a
query-answer history form a k-pebble-recognizable language — is
realized by :func:`product`, which intersects automata (acceptance of
the product runs both components; the state space multiplies, staying
polynomial per intersection step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .binary_encoding import NIL, Bin, bin_node, nil

#: Move directions.
DOWN_LEFT = "down-left"
DOWN_RIGHT = "down-right"
UP_LEFT = "up-left"  # move up; applies only when the head is a left child
UP_RIGHT = "up-right"
PLACE = "place"  # put the next pebble on the root
LIFT = "lift"  # remove the head pebble


@dataclass(frozen=True)
class Move:
    """A move transition: direction plus target state."""

    direction: str
    state: str


#: Transition key: (state, label under head, frozenset of older pebbles here).
Key = Tuple[str, str, FrozenSet[int]]


class _Walker:
    """Shared tree addressing: nodes are paths of 'L'/'R' from the root."""

    def __init__(self, tree: Bin):
        self._tree = tree
        self._labels: Dict[str, str] = {}
        self._index("", tree)

    def _index(self, path: str, node: Bin) -> None:
        self._labels[path] = node.label
        if node.left is not None:
            self._index(path + "L", node.left)
        if node.right is not None:
            self._index(path + "R", node.right)

    def label(self, path: str) -> str:
        return self._labels[path]

    def exists(self, path: str) -> bool:
        return path in self._labels

    def move(self, path: str, direction: str) -> Optional[str]:
        if direction == DOWN_LEFT:
            target = path + "L"
            return target if target in self._labels else None
        if direction == DOWN_RIGHT:
            target = path + "R"
            return target if target in self._labels else None
        if direction == UP_LEFT:
            return path[:-1] if path.endswith("L") else None
        if direction == UP_RIGHT:
            return path[:-1] if path.endswith("R") else None
        raise ValueError(direction)


class PebbleAutomaton:
    """A nondeterministic k-pebble tree automaton over binary trees."""

    def __init__(
        self,
        k: int,
        initial: str,
        accepting: Iterable[str],
        transitions: Dict[Key, Sequence[Move]],
    ):
        if k < 1:
            raise ValueError("need at least one pebble")
        self.k = k
        self.initial = initial
        self.accepting = frozenset(accepting)
        self.transitions = {key: tuple(moves) for key, moves in transitions.items()}

    # -- acceptance ---------------------------------------------------------

    def accepts(self, tree: Bin) -> bool:
        """Graph search over the finite configuration space."""
        walker = _Walker(tree)
        start = (self.initial, ("",))  # pebble 1 on the root
        seen: Set[Tuple[str, Tuple[str, ...]]] = {start}
        stack = [start]
        while stack:
            state, pebbles = stack.pop()
            if state in self.accepting:
                return True
            head = pebbles[-1]
            older_here = frozenset(
                i for i, p in enumerate(pebbles[:-1], start=1) if p == head
            )
            key = (state, walker.label(head), older_here)
            for move in self.transitions.get(key, ()):
                nxt = self._apply(move, pebbles, walker)
                if nxt is None:
                    continue
                config = (move.state, nxt)
                if config not in seen:
                    seen.add(config)
                    stack.append(config)
        return False

    def _apply(
        self, move: Move, pebbles: Tuple[str, ...], walker: _Walker
    ) -> Optional[Tuple[str, ...]]:
        if move.direction == PLACE:
            if len(pebbles) >= self.k:
                return None
            return pebbles + ("",)
        if move.direction == LIFT:
            if len(pebbles) <= 1:
                return None
            return pebbles[:-1]
        target = walker.move(pebbles[-1], move.direction)
        if target is None:
            return None
        return pebbles[:-1] + (target,)

    # -- emptiness is non-elementary (Theorem 4.3); bounded search only -------

    def find_accepted(
        self, alphabet: Iterable[str], max_nodes: int
    ) -> Optional[Bin]:
        """Search for an accepted tree with at most ``max_nodes`` real
        (non-``#``) nodes.  None means none exists *within the bound* —
        no conclusion about emptiness, per Theorem 4.3."""
        labels = sorted(set(alphabet) - {NIL})
        for candidate in _all_binary_trees(labels, max_nodes):
            if self.accepts(candidate):
                return candidate
        return None


def _all_binary_trees(labels: List[str], max_nodes: int) -> Iterator[Bin]:
    def gen(budget: int) -> Iterator[Bin]:
        yield nil()
        if budget <= 0:
            return
        for label in labels:
            for left_budget in range(budget):
                for left in gen(left_budget):
                    left_size = _real_size(left)
                    for right in gen(budget - 1 - left_size):
                        yield Bin(label, left, right)

    for size in range(1, max_nodes + 1):
        for tree in gen(size):
            if _real_size(tree) == size:
                yield tree


def _real_size(tree: Bin) -> int:
    if tree.is_nil():
        return 0
    return 1 + _real_size(tree.left) + _real_size(tree.right)  # type: ignore[arg-type]


def product(*automata: PebbleAutomaton) -> "ProductAutomaton":
    """Theorem 4.2's maintenance object: accepts the intersection."""
    return ProductAutomaton(automata)


class ProductAutomaton:
    """Intersection of k-pebble automata.

    Semantically exact: a tree is accepted iff every component accepts.
    (A syntactic product machine exists by [34, 35]; running the
    components separately has identical acceptance behaviour and the
    same polynomial cost per check.)
    """

    def __init__(self, components: Sequence[PebbleAutomaton]):
        if not components:
            raise ValueError("need at least one component")
        self.components = tuple(components)

    def accepts(self, tree: Bin) -> bool:
        return all(component.accepts(tree) for component in self.components)

    def find_accepted(
        self, alphabet: Iterable[str], max_nodes: int
    ) -> Optional[Bin]:
        labels = sorted(set(alphabet) - {NIL})
        for candidate in _all_binary_trees(labels, max_nodes):
            if self.accepts(candidate):
                return candidate
        return None


class InverseImageAcceptor:
    """Acceptor for ``{ T | transducer(T) = answer }`` (Theorem 4.2).

    The theorem maintains, per query/answer pair, the set of inputs
    consistent with the pair as a recognizable tree language.  For a
    deterministic transducer the inverse image is decided by running the
    machine and comparing outputs — the semantic form of the product
    construction, with the same per-tree polynomial cost.
    """

    def __init__(self, transducer: "PebbleTransducer", answer: Bin):
        self.transducer = transducer
        self.answer = answer

    def accepts(self, tree: Bin) -> bool:
        return self.transducer.run(tree) == self.answer


def history_acceptor(
    type_automaton: PebbleAutomaton,
    history: Sequence[Tuple["PebbleTransducer", Bin]],
) -> ProductAutomaton:
    """Theorem 4.2's maintained object: inputs satisfying the type and
    reproducing every recorded transducer answer.

    Incrementally extensible — each new pair adds one component, keeping
    the representation linear in the history (the theorem's point), with
    membership still polynomial per check."""
    components: List[object] = [type_automaton]
    components.extend(
        InverseImageAcceptor(transducer, answer) for transducer, answer in history
    )
    return ProductAutomaton(components)  # type: ignore[arg-type]


# -- transducers --------------------------------------------------------------------


@dataclass(frozen=True)
class Out0:
    """Nullary output: emit a leaf, branch halts."""

    label: str


@dataclass(frozen=True)
class Out2:
    """Binary output: emit a node, spawn left/right branches."""

    label: str
    left_state: str
    right_state: str


Action = object  # Move | Out0 | Out2


class PebbleTransducer:
    """A deterministic k-pebble tree transducer.

    ``transitions`` maps a key to a single action (move or output).  A
    branch with no applicable transition fails, making the whole run
    fail (returns None).
    """

    def __init__(self, k: int, initial: str, transitions: Dict[Key, Action]):
        self.k = k
        self.initial = initial
        self.transitions = dict(transitions)

    def run(self, tree: Bin, max_steps: int = 100000) -> Optional[Bin]:
        walker = _Walker(tree)
        budget = [max_steps]

        def branch(state: str, pebbles: Tuple[str, ...]) -> Optional[Bin]:
            while True:
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                head = pebbles[-1]
                older_here = frozenset(
                    i for i, p in enumerate(pebbles[:-1], start=1) if p == head
                )
                key = (state, walker.label(head), older_here)
                action = self.transitions.get(key)
                if action is None:
                    return None
                if isinstance(action, Out0):
                    return Bin(action.label)  # bare leaf, halts the branch
                if isinstance(action, Out2):
                    left = branch(action.left_state, pebbles)
                    if left is None:
                        return None
                    right = branch(action.right_state, pebbles)
                    if right is None:
                        return None
                    return Bin(action.label, left, right)
                move: Move = action  # type: ignore[assignment]
                if move.direction == PLACE:
                    if len(pebbles) >= self.k:
                        return None
                    pebbles = pebbles + ("",)
                elif move.direction == LIFT:
                    if len(pebbles) <= 1:
                        return None
                    pebbles = pebbles[:-1]
                else:
                    target = walker.move(pebbles[-1], move.direction)
                    if target is None:
                        return None
                    pebbles = pebbles[:-1] + (target,)
                state = move.state

        return branch(self.initial, ("",))
