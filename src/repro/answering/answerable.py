"""Full answerability of a query from local knowledge (Corollary 3.15).

A ps-query q can be *fully answered* from an incomplete tree T when
``q(T) = q(Td)`` for every T ∈ rep(T), where Td is T's data tree — i.e.
the possible answers collapse to the single answer computable from the
locally known prefix.

Decision procedure: build q(T) (Theorem 3.14) and check that its
represented set is exactly ``{q(Td)}``:

* every useful symbol of q(T) specializes a data node occurring in
  q(Td)  — no unknown node can ever appear in an answer;
* q(Td) is a certain prefix of q(T) — every possible answer contains
  all of q(Td);
* the empty answer is possible iff q(Td) is empty.

Together these force rep(q(T)) = {q(Td)} (members consist only of
q(Td)'s data nodes in their fixed positions and contain q(Td)).
"""

from __future__ import annotations

from typing import Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..incomplete.certainty import certain_prefix
from ..incomplete.incomplete_tree import IncompleteTree
from .query_incomplete import query_incomplete


def fully_answerable(
    incomplete: IncompleteTree, query: PSQuery
) -> Tuple[bool, DataTree]:
    """Can ``query`` be answered exactly from local data?

    Returns ``(answerable, local_answer)`` where ``local_answer`` is
    q(Td); when ``answerable`` is True it equals q(T) for every
    represented T.
    """
    local_answer = query.evaluate(incomplete.data_tree())
    answers = query_incomplete(incomplete, query)

    if answers.is_empty():
        # rep(T) itself is empty: vacuously answerable
        return True, local_answer

    if answers.allows_empty != local_answer.is_empty():
        return False, local_answer

    answer_ids = set(local_answer.node_ids())
    tau = answers.type.normalized()
    node_ids = answers.data_node_ids()
    for symbol in tau.useful_symbols():
        target = tau.sigma(symbol)
        if target not in node_ids or target not in answer_ids:
            return False, local_answer

    if not local_answer.is_empty() and not certain_prefix(local_answer, answers):
        return False, local_answer
    return True, local_answer
