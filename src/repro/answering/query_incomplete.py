"""Querying incomplete trees: the q(T) construction (Theorem 3.14).

Given an incomplete tree T and a ps-query q, build an incomplete tree
q(T) with ``rep(q(T)) = { q(T) | T ∈ rep(T) }`` — incomplete trees are a
*strong representation system* for ps-queries.

The construction is a guarded product of T's type with the query
pattern:

* For every pattern node m, compute ``Poss(m)`` / ``Cert(m)`` — the type
  symbols on which the subquery rooted at m possibly / certainly
  matches (the type-level analogue of Theorem 2.8's recursions).
* Result symbols are pairs ⟨τ, m⟩ with τ ∈ Poss(m); their rules keep
  only entries that can serve some child pattern, re-point them at the
  corresponding pairs, relax multiplicities for entries that merely
  *possibly* match (1→?, +→*), and finally force at least one match per
  child pattern by expanding possibly-empty groups into a disjunction —
  the step that makes q(T) exponential in |Σ| in the worst case, as the
  theorem states.
* Below a bar pattern the whole subtree is extracted verbatim; a
  ``⟨τ, #sub⟩`` symbol family copies T's rules unchanged.

The possibility that *no* valuation exists (answer = empty tree) is
carried by the ``allows_empty`` flag: it is set iff some realizable root
symbol is not in Cert(root), or T itself allows the empty tree.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.conditions import Cond
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.query import PSQuery, Path
from ..core.tree import DataTree, NodeId
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import DataNode, IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF

#: Marker path for the verbatim below-bar copy family.
_SUB = "#sub"


def _pair_name(symbol: str, tag: object) -> str:
    return f"{symbol}@{tag}"


def _path_tag(path: Path) -> str:
    return ".".join(map(str, path)) if path else "ε"


def type_possible_certain(
    incomplete: IncompleteTree, query: PSQuery
) -> Tuple[Dict[Path, FrozenSet[str]], Dict[Path, FrozenSet[str]]]:
    """``Poss(m)``/``Cert(m)`` per pattern node, over a *normalized* type.

    τ ∈ Poss(m): some tree rooted at a τ-typed node matches the
    subquery at m.  τ ∈ Cert(m): every such tree matches.
    """
    tau = incomplete.type.normalized()
    node_ids = incomplete.data_node_ids()

    def eff_label(symbol: str) -> str:
        target = tau.sigma(symbol)
        return incomplete.data_label(target) if target in node_ids else target

    with _span("query_incomplete.poss_cert") as sp:
        poss, cert = _poss_cert_sets(tau, query, eff_label)
        if sp is not None:
            sp.attrs.update(
                patterns=len(poss),
                poss_root=len(poss.get((), frozenset())),
                cert_root=len(cert.get((), frozenset())),
            )
    return poss, cert


def _poss_cert_sets(tau, query: PSQuery, eff_label) -> Tuple[
    Dict[Path, FrozenSet[str]], Dict[Path, FrozenSet[str]]
]:
    poss: Dict[Path, FrozenSet[str]] = {}
    cert: Dict[Path, FrozenSet[str]] = {}
    for path in sorted(query.paths(), key=len, reverse=True):
        qnode = query.node_at(path)
        p_here: Set[str] = set()
        c_here: Set[str] = set()
        for symbol in tau.symbols():
            if eff_label(symbol) != qnode.label:
                continue
            cond = tau.cond(symbol)
            if (cond & qnode.cond).satisfiable() and _possibly_matches(
                tau, symbol, path, qnode, poss
            ):
                p_here.add(symbol)
                if cond.implies(qnode.cond) and _certainly_matches(
                    tau, symbol, path, qnode, cert
                ):
                    c_here.add(symbol)
        poss[path] = frozenset(p_here)
        cert[path] = frozenset(c_here)
    return poss, cert


def _possibly_matches(tau, symbol, path, qnode, poss) -> bool:
    if not qnode.children:
        return True
    for atom in tau.mu(symbol):
        if all(
            any(entry in poss[path + (i,)] for entry in atom.symbols)
            for i in range(len(qnode.children))
        ):
            return True
    return False


def _certainly_matches(tau, symbol, path, qnode, cert) -> bool:
    if not qnode.children:
        return True
    for atom in tau.mu(symbol):
        for i in range(len(qnode.children)):
            child_path = path + (i,)
            if not any(
                mult.required and entry in cert[child_path]
                for entry, mult in atom.items()
            ):
                return False
    return True


def query_incomplete(
    incomplete: IncompleteTree, query: PSQuery
) -> IncompleteTree:
    """Theorem 3.14: the incomplete tree describing all possible answers."""
    cache = _PERF.caches["query_incomplete"] if _PERF.enabled else None
    if cache is not None:
        memo_key = (incomplete.cache_key(), query)
        cached = cache.get(memo_key)
        if cached is not _MISS:
            return cached
    with _span("query_incomplete") as sp:
        if incomplete.is_empty():
            result = IncompleteTree.nothing(allows_empty=False)
            if cache is not None:
                cache.put(memo_key, result)
            return result
        tau = incomplete.type.normalized()
        node_ids = incomplete.data_node_ids()
        poss, cert = type_possible_certain(incomplete, query)

        with _span("query_incomplete.build") as sp_build:
            builder = _AnswerBuilder(incomplete, tau, query, poss, cert)
            result = builder.run()
            if sp_build is not None:
                sp_build.attrs["symbols_generated"] = len(builder._sigma)
        if _OBS.enabled:
            generated = len(builder._sigma)
            metrics = _OBS.metrics
            metrics.inc("query_incomplete.calls")
            metrics.inc("query_incomplete.symbols_generated", generated)
            metrics.observe("query_incomplete.result_size", result.size())
            if sp is not None:
                sp.attrs.update(
                    input_symbols=len(tau.symbols()),
                    data_nodes=len(node_ids),
                    symbols_generated=generated,
                    result_size=result.size(),
                    allows_empty=result.allows_empty,
                )
        if cache is not None:
            cache.put(memo_key, result)
        return result


class _AnswerBuilder:
    def __init__(self, incomplete, tau, query, poss, cert):
        self._incomplete = incomplete
        self._tau = tau
        self._query = query
        self._poss = poss
        self._cert = cert
        self._node_ids = incomplete.data_node_ids()
        self._mu: Dict[str, Disjunction] = {}
        self._cond: Dict[str, Cond] = {}
        self._sigma: Dict[str, str] = {}
        self._pending: List[Tuple[str, object]] = []
        self._seen: Set[Tuple[str, object]] = set()

    def _enqueue(self, symbol: str, tag: object) -> str:
        if (symbol, tag) not in self._seen:
            self._seen.add((symbol, tag))
            self._pending.append((symbol, tag))
        return _pair_name(symbol, _path_tag(tag) if isinstance(tag, tuple) else tag)

    def run(self) -> IncompleteTree:
        tau, query = self._tau, self._query
        root_poss = self._poss[()]
        roots = [
            self._enqueue(symbol, ())
            for symbol in sorted(tau.roots)
            if symbol in root_poss
        ]
        while self._pending:
            symbol, tag = self._pending.pop()
            name = _pair_name(
                symbol, _path_tag(tag) if isinstance(tag, tuple) else tag
            )
            self._sigma[name] = tau.sigma(symbol)
            if tag == _SUB:
                self._cond[name] = tau.cond(symbol)
                self._mu[name] = tau.mu(symbol).map_atoms(self._copy_atom)
                continue
            path: Path = tag  # type: ignore[assignment]
            qnode = query.node_at(path)
            self._cond[name] = tau.cond(symbol) & qnode.cond
            if qnode.extract:
                self._mu[name] = tau.mu(symbol).map_atoms(self._copy_atom)
            elif not qnode.children:
                # matched leaf pattern: children are not extracted at all
                self._mu[name] = Disjunction.leaf()
            else:
                atoms: List[Atom] = []
                for atom in tau.mu(symbol):
                    atoms.extend(self._project_atom(atom, path, qnode))
                self._mu[name] = Disjunction(atoms)

        allows_empty = self._incomplete.allows_empty or any(
            symbol not in self._cert[()] for symbol in tau.roots
        )
        data_nodes = {
            node_id: DataNode(
                self._incomplete.data_label(node_id),
                self._incomplete.data_value(node_id),
            )
            for node_id in self._node_ids
        }
        new_type = ConditionalTreeType(roots, self._mu, self._cond, self._sigma)
        result = IncompleteTree(data_nodes, new_type, allows_empty=allows_empty)
        return result.normalized()

    def _copy_atom(self, atom: Atom) -> Atom:
        return Atom(
            [(self._enqueue(entry, _SUB), mult) for entry, mult in atom.items()]
        )

    def _project_atom(
        self, atom: Atom, path: Path, qnode
    ) -> List[Atom]:
        """Project a source atom onto the answer under pattern ``path``."""
        child_count = len(qnode.children)
        # each entry can serve at most one child pattern (sibling labels
        # are distinct); find it via Poss
        groups: List[List[Tuple[str, Mult]]] = [[] for _ in range(child_count)]
        for entry, mult in atom.items():
            for i in range(child_count):
                if entry in self._poss[path + (i,)]:
                    groups[i].append((entry, mult))
                    break
        if any(not group for group in groups):
            return []  # some child pattern cannot be matched under this atom

    # build per-group variants: mapped entries with relaxed multiplicities,
    # then force at least one present match per group
        per_group_variants: List[List[List[Tuple[str, Mult]]]] = []
        for i, group in enumerate(groups):
            child_path = path + (i,)
            mapped: List[Tuple[str, Mult]] = []
            guaranteed = False
            for entry, mult in group:
                if entry in self._cert[child_path]:
                    new_mult = mult
                    if mult.required:
                        guaranteed = True
                else:
                    new_mult = mult.relaxed()
                mapped.append(
                    (self._enqueue(entry, child_path), new_mult)
                )
            if guaranteed:
                per_group_variants.append([mapped])
            else:
                variants = []
                for j in range(len(mapped)):
                    variant = [
                        (name, m.required_version() if k == j else m)
                        for k, (name, m) in enumerate(mapped)
                    ]
                    variants.append(variant)
                per_group_variants.append(variants)

        results: List[Atom] = []
        for choice in iter_product(*per_group_variants):
            combined: List[Tuple[str, Mult]] = []
            for variant in choice:
                combined.extend(variant)
            results.append(Atom(combined))
        return results
