"""Certain and possible facts about query answers
(Theorem 3.17, Corollary 3.18).

All four predicates compose the q(T) construction of Theorem 3.14 with
the prefix checks of Theorem 2.8 — PTIME for a fixed alphabet, as the
paper states.
"""

from __future__ import annotations

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..incomplete.certainty import certain_prefix, possible_prefix
from ..incomplete.incomplete_tree import IncompleteTree
from .query_incomplete import query_incomplete


def possible_answer_prefix(
    prefix: DataTree, incomplete: IncompleteTree, query: PSQuery
) -> bool:
    """Does some T ∈ rep(T) have ``prefix`` as a prefix of q(T)?"""
    return possible_prefix(prefix, query_incomplete(incomplete, query))


def certain_answer_prefix(
    prefix: DataTree, incomplete: IncompleteTree, query: PSQuery
) -> bool:
    """Do all T ∈ rep(T) have ``prefix`` as a prefix of q(T)?"""
    return certain_prefix(prefix, query_incomplete(incomplete, query))


def possibly_nonempty(incomplete: IncompleteTree, query: PSQuery) -> bool:
    """Corollary 3.18: q(T) ≠ ∅ for some T ∈ rep(T)."""
    answers = query_incomplete(incomplete, query)
    return not answers.type.is_empty()


def certainly_nonempty(incomplete: IncompleteTree, query: PSQuery) -> bool:
    """Corollary 3.18: q(T) ≠ ∅ for every T ∈ rep(T) (and rep(T) ≠ ∅)."""
    answers = query_incomplete(incomplete, query)
    if answers.is_empty():
        return False
    return not answers.allows_empty
