"""Querying incomplete trees: q(T) (Theorem 3.14), full answerability
(Corollary 3.15) and certain/possible answer facts (Theorem 3.17,
Corollary 3.18)."""

from .answerable import fully_answerable
from .facts import (
    certain_answer_prefix,
    certainly_nonempty,
    possible_answer_prefix,
    possibly_nonempty,
)
from .query_incomplete import query_incomplete, type_possible_certain

__all__ = [
    "certain_answer_prefix",
    "certainly_nonempty",
    "fully_answerable",
    "possible_answer_prefix",
    "possibly_nonempty",
    "query_incomplete",
    "type_possible_certain",
]
