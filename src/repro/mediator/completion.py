"""Non-redundant completions (Theorem 3.19).

Given a reachable incomplete tree T and a ps-query q that cannot be
fully answered locally, compute a set L of local queries such that
extending the data tree with their answers suffices to answer q — while
avoiding re-retrieval of work previous queries already did.

The generation follows the paper's recursion: starting from ``q @ root``,
a local query ``p @ n`` is split when some of p's child patterns cannot
be matched inside the *missing* information below n (their answers can
only come through already-known children, into which we recurse); the
remaining branches stay in a pruned pattern asked at n.  Local queries
that can only return already-known data, or that certainly return
nothing, are dropped.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.query import PSQuery, Path, QueryNode
from ..core.tree import DataTree, NodeId
from ..answering.query_incomplete import type_possible_certain
from ..incomplete.incomplete_tree import IncompleteTree
from .local_query import LocalQuery


def completion_plan(
    incomplete: IncompleteTree, query: PSQuery
) -> List[LocalQuery]:
    """The non-redundant set of local queries completing T relative to q.

    Empty when the data tree cannot anchor the query (root label
    mismatch) — in that case ``q`` at the (virtual) document root is the
    only option and the query is either already fully answerable or the
    whole document is unknown; callers handle that case via
    :func:`~repro.answering.answerable.fully_answerable`.
    """
    data_tree = incomplete.data_tree()
    if data_tree.is_empty():
        # nothing known: the trivial completion (ask q itself at the root)
        # cannot be anchored locally; signal with the full query at no node
        return [LocalQuery(query, "")]
    if data_tree.label(data_tree.root) != query.root.label:
        return []

    tau = incomplete.type.normalized()
    node_ids = incomplete.data_node_ids()
    poss, _cert = type_possible_certain(incomplete, query)

    symbols_of: Dict[NodeId, List[str]] = {}
    for symbol in tau.symbols():
        target = tau.sigma(symbol)
        if target in node_ids:
            symbols_of.setdefault(target, []).append(symbol)

    plan: List[LocalQuery] = []

    def missing_can_match(node: NodeId, child_path: Path) -> bool:
        """Can the unknown region below ``node`` contain a match of the
        subquery at ``child_path``?"""
        for symbol in symbols_of.get(node, ()):
            for atom in tau.mu(symbol):
                for entry, _mult in atom.items():
                    if tau.sigma(entry) in node_ids:
                        continue  # known child, not missing information
                    if entry in poss[child_path]:
                        return True
        return False

    def data_children_matching(node: NodeId, child_path: Path) -> List[NodeId]:
        result = []
        for child in data_tree.children(node):
            if any(s in poss[child_path] for s in symbols_of.get(child, ())):
                result.append(child)
        return result

    def process(path: Path, node: NodeId) -> None:
        qnode = query.node_at(path)
        if qnode.extract:
            # bar pattern: the whole subtree is requested; ask locally iff
            # anything below the node may be missing
            if _has_missing_below(tau, node_ids, symbols_of, node):
                plan.append(LocalQuery(PSQuery(qnode), node))
            return
        if not qnode.children:
            return  # the node itself is known; nothing to fetch
        keep: List[int] = []
        for i in range(len(qnode.children)):
            child_path = path + (i,)
            if missing_can_match(node, child_path):
                keep.append(i)
            else:
                for child in data_children_matching(node, child_path):
                    process(child_path, child)
        if keep:
            # the pruned pattern asked at the node covers the kept branches
            # in full (the source evaluates on its complete subtree), so no
            # further recursion is needed for them — that is exactly what
            # keeps the completion non-redundant
            pruned = _restrict_children(qnode, keep)
            plan.append(LocalQuery(PSQuery(pruned), node))

    process((), data_tree.root)
    return _dedupe(plan)


def _restrict_children(qnode: QueryNode, keep: Sequence[int]) -> QueryNode:
    return QueryNode(
        qnode.label,
        qnode.cond,
        qnode.extract,
        tuple(qnode.children[i] for i in keep),
    )


def _has_missing_below(tau, node_ids, symbols_of, node: NodeId) -> bool:
    """Is any non-data content possible anywhere below ``node``?"""
    seen: Set[NodeId] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for symbol in symbols_of.get(current, ()):
            for atom in tau.mu(symbol):
                for entry, _mult in atom.items():
                    target = tau.sigma(entry)
                    if target in node_ids:
                        stack.append(target)
                    else:
                        return True
    return False


def _dedupe(plan: List[LocalQuery]) -> List[LocalQuery]:
    seen: Set[Tuple[object, NodeId]] = set()
    result = []
    for local in plan:
        key = (local.query, local.node)
        if key not in seen:
            seen.add(key)
            result.append(local)
    return result
